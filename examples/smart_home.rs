//! Smart-home monitoring: train once, then identify live activity
//! windows from a continuous stream — the paper's IoT deployment story
//! (Section I), including model checkpointing so the trained engine
//! can be shipped to an edge device.
//!
//! ```text
//! cargo run --release --example smart_home
//! ```

use m2ai::nn::serialize::{load_params, save_params};
use m2ai::prelude::*;
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::dataset::learn_calibration;
use m2ai_core::frames::FrameBuilder;
use m2ai_core::network::build_model;

fn main() {
    let mut config = ExperimentConfig::paper_default();
    config.room = RoomKind::Hall; // the living room is low-multipath
    config.samples_per_class = 8;
    config.n_threads = 0; // offline data collection uses all cores

    println!("== offline phase: collect data and train ==");
    let bundle = generate_dataset(&config);
    let outcome = train_m2ai(&bundle, &TrainOptions::fast());
    println!(
        "trained: test accuracy {:.1}%",
        100.0 * outcome.test_accuracy
    );

    // Ship the model: serialize, then restore into a fresh instance
    // (e.g. on the home gateway).
    let mut trained = outcome.model;
    let checkpoint = save_params(&mut trained);
    println!("checkpoint size: {} bytes", checkpoint.len());
    let mut gateway_model = build_model(
        &bundle.layout,
        bundle.n_classes,
        Architecture::CnnLstm,
        99, // different init seed: weights get overwritten by the load
    );
    load_params(&mut gateway_model, &checkpoint).expect("same architecture");

    println!();
    println!("== online phase: identify live windows ==");
    let calibrator: PhaseCalibrator = learn_calibration(&config);
    // The gateway extracts features for live windows across its cores;
    // per-tag pseudospectra are independent, so this changes nothing in
    // the output.
    let builder =
        FrameBuilder::new(bundle.layout, calibrator, config.frame_duration_s).with_parallelism(0);
    let scenarios = catalog(config.n_persons);
    let volunteers: Vec<Volunteer> = (0..2).map(Volunteer::preset).collect();

    let room = config.room.build();
    let mut correct = 0;
    let demo_classes = [0usize, 2, 5, 9, 11];
    for &class in &demo_classes {
        // A resident performs the activity; the gateway classifies the
        // most recent window.
        let scene = ActivityScene::new(&scenarios[class], &volunteers, 3, 1000 + class as u64);
        let mut reader = Reader::new(
            room.clone(),
            ReaderConfig {
                n_antennas: config.n_antennas,
                array_center: m2ai::rfsim::geometry::Point2::new(room.width / 2.0, 0.3),
                seed: config.seed,
                ..ReaderConfig::default()
            },
            scene.n_tags(),
        );
        let window_s = config.frames_per_sample as f64 * config.frame_duration_s;
        let readings = reader.run(|t| scene.snapshot(t), window_s + 0.2);
        let frames = builder.build_sample(&readings, 0.0, config.frames_per_sample);
        let predicted = gateway_model.predict(&frames);
        let hit = predicted == class;
        correct += usize::from(hit);
        println!(
            "  resident did {:12} ({}) -> gateway says {} {}",
            scenarios[class].id.to_string(),
            scenarios[class].name,
            scenarios[predicted].id,
            if hit { "✓" } else { "✗" }
        );
    }
    println!(
        "live identification: {}/{} windows correct",
        correct,
        demo_classes.len()
    );
}
