//! Inspect the raw reader stream: what an Impinj-style reader actually
//! reports while two people act in a multipath room, and what phase
//! calibration does to it.
//!
//! ```text
//! cargo run --release --example reader_stream
//! ```

use m2ai::prelude::*;
use m2ai_dsp::stats::{circular_median, std_dev};

fn main() {
    let room = Room::laboratory();
    let scenarios = catalog(2);
    let volunteers: Vec<Volunteer> = (0..2).map(Volunteer::preset).collect();
    let scene = ActivityScene::new(&scenarios[0], &volunteers, 3, 1);

    let config = ReaderConfig::default();
    let n_tags = scene.n_tags();
    let mut reader = Reader::new(room, config, n_tags);

    // Record 5 seconds of "all wave hands".
    let readings = reader.run(|t| scene.snapshot(t), 5.0);
    println!("{} reads in 5 s from {} tags", readings.len(), n_tags);
    println!();
    println!("first ten LLRP-style reports:");
    println!(
        "   t(s)  tag                   ant  ch  freq(MHz)  phase(rad)  rssi(dBm)  doppler(Hz)"
    );
    for r in readings.iter().take(10) {
        println!(
            "  {:5.2}  {}  {}   {:2}  {:8.2}   {:8.3}   {:8.1}   {:+9.1}",
            r.time_s,
            r.tag,
            r.antenna,
            r.channel,
            r.frequency_hz / 1e6,
            r.phase_rad,
            r.rssi_dbm,
            r.doppler_hz
        );
    }

    // Show the hopping problem: per-channel phase medians of one link
    // scatter wildly before calibration and collapse after.
    println!();
    println!("calibrating from a stationary interval ...");
    let frozen_scene = scene.snapshot(0.0);
    let frozen = SceneSnapshot {
        tag_positions: frozen_scene.tag_positions,
        tag_velocities: Vec::new(),
        blockers: Vec::new(),
    };
    let mut cal_reader = Reader::new(Room::laboratory(), ReaderConfig::default(), n_tags);
    let cal_readings = cal_reader.run(|_| frozen.clone(), 21.0);
    let calibrator = PhaseCalibrator::learn(&cal_readings, n_tags, 4);

    let mut raw_medians = Vec::new();
    let mut cal_medians = Vec::new();
    for c in 0..m2ai::rfsim::channel::N_CHANNELS {
        let link: Vec<&TagReading> = cal_readings
            .iter()
            .filter(|r| r.tag == TagId(0) && r.antenna == 0 && r.channel == c)
            .collect();
        if link.is_empty() {
            continue;
        }
        let raw: Vec<f64> = link.iter().map(|r| r.phase_rad).collect();
        let cal: Vec<f64> = link.iter().map(|r| calibrator.calibrate(r)).collect();
        raw_medians.push(circular_median(&raw));
        cal_medians.push(circular_median(&cal));
    }
    println!(
        "per-channel phase medians (tag 0, antenna 0): raw spread {:.2} rad, calibrated spread {:.4} rad",
        std_dev(&raw_medians),
        std_dev(&cal_medians)
    );
    println!("(the calibrated stream behaves as if the reader never hopped — Eq. 1 of the paper)");
}
