//! Coverage extension (paper Section VII): a single array covers ~6 m
//! of reliable reads; larger spaces need several antenna arrays (via
//! Impinj antenna hubs). This example deploys two simulated readers at
//! opposite ends of a warehouse aisle and routes each time window to
//! the array that read the tags best.
//!
//! ```text
//! cargo run --release --example warehouse_coverage
//! ```

use m2ai::prelude::*;
use m2ai::rfsim::geometry::{Point2, Vec2};

fn reader_at(room: &Room, center: Point2, axis: Vec2, seed: u64, n_tags: usize) -> Reader {
    Reader::new(
        room.clone(),
        ReaderConfig {
            array_center: center,
            array_axis: axis,
            seed,
            ..ReaderConfig::default()
        },
        n_tags,
    )
}

fn main() {
    // A 16 m aisle: too long for one array.
    let room = Room::rectangular("warehouse aisle", 16.0, 6.0, 6.0);
    let n_tags = 3;

    let mut near_reader = reader_at(&room, Point2::new(1.0, 0.5), Vec2::new(1.0, 0.0), 7, n_tags);
    let mut far_reader = reader_at(
        &room,
        Point2::new(15.0, 0.5),
        Vec2::new(-1.0, 0.0),
        7,
        n_tags,
    );

    // A worker with three tags walks the aisle end to end in 60 s.
    let walk = |t: f64| -> SceneSnapshot {
        let x = 1.0 + 14.0 * (t / 60.0).clamp(0.0, 1.0);
        let body = Point2::new(x, 3.0);
        SceneSnapshot {
            tag_positions: vec![
                body + Vec2::new(0.15, 0.45),
                body + Vec2::new(0.05, 0.30),
                body + Vec2::new(0.0, 0.20),
            ],
            tag_velocities: vec![Vec2::new(14.0 / 60.0, 0.0); 3],
            blockers: vec![m2ai::rfsim::scene::Blocker::person(body)],
        }
    };

    let near_reads = near_reader.run(walk, 60.0);
    let far_reads = far_reader.run(walk, 60.0);

    println!("worker walks a 16 m aisle in 60 s");
    println!("  near array total reads: {}", near_reads.len());
    println!("  far  array total reads: {}", far_reads.len());
    println!();
    println!("per-10s window, reads per array and which array a hub would select:");
    println!("   window   near   far   selected");
    let mut covered = 0;
    for w in 0..6 {
        let lo = w as f64 * 10.0;
        let hi = lo + 10.0;
        let n = near_reads
            .iter()
            .filter(|r| r.time_s >= lo && r.time_s < hi)
            .count();
        let f = far_reads
            .iter()
            .filter(|r| r.time_s >= lo && r.time_s < hi)
            .count();
        let pick = if n >= f { "near" } else { "far" };
        // A window is "covered" when the selected array saw enough
        // rounds to build spectrum frames (≥ 2 reads per antenna per
        // 0.5 s frame is plenty at ≥ 40 reads per window).
        if n.max(f) >= 40 {
            covered += 1;
        }
        println!("  {lo:4.0}-{hi:3.0}s  {n:5}  {f:4}   {pick}");
    }
    println!();
    println!(
        "hub-selected coverage: {covered}/6 windows usable — \
         one array alone covers only its own half of the aisle"
    );
}
