//! Quickstart: simulate a small deployment, train the engine, report
//! accuracy — the whole M²AI pipeline in one page.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use m2ai::prelude::*;

fn main() {
    // The paper's default condition: two persons × three tags, four
    // antennas, laboratory room — shrunk so the example finishes in
    // about a minute.
    let mut config = ExperimentConfig::paper_default();
    config.samples_per_class = 10;
    config.n_threads = 0; // simulate recordings on all cores; output is
                          // bit-identical for any thread count

    println!(
        "simulating {} recordings ...",
        12 * config.samples_per_class
    );
    let bundle = generate_dataset(&config);
    println!(
        "frames: {} x {} per sample ({} tags, {} antennas)",
        config.frames_per_sample,
        bundle.layout.frame_dim(),
        bundle.layout.n_tags,
        bundle.layout.n_antennas,
    );

    let mut opts = TrainOptions::fast();
    opts.log_every = 5;
    println!("training CNN+LSTM ({} epochs) ...", opts.epochs);
    let outcome = train_m2ai(&bundle, &opts);

    println!();
    println!(
        "train accuracy {:.1}%   test accuracy {:.1}%",
        100.0 * outcome.train_accuracy,
        100.0 * outcome.test_accuracy
    );
    println!();
    println!("confusion matrix (rows = predicted, cols = actual):");
    println!("{}", outcome.confusion);

    // What did the model see? Peek at one activity class.
    let scenarios = catalog(config.n_persons);
    println!("activity classes:");
    for s in &scenarios {
        println!("  {}: {}", s.id, s.name);
    }
}
