//! Gym exercise monitoring (the FEMO scenario from the paper's related
//! work): compare M²AI's CNN+LSTM against the HMM approach of prior
//! art on the same recordings, and show where temporal order matters.
//!
//! ```text
//! cargo run --release --example gym_monitor
//! ```

use m2ai::baselines::hmm::HmmClassifier;
use m2ai::prelude::*;
use m2ai_core::dataset::sequence_for_hmm;
use m2ai_nn::train::train_test_split;

fn main() {
    // A "gym": high-multipath room, members exercising 3 m from the
    // reader. The order-mirrored scenario pairs play the role of
    // exercise phases (lift-then-lower vs lower-then-lift).
    let mut config = ExperimentConfig::paper_default();
    config.distance_m = 3.0;
    config.samples_per_class = 10;
    config.n_threads = 0; // record sessions on all cores (deterministic)

    println!(
        "recording {} exercise sessions ...",
        12 * config.samples_per_class
    );
    let bundle = generate_dataset(&config);

    // Deep engine.
    let outcome = train_m2ai(&bundle, &TrainOptions::fast());

    // FEMO-style HMM on the same data and split.
    let opts = TrainOptions::fast();
    let (train, test) = train_test_split(bundle.samples.clone(), opts.test_fraction, opts.seed);
    let hmm_train: Vec<(Vec<Vec<f32>>, usize)> = train
        .iter()
        .map(|(f, y)| (sequence_for_hmm(f, &bundle.layout), *y))
        .collect();
    let hmm = HmmClassifier::fit(&hmm_train, 3, 5).expect("training data is well-formed");
    let hmm_hits = test
        .iter()
        .filter(|(f, y)| hmm.predict(&sequence_for_hmm(f, &bundle.layout)) == *y)
        .count();
    let hmm_acc = hmm_hits as f64 / test.len() as f64;

    println!();
    println!("  M2AI (CNN+LSTM):  {:.1}%", 100.0 * outcome.test_accuracy);
    println!("  HMM (FEMO-style): {:.1}%", 100.0 * hmm_acc);

    // Where does the difference come from? Check the order-mirrored
    // pairs specifically (identical movement statistics, opposite
    // order — rep-phase confusion in gym terms).
    use m2ai::motion::activity::ORDER_MIRRORED_PAIRS;
    println!();
    println!("accuracy on order-mirrored exercise pairs (M2AI):");
    for (a, b) in ORDER_MIRRORED_PAIRS {
        let pair_test: Vec<_> = test.iter().filter(|(_, y)| *y == a || *y == b).collect();
        if pair_test.is_empty() {
            continue;
        }
        let hits = pair_test
            .iter()
            .filter(|(f, y)| outcome.model.predict(f) == *y)
            .count();
        println!(
            "  A{:02} vs A{:02}: {}/{} correct",
            a + 1,
            b + 1,
            hits,
            pair_test.len()
        );
    }
    println!("(a memoryless classifier cannot beat a coin flip on these pairs)");
}
