//! Consistent-hash router property suite (serve-fabric PR).
//!
//! The fabric's placement layer is pure and deterministic, which makes
//! it the one concurrency-adjacent component we can property-test
//! exhaustively instead of stress-test: balance, consistent-hash
//! stability under shard addition, dead-shard exclusion, and the
//! routing table's spill-until-full admission contract.

use m2ai::fabric::router::{HashRing, Placement, RouteError, RoutingTable};
use proptest::prelude::*;

/// Keys routed in the statistical properties.
const KEYS: usize = 4000;

/// Ring points per shard for the balance property. Imbalance shrinks
/// roughly as `1/sqrt(vnodes)`; 128 points keeps the worst shard
/// within the asserted envelope with margin.
const BALANCE_VNODES: usize = 128;

#[test]
fn balance_under_many_vnodes_is_bounded() {
    for shards in [2usize, 3, 4, 8] {
        let ring = HashRing::new(shards, BALANCE_VNODES);
        let mut counts = vec![0usize; shards];
        for key in 0..KEYS as u64 {
            counts[ring.route(key).expect("alive")] += 1;
        }
        let fair = KEYS as f64 / shards as f64;
        for (shard, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / fair;
            assert!(
                (0.45..=1.8).contains(&ratio),
                "{shards} shards: shard {shard} got {c} of {KEYS} keys \
                 ({ratio:.2}x fair share) — ring is badly imbalanced"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Consistent-hash stability: adding a shard may only move a key
    /// *to the new shard* — never shuffle it between old shards.
    #[test]
    fn adding_a_shard_only_steals_keys(
        shards in 1usize..8,
        vnodes in 8usize..64,
        key_seed in any::<u64>(),
    ) {
        let mut ring = HashRing::new(shards, vnodes);
        let keys: Vec<u64> = (0..256u64).map(|i| key_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect();
        let before: Vec<usize> =
            keys.iter().map(|&k| ring.route(k).expect("alive")).collect();
        let new_shard = ring.add_shard();
        for (&k, &old) in keys.iter().zip(&before) {
            let now = ring.route(k).expect("alive");
            prop_assert!(
                now == old || now == new_shard,
                "key {k} moved {old} -> {now}, but only moves onto the \
                 new shard {new_shard} are allowed"
            );
        }
    }

    /// About (and only about) `1/N` of keys should move when the N-th
    /// shard joins — the property that makes consistent hashing worth
    /// its complexity over `key % N`.
    #[test]
    fn about_one_nth_of_keys_move_on_add(
        shards in 2usize..6,
        key_seed in any::<u64>(),
    ) {
        let mut ring = HashRing::new(shards, BALANCE_VNODES);
        let keys: Vec<u64> = (0..KEYS as u64)
            .map(|i| key_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let before: Vec<usize> =
            keys.iter().map(|&k| ring.route(k).expect("alive")).collect();
        ring.add_shard();
        let moved = keys
            .iter()
            .zip(&before)
            .filter(|&(&k, &old)| ring.route(k).expect("alive") != old)
            .count();
        let expected = KEYS as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) < 2.0 * expected && (moved as f64) > 0.4 * expected,
            "{moved} of {KEYS} keys moved joining shard {}; expected ~{expected:.0}",
            shards + 1
        );
    }

    /// Dead shards never receive traffic, from `route` or from the
    /// spill-order `candidates` walk.
    #[test]
    fn dead_shards_are_never_routed_to(
        shards in 2usize..8,
        vnodes in 8usize..64,
        dead_mask in any::<u8>(),
        key_seed in any::<u64>(),
    ) {
        let mut ring = HashRing::new(shards, vnodes);
        let mut dead = Vec::new();
        for shard in 0..shards {
            // Keep at least one shard alive.
            if dead_mask & (1 << shard) != 0 && ring.alive_count() > 1 {
                ring.retire_shard(shard);
                dead.push(shard);
            }
        }
        for i in 0..128u64 {
            let key = key_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let routed = ring.route(key).expect("an alive shard remains");
            prop_assert!(ring.is_alive(routed), "routed to dead shard {routed}");
            prop_assert!(!dead.contains(&routed));
            let candidates: Vec<usize> = ring.candidates(key).collect();
            prop_assert!(candidates.len() == ring.alive_count(),
                "candidates must cover every alive shard exactly once");
            for c in candidates {
                prop_assert!(ring.is_alive(c), "candidate {c} is dead");
            }
        }
    }

    /// The routing table admits exactly `shards * capacity` sessions
    /// (spilling along the ring as shards fill), refuses the next with
    /// `Full`, and reuses capacity released by a close.
    #[test]
    fn table_spills_until_every_shard_is_full(
        shards in 1usize..5,
        capacity in 1usize..4,
        vnodes in 8usize..64,
    ) {
        let mut table = RoutingTable::new(shards, vnodes, capacity);
        let total = shards * capacity;
        let mut placements: Vec<Placement> = Vec::new();
        for key in 0..total as u64 {
            placements.push(table.assign(key).expect("capacity remains"));
        }
        for shard in 0..shards {
            prop_assert!(table.load(shard) == capacity,
                "spill must fill every shard before Full");
        }
        prop_assert_eq!(table.assign(total as u64), Err(RouteError::Full));
        // Pinning: placements recorded by the table match shard_of.
        for (key, p) in placements.iter().enumerate() {
            prop_assert_eq!(table.shard_of(key as u64), Some(p.shard));
        }
        // Release one and the slot is reusable — on the same shard,
        // since only that shard has room.
        let freed = table.release(0).expect("assigned above");
        let re = table.assign(total as u64).expect("released capacity");
        prop_assert_eq!(re.shard, freed);
    }

    /// Existing table assignments are pinned across shard addition:
    /// the ring may re-prefer sessions, the table must not move them.
    #[test]
    fn table_pins_assignments_across_shard_add(
        shards in 1usize..5,
        vnodes in 8usize..64,
        n_keys in 1usize..40,
    ) {
        let mut table = RoutingTable::new(shards, vnodes, 64);
        for key in 0..n_keys as u64 {
            table.assign(key).expect("capacity");
        }
        let before: Vec<Option<usize>> =
            (0..n_keys as u64).map(|k| table.shard_of(k)).collect();
        table.add_shard();
        for (k, old) in before.iter().enumerate() {
            prop_assert!(table.shard_of(k as u64) == *old,
                "assignment for key {} moved on shard add", k);
        }
    }
}
