//! The parallel execution layer must be invisible in the output:
//! every stage that fans out over a work-pool is built from index-pure
//! tasks whose results are placed back by index, so any thread count
//! (including 0 = "all cores") produces bit-identical results to a
//! serial run. These tests pin that contract.

use m2ai::prelude::*;
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_rfsim::geometry::Point2;

/// Bitwise sample comparison: `f32::eq` would accept `0.0 == -0.0` and
/// reject `NaN == NaN`; the determinism contract is stricter than both.
fn assert_samples_bit_identical(
    a: &[(Vec<Vec<f32>>, usize)],
    b: &[(Vec<Vec<f32>>, usize)],
    what: &str,
) {
    assert_eq!(a.len(), b.len(), "{what}: sample counts differ");
    for (i, ((fa, ya), (fb, yb))) in a.iter().zip(b).enumerate() {
        assert_eq!(ya, yb, "{what}: label of sample {i} differs");
        assert_eq!(fa.len(), fb.len(), "{what}: frame count of sample {i}");
        for (k, (ra, rb)) in fa.iter().zip(fb).enumerate() {
            assert_eq!(ra.len(), rb.len(), "{what}: dim of frame {k}");
            for (j, (va, vb)) in ra.iter().zip(rb).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "{what}: sample {i} frame {k} feature {j}: {va} vs {vb}"
                );
            }
        }
    }
}

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        samples_per_class: 2,
        frames_per_sample: 4,
        calibrate: false,
        ..ExperimentConfig::paper_default()
    }
}

#[test]
fn generate_dataset_is_thread_count_invariant() {
    // Two configurations, including the full calibrated path (the
    // calibrator is learned once, before the fan-out, and shared
    // read-only by every worker).
    let mut calibrated = tiny_config();
    calibrated.calibrate = true;
    calibrated.samples_per_class = 1;

    for (name, base) in [("uncalibrated", tiny_config()), ("calibrated", calibrated)] {
        let mut serial_cfg = base.clone();
        serial_cfg.n_threads = 1;
        let mut parallel_cfg = base;
        parallel_cfg.n_threads = 8;

        let serial = generate_dataset(&serial_cfg);
        let parallel = generate_dataset(&parallel_cfg);
        // `config` differs by design (it records n_threads), so compare
        // the data, not the whole bundle.
        assert_samples_bit_identical(&serial.samples, &parallel.samples, name);
        assert_eq!(serial.layout, parallel.layout);
        assert_eq!(serial.n_classes, parallel.n_classes);
    }
}

#[test]
fn frame_builder_is_parallelism_invariant() {
    // One recorded stream, one layout; only the worker count varies.
    let scene = SceneSnapshot::with_tags(vec![
        Point2::new(4.2, 4.5),
        Point2::new(5.8, 4.0),
        Point2::new(6.6, 5.2),
        Point2::new(3.2, 3.6),
    ]);
    let mut reader = Reader::new(Room::laboratory(), ReaderConfig::default(), 4);
    let readings = reader.run(|_| scene.clone(), 3.0);
    let layout = FrameLayout::new(4, 4, FeatureMode::Joint);

    let serial = FrameBuilder::new(layout, PhaseCalibrator::disabled(4, 4), 0.5);
    let frames_1 = serial.build_sample(&readings, 0.0, 5);
    for threads in [2usize, 4, 8] {
        let par = FrameBuilder::new(layout, PhaseCalibrator::disabled(4, 4), 0.5)
            .with_parallelism(threads);
        let single = par.build_frame(&readings, 0.5);
        let single_serial = serial.build_frame(&readings, 0.5);
        assert_eq!(
            single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            single_serial
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "build_frame with {threads} threads"
        );
        let frames_n = par.build_sample(&readings, 0.0, 5);
        let a: Vec<(Vec<Vec<f32>>, usize)> = vec![(frames_1.clone(), 0)];
        let b: Vec<(Vec<Vec<f32>>, usize)> = vec![(frames_n, 0)];
        assert_samples_bit_identical(&a, &b, &format!("build_sample x{threads}"));
    }
}

#[test]
fn instrumentation_on_or_off_is_bit_invariant() {
    // The observability layer records through relaxed atomics on the
    // side; toggling it must leave every numeric output bit-identical
    // (the no-op cargo feature compiles to the same contract).
    let cfg = tiny_config();
    let mut scratch = m2ai_kernels::KernelScratch::new();

    m2ai_obs::set_enabled(true);
    let with_obs = generate_dataset(&cfg);
    let model = build_model(
        &with_obs.layout,
        with_obs.n_classes,
        Architecture::CnnLstm,
        1,
    );
    let probs_on = model.predict_proba_with(&with_obs.samples[0].0, &mut scratch);

    m2ai_obs::set_enabled(false);
    let without_obs = generate_dataset(&cfg);
    let probs_off = model.predict_proba_with(&without_obs.samples[0].0, &mut scratch);
    m2ai_obs::set_enabled(true);

    assert_samples_bit_identical(&with_obs.samples, &without_obs.samples, "obs on vs off");
    assert_eq!(
        probs_on.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        probs_off.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "predict_proba must not see the instrumentation"
    );
    // And the instrumentation did actually record while enabled.
    assert!(
        m2ai_obs::counter_family_total("m2ai_reader_reads_total") > 0,
        "enabled instrumentation must count reader output"
    );
}

#[test]
fn baseline_battery_is_thread_count_invariant() {
    let bundle = generate_dataset(&tiny_config());
    let serial = evaluate_baselines(&bundle, 0.25, 3, 1);
    let parallel = evaluate_baselines(&bundle, 0.25, 3, 4);
    assert_eq!(serial.len(), parallel.len());
    for ((na, aa), (nb, ab)) in serial.iter().zip(&parallel) {
        assert_eq!(na, nb, "baseline order must not depend on threads");
        assert_eq!(
            aa.to_bits(),
            ab.to_bits(),
            "{na}: serial {aa} vs parallel {ab}"
        );
    }
}
