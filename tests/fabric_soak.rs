//! Multi-threaded soak / churn test for the serve fabric (serve-fabric
//! PR).
//!
//! Several producer threads hammer one fabric concurrently: tracked
//! sessions streaming clean frames (checked for *exact* prediction
//! conservation afterwards), ephemeral sessions opened and closed
//! mid-flight to churn the routing table and engine slots, a
//! raw-readings session fed through a heavy [`FaultPlan`] (checked for
//! finite outputs only — faults legitimately suppress), and a
//! mid-soak throttle flip on shard 0. The whole thing runs under a
//! watchdog so a deadlock fails the test instead of hanging CI.
//!
//! What "no lost or duplicated predictions" means concretely:
//!
//! * a tracked session that pushed `STEPS` frames with zero sheds must
//!   emit exactly `STEPS - HISTORY + 1` predictions (the window ring
//!   eats the first `HISTORY - 1`);
//! * every session's prediction stream must have strictly increasing
//!   `time_s` — a duplicate or reordered emission would repeat or
//!   regress a timestamp (per-session FIFO is the fabric's ordering
//!   contract).

use m2ai::core::calibration::PhaseCalibrator;
use m2ai::core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai::core::network::{build_model, Architecture};
use m2ai::core::online::HealthState;
use m2ai::core::serve::ServeConfig;
use m2ai::core::stream_extract::StreamingExtract;
use m2ai::fabric::{FabricConfig, FabricPrediction, PushOutcome, ServeFabric, ShardThrottle};
use m2ai::rfsim::fault::FaultPlan;
use m2ai::rfsim::reader::{Reader, ReaderConfig};
use m2ai::rfsim::reading::TagReading;
use m2ai::rfsim::room::Room;
use m2ai::rfsim::scene::SceneSnapshot;
use std::collections::HashMap;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::Duration;

/// Sliding window length (small model keeps the soak fast).
const HISTORY: usize = 3;

/// Producer threads pushing clean tracked/ephemeral traffic.
const PRODUCERS: usize = 3;

/// Tracked sessions opened per producer.
const ROUNDS: usize = 5;

/// Frames pushed per tracked session.
const STEPS: usize = 10;

/// Frames pushed per ephemeral (churned) session.
const EPHEMERAL_STEPS: usize = 4;

/// Hard wall-clock ceiling for the whole soak.
const WATCHDOG: Duration = Duration::from_secs(180);

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn synth_frame(seed: u64, step: usize) -> Vec<f32> {
    let dim = layout().frame_dim();
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step as u64)
        | 1;
    (0..dim)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Simulated tag readings for the faulty raw-readings producer.
fn faulty_chunks() -> Vec<Vec<TagReading>> {
    let cfg = ReaderConfig {
        phase_noise_std: 0.02,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(Room::hall(), cfg, 1);
    let scene = SceneSnapshot::with_tags(vec![m2ai::rfsim::geometry::Point2::new(4.4, 3.2)]);
    let readings = reader.run(|_| scene.clone(), 5.0);
    let plan = FaultPlan::with_intensity(0.6, 0xFA17);
    let faulted = plan.apply(readings);
    faulted.chunks(40).map(<[TagReading]>::to_vec).collect()
}

struct SoakOutcome {
    /// `(key, frames pushed)` for every tracked session.
    tracked: Vec<(m2ai::fabric::SessionKey, usize)>,
    /// Raw keys of churned sessions (already closed mid-soak).
    ephemeral_keys: Vec<u64>,
    /// Raw key of the faulty raw-readings session.
    fault_key: u64,
    /// Every prediction the fabric emitted, collector order.
    predictions: Vec<FabricPrediction>,
    /// Final stats out of `shutdown()`.
    stats: m2ai::fabric::FabricStats,
    /// Sessions opened / closed across all threads (ground truth).
    opened: usize,
    closed: usize,
}

/// The soak body — runs on a watchdog-supervised thread.
fn soak() -> SoakOutcome {
    let l = layout();
    let builder = FrameBuilder::new(l, PhaseCalibrator::disabled(1, 4), 0.5);
    let model = build_model(&l, 12, Architecture::CnnLstm, 7);
    let fabric = ServeFabric::new(
        model,
        builder,
        FabricConfig {
            shards: 2,
            vnodes: 32,
            ingress_capacity: 256,
            serve: ServeConfig {
                max_sessions: 32,
                history_len: HISTORY,
                queue_capacity: 256,
                // The raw-readings session exercises the streaming
                // incremental extractor under concurrent faulty load.
                streaming: Some(StreamingExtract { refresh_every: 4 }),
                ..ServeConfig::default()
            },
            supervision: Default::default(),
        },
    );
    let chunks = faulty_chunks();
    let mut tracked: Vec<(m2ai::fabric::SessionKey, usize)> = Vec::new();
    let mut ephemeral_keys: Vec<u64> = Vec::new();
    let mut fault_key = 0u64;
    let mut opened = 0usize;
    let mut closed = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for producer in 0..PRODUCERS {
            let fabric = &fabric;
            handles.push(scope.spawn(move || {
                let mut my_tracked = Vec::new();
                let mut my_ephemeral = Vec::new();
                for round in 0..ROUNDS {
                    let seed = (producer * ROUNDS + round) as u64;
                    // One tracked session: stays open until the final
                    // flush so its queue is never discarded.
                    let key = fabric.open_session().expect("fabric sized for soak");
                    for t in 0..STEPS {
                        loop {
                            match fabric
                                .push_frame(
                                    key,
                                    t as f64 * 0.5,
                                    synth_frame(seed, t),
                                    HealthState::Healthy,
                                )
                                .expect("session open")
                            {
                                PushOutcome::Enqueued => break,
                                PushOutcome::Shed => std::thread::yield_now(),
                            }
                        }
                    }
                    my_tracked.push((key, STEPS));
                    // One ephemeral session: opened, poked, closed
                    // immediately — routing-table and slot churn.
                    let eph = fabric.open_session().expect("fabric sized for soak");
                    for t in 0..EPHEMERAL_STEPS {
                        // Sheds are fine here; the session is about to
                        // be closed anyway.
                        let _ = fabric
                            .push_frame(
                                eph,
                                t as f64 * 0.5,
                                synth_frame(seed ^ 0xEEEE, t),
                                HealthState::Healthy,
                            )
                            .expect("session open");
                    }
                    fabric.close_session(eph).expect("open above");
                    my_ephemeral.push(eph.raw());
                }
                (my_tracked, my_ephemeral)
            }));
        }
        // Fault producer: raw readings through a heavy fault plan.
        let fault_handle = {
            let fabric = &fabric;
            let chunks = &chunks;
            scope.spawn(move || {
                let key = fabric.open_session().expect("fabric sized for soak");
                for c in chunks {
                    loop {
                        match fabric.push(key, c.clone()).expect("session open") {
                            PushOutcome::Enqueued => break,
                            PushOutcome::Shed => std::thread::yield_now(),
                        }
                    }
                }
                key.raw()
            })
        };
        // Mid-soak throttle churn on shard 0: hold ticks briefly, then
        // resume — producers must keep making progress either way.
        fabric.set_throttle(0, ShardThrottle::HoldTicks);
        std::thread::sleep(Duration::from_millis(20));
        fabric.set_throttle(0, ShardThrottle::Run);
        for h in handles {
            let (t, e) = h.join().expect("producer panicked");
            opened += t.len() + e.len();
            closed += e.len();
            tracked.extend(t);
            ephemeral_keys.extend(e);
        }
        fault_key = fault_handle.join().expect("fault producer panicked");
        opened += 1;
    });
    // Everything pushed; the barrier drains every queue, after which
    // every surviving prediction has been delivered.
    let mut predictions = fabric.flush();
    for &(key, _) in &tracked {
        fabric
            .close_session(key)
            .expect("tracked sessions stay open");
    }
    predictions.extend(fabric.poll());
    let stats = fabric.shutdown();
    SoakOutcome {
        tracked,
        ephemeral_keys,
        fault_key,
        predictions,
        stats,
        opened,
        closed,
    }
}

#[test]
fn concurrent_soak_conserves_predictions_and_shuts_down_cleanly() {
    let (tx, rx) = channel();
    let worker = std::thread::spawn(move || {
        let outcome = soak();
        let _ = tx.send(outcome);
    });
    let outcome = match rx.recv_timeout(WATCHDOG) {
        Ok(o) => o,
        Err(RecvTimeoutError::Timeout) => {
            panic!("soak deadlocked: no result within {WATCHDOG:?}")
        }
        Err(RecvTimeoutError::Disconnected) => {
            worker.join().expect("soak thread panicked");
            unreachable!("disconnected without panic")
        }
    };
    worker.join().expect("soak thread panicked");

    // Group per session, preserving collector order (per-session FIFO).
    let mut per_session: HashMap<u64, Vec<&FabricPrediction>> = HashMap::new();
    for p in &outcome.predictions {
        per_session.entry(p.session.raw()).or_default().push(p);
    }

    // Exact conservation on tracked sessions: no loss, no duplication.
    for &(key, pushed) in &outcome.tracked {
        let key = key.raw();
        let got = per_session.get(&key).map_or(0, Vec::len);
        assert_eq!(
            got,
            pushed - HISTORY + 1,
            "tracked session {key}: pushed {pushed} clean frames, \
             expected exactly {} predictions, got {got}",
            pushed - HISTORY + 1
        );
    }

    // Ephemeral sessions may have been cut off mid-queue by close, but
    // can never emit more than their pushes could justify.
    for &key in &outcome.ephemeral_keys {
        let got = per_session.get(&key).map_or(0, Vec::len);
        assert!(
            got <= EPHEMERAL_STEPS.saturating_sub(HISTORY - 1),
            "ephemeral session {key} emitted {got} predictions from \
             {EPHEMERAL_STEPS} pushes"
        );
    }

    // Per-session order: strictly increasing window end times. A
    // duplicated or reordered delivery shows up here.
    for (key, preds) in &per_session {
        for w in preds.windows(2) {
            assert!(
                w[1].prediction.time_s > w[0].prediction.time_s,
                "session {key}: prediction times regressed \
                 ({} then {}) — duplicate or reorder",
                w[0].prediction.time_s,
                w[1].prediction.time_s
            );
        }
    }

    // Finite outputs everywhere, including the faulted session.
    for p in &outcome.predictions {
        assert!(
            p.prediction.confidence.is_finite(),
            "non-finite confidence escaped suppression"
        );
        assert!(
            p.prediction.probabilities.iter().all(|v| v.is_finite()),
            "non-finite probabilities escaped suppression"
        );
    }
    let _ = outcome.fault_key; // faults may legitimately suppress all output

    // Clean shutdown: the books balance.
    let opened: u64 = outcome.stats.shards.iter().map(|s| s.opened).sum();
    let closed: u64 = outcome.stats.shards.iter().map(|s| s.closed).sum();
    assert_eq!(
        opened as usize, outcome.opened,
        "every open reached a shard"
    );
    assert!(
        closed as usize >= outcome.closed,
        "mid-soak closes ({}) must all have been processed (saw {closed})",
        outcome.closed
    );
}
