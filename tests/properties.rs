//! Property-based tests over the cross-crate mathematical invariants.

use m2ai::dsp::fft::{fft, ifft};
use m2ai::dsp::music::{pseudospectrum, steering_vector, MusicConfig, SourceCount, SteeringTable};
use m2ai::dsp::phase::{unwrap, wrap_positive};
use m2ai::dsp::Complex;
use m2ai::nn::loss::{softmax, softmax_cross_entropy};
use m2ai::nn::metrics::ConfusionMatrix;
use m2ai::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT followed by IFFT is the identity for any signal and length.
    #[test]
    fn fft_roundtrip(values in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..80)) {
        let x: Vec<Complex> = values.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + a.norm()));
        }
    }

    /// Parseval: time-domain and frequency-domain energy agree.
    #[test]
    fn fft_parseval(values in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..64)) {
        let x: Vec<Complex> = values.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let spec = fft(&x);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
    }

    /// Phase unwrap of any wrapped continuous ramp preserves increments.
    #[test]
    fn unwrap_preserves_shape(slope in -2.0f64..2.0, n in 3usize..60) {
        let truth: Vec<f64> = (0..n).map(|t| slope * t as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_positive(p)).collect();
        let un = unwrap(&wrapped);
        let offset = un[0] - truth[0];
        for (a, b) in truth.iter().zip(&un) {
            prop_assert!((b - a - offset).abs() < 1e-9);
        }
    }

    /// Steering vectors have unit-magnitude entries at any geometry.
    #[test]
    fn steering_vector_is_unit_modulus(
        n in 2usize..8,
        spacing in 0.01f64..0.6,
        theta in 0.0f64..180.0,
        round_trip in any::<bool>(),
    ) {
        let cfg = MusicConfig {
            n_antennas: n,
            spacing_wavelengths: spacing,
            round_trip,
            ..MusicConfig::paper_default()
        };
        let sv = steering_vector(&cfg, theta);
        prop_assert_eq!(sv.len(), n);
        for z in sv {
            prop_assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    /// Softmax output is a probability distribution for any logits.
    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Cross-entropy gradient always sums to ~0 (shift invariance).
    #[test]
    fn xent_gradient_sums_to_zero(
        logits in prop::collection::vec(-20.0f32..20.0, 2..12),
        label_seed in any::<u16>(),
    ) {
        let label = label_seed as usize % logits.len();
        let (loss, grad) = softmax_cross_entropy(&logits, label);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.iter().sum::<f32>().abs() < 1e-4);
    }

    /// Confusion-matrix accuracy equals hand-counted accuracy for any
    /// prediction stream.
    #[test]
    fn confusion_accuracy_matches(pairs in prop::collection::vec((0usize..6, 0usize..6), 1..120)) {
        let mut cm = ConfusionMatrix::new(6);
        for &(a, p) in &pairs {
            cm.record(a, p);
        }
        let manual = pairs.iter().filter(|(a, p)| a == p).count() as f64 / pairs.len() as f64;
        prop_assert!((cm.accuracy() - manual).abs() < 1e-12);
    }

    /// Frame layouts are internally consistent for every configuration.
    #[test]
    fn frame_layout_dims_consistent(
        n_tags in 1usize..10,
        n_ant in 1usize..5,
        mode_idx in 0usize..5,
    ) {
        let mode = [
            FeatureMode::Joint,
            FeatureMode::MusicOnly,
            FeatureMode::PeriodogramOnly,
            FeatureMode::PhaseOnly,
            FeatureMode::RssiOnly,
        ][mode_idx];
        let layout = FrameLayout::new(n_tags, n_ant, mode);
        prop_assert_eq!(layout.frame_dim(), layout.spectrum_dim() + layout.direct_dim());
        prop_assert!(layout.frame_dim() > 0);
    }

    /// The precomputed steering-vector table is bitwise-identical to
    /// direct computation for any geometry — the cache may never change
    /// a single mantissa bit of a pseudospectrum.
    #[test]
    fn steering_table_matches_direct(
        n in 2usize..7,
        spacing in 0.01f64..0.6,
        round_trip in any::<bool>(),
        n_angles in 16usize..181,
    ) {
        let cfg = MusicConfig {
            n_antennas: n,
            spacing_wavelengths: spacing,
            round_trip,
            n_angles,
            ..MusicConfig::paper_default()
        };
        let table = SteeringTable::for_config(&cfg);
        prop_assert_eq!(table.len(), n_angles);
        for g in 0..n_angles {
            let theta = 180.0 * g as f64 / n_angles as f64;
            let direct = steering_vector(&cfg, theta);
            let cached = table.vector(g);
            prop_assert_eq!(cached.len(), direct.len());
            for (a, b) in cached.iter().zip(&direct) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    /// Pseudospectra are finite and non-negative everywhere, and
    /// duplicating the snapshot set (which leaves the correlation
    /// matrix unchanged up to summation order) leaves the spectrum
    /// unchanged too.
    #[test]
    fn pseudospectrum_finite_and_duplication_invariant(
        theta in 10.0f64..170.0,
        phases in prop::collection::vec(0.0f64..std::f64::consts::TAU, 4..9),
        noise in prop::collection::vec((-0.05f64..0.05, -0.05f64..0.05), 36),
    ) {
        // MDL would see a different snapshot count after duplication,
        // so pin the source count; the subspace split is then a pure
        // function of the correlation matrix.
        let cfg = MusicConfig {
            source_count: SourceCount::Fixed(1),
            ..MusicConfig::paper_default()
        };
        let sv = steering_vector(&cfg, theta);
        let snaps: Vec<Vec<Complex>> = phases
            .iter()
            .enumerate()
            .map(|(i, &ph)| {
                (0..cfg.n_antennas)
                    .map(|k| {
                        let (re, im) = noise[(i * cfg.n_antennas + k) % noise.len()];
                        sv[k] * Complex::cis(ph) + Complex::new(re, im)
                    })
                    .collect()
            })
            .collect();
        let spec = pseudospectrum(&snaps, &cfg).expect("well-formed snapshots");
        prop_assert_eq!(spec.power.len(), cfg.n_angles);
        for &p in &spec.power {
            prop_assert!(p.is_finite() && p >= 0.0, "power {p}");
        }

        let doubled: Vec<Vec<Complex>> =
            snaps.iter().chain(snaps.iter()).cloned().collect();
        let spec2 = pseudospectrum(&doubled, &cfg).expect("well-formed snapshots");
        for (a, b) in spec.power.iter().zip(&spec2.power) {
            prop_assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                "duplication changed the spectrum: {a} vs {b}"
            );
        }
    }

    /// Room geometry: clamped points are always inside.
    #[test]
    fn room_clamp_contains(x in -50.0f64..50.0, y in -50.0f64..50.0) {
        let room = Room::laboratory();
        let p = room.clamp_inside(m2ai::rfsim::geometry::Point2::new(x, y), 0.5);
        prop_assert!(room.contains(p));
    }

    /// Wavelengths in the FCC band are near 0.32-0.33 m.
    #[test]
    fn band_wavelengths(ch in 0usize..50) {
        let f = m2ai::rfsim::channel::channel_frequency_hz(ch);
        let lambda = m2ai::rfsim::wavelength(f);
        prop_assert!((0.32..0.34).contains(&lambda));
    }

    /// `FaultPlan::transform` is a pure function of the plan and the
    /// reading: applying the same plan to the same stream twice gives
    /// bit-identical survivors, and the zero-intensity plan is the
    /// identity for any seed.
    #[test]
    fn fault_transform_pure_and_none_is_identity(
        intensity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let base = base_stream();
        let plan = FaultPlan::with_intensity(intensity, seed);
        let a = plan.apply(base.clone());
        let b = plan.apply(base.clone());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
            prop_assert_eq!(x.phase_rad.to_bits(), y.phase_rad.to_bits());
            prop_assert_eq!(x.rssi_dbm.to_bits(), y.rssi_dbm.to_bits());
        }
        let none = FaultPlan::with_intensity(0.0, seed);
        let passed = none.apply(base.clone());
        prop_assert_eq!(passed.len(), base.len());
        for (x, y) in passed.iter().zip(base) {
            prop_assert_eq!(x.phase_rad.to_bits(), y.phase_rad.to_bits());
            prop_assert_eq!(x.rssi_dbm.to_bits(), y.rssi_dbm.to_bits());
        }
    }

    /// Frames built from arbitrarily faulted streams are always finite,
    /// and per-tag coverage stays inside `[0, 1]` — the degradation
    /// contract of PR-2.
    #[test]
    fn faulted_frames_finite_with_coverage_in_unit_interval(
        intensity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::with_intensity(intensity, seed);
        let readings = plan.apply(base_stream());
        let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 0.5);
        let (frame, quality) = builder.build_frame_with_quality(&readings, 0.0);
        prop_assert_eq!(frame.len(), layout.frame_dim());
        for &v in &frame {
            prop_assert!(v.is_finite(), "non-finite frame value {v}");
        }
        prop_assert_eq!(quality.tag_coverage.len(), 2);
        for &c in &quality.tag_coverage {
            prop_assert!((0.0..=1.0).contains(&c), "coverage {c} out of range");
        }
    }

    /// Even frames built from streams with hand-corrupted fields (NaN
    /// and infinities injected directly, beyond what `FaultPlan` does)
    /// never leak a non-finite value.
    #[test]
    fn hand_corrupted_streams_still_yield_finite_frames(
        corruption in prop::collection::vec((0usize..400, 0usize..3), 1..40),
    ) {
        let mut readings = base_stream();
        let n = readings.len();
        for &(idx, field) in &corruption {
            let r = &mut readings[idx % n];
            match field {
                0 => r.phase_rad = f64::NAN,
                1 => r.rssi_dbm = f64::INFINITY,
                _ => r.time_s = f64::NEG_INFINITY,
            }
        }
        let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 0.5);
        let (frame, _) = builder.build_frame_with_quality(&readings, 0.0);
        for &v in &frame {
            prop_assert!(v.is_finite(), "corrupted reading leaked: {v}");
        }
    }
}

/// A fixed clean reader stream shared by the fault properties, built
/// once (the reader simulation is the expensive part, and every
/// property only needs *a* realistic stream, not a fresh one per case).
fn base_stream() -> Vec<m2ai::rfsim::reading::TagReading> {
    use std::sync::OnceLock;
    static STREAM: OnceLock<Vec<m2ai::rfsim::reading::TagReading>> = OnceLock::new();
    STREAM
        .get_or_init(|| {
            let mut reader = Reader::new(Room::laboratory(), ReaderConfig::default(), 2);
            let scene = SceneSnapshot::with_tags(vec![
                m2ai::rfsim::geometry::Point2::new(2.0, 2.5),
                m2ai::rfsim::geometry::Point2::new(3.5, 2.5),
            ]);
            reader.run(|_| scene.clone(), 2.0)
        })
        .clone()
}
