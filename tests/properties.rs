//! Property-based tests over the cross-crate mathematical invariants.

use m2ai::dsp::fft::{fft, ifft};
use m2ai::dsp::music::{pseudospectrum, steering_vector, MusicConfig, SourceCount, SteeringTable};
use m2ai::dsp::phase::{unwrap, wrap_positive};
use m2ai::dsp::Complex;
use m2ai::nn::loss::{softmax, softmax_cross_entropy};
use m2ai::nn::metrics::ConfusionMatrix;
use m2ai::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT followed by IFFT is the identity for any signal and length.
    #[test]
    fn fft_roundtrip(values in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..80)) {
        let x: Vec<Complex> = values.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + a.norm()));
        }
    }

    /// Parseval: time-domain and frequency-domain energy agree.
    #[test]
    fn fft_parseval(values in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..64)) {
        let x: Vec<Complex> = values.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let spec = fft(&x);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
    }

    /// Phase unwrap of any wrapped continuous ramp preserves increments.
    #[test]
    fn unwrap_preserves_shape(slope in -2.0f64..2.0, n in 3usize..60) {
        let truth: Vec<f64> = (0..n).map(|t| slope * t as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_positive(p)).collect();
        let un = unwrap(&wrapped);
        let offset = un[0] - truth[0];
        for (a, b) in truth.iter().zip(&un) {
            prop_assert!((b - a - offset).abs() < 1e-9);
        }
    }

    /// Steering vectors have unit-magnitude entries at any geometry.
    #[test]
    fn steering_vector_is_unit_modulus(
        n in 2usize..8,
        spacing in 0.01f64..0.6,
        theta in 0.0f64..180.0,
        round_trip in any::<bool>(),
    ) {
        let cfg = MusicConfig {
            n_antennas: n,
            spacing_wavelengths: spacing,
            round_trip,
            ..MusicConfig::paper_default()
        };
        let sv = steering_vector(&cfg, theta);
        prop_assert_eq!(sv.len(), n);
        for z in sv {
            prop_assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    /// Softmax output is a probability distribution for any logits.
    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Cross-entropy gradient always sums to ~0 (shift invariance).
    #[test]
    fn xent_gradient_sums_to_zero(
        logits in prop::collection::vec(-20.0f32..20.0, 2..12),
        label_seed in any::<u16>(),
    ) {
        let label = label_seed as usize % logits.len();
        let (loss, grad) = softmax_cross_entropy(&logits, label);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.iter().sum::<f32>().abs() < 1e-4);
    }

    /// Confusion-matrix accuracy equals hand-counted accuracy for any
    /// prediction stream.
    #[test]
    fn confusion_accuracy_matches(pairs in prop::collection::vec((0usize..6, 0usize..6), 1..120)) {
        let mut cm = ConfusionMatrix::new(6);
        for &(a, p) in &pairs {
            cm.record(a, p);
        }
        let manual = pairs.iter().filter(|(a, p)| a == p).count() as f64 / pairs.len() as f64;
        prop_assert!((cm.accuracy() - manual).abs() < 1e-12);
    }

    /// Frame layouts are internally consistent for every configuration.
    #[test]
    fn frame_layout_dims_consistent(
        n_tags in 1usize..10,
        n_ant in 1usize..5,
        mode_idx in 0usize..5,
    ) {
        let mode = [
            FeatureMode::Joint,
            FeatureMode::MusicOnly,
            FeatureMode::PeriodogramOnly,
            FeatureMode::PhaseOnly,
            FeatureMode::RssiOnly,
        ][mode_idx];
        let layout = FrameLayout::new(n_tags, n_ant, mode);
        prop_assert_eq!(layout.frame_dim(), layout.spectrum_dim() + layout.direct_dim());
        prop_assert!(layout.frame_dim() > 0);
    }

    /// The precomputed steering-vector table is bitwise-identical to
    /// direct computation for any geometry — the cache may never change
    /// a single mantissa bit of a pseudospectrum.
    #[test]
    fn steering_table_matches_direct(
        n in 2usize..7,
        spacing in 0.01f64..0.6,
        round_trip in any::<bool>(),
        n_angles in 16usize..181,
    ) {
        let cfg = MusicConfig {
            n_antennas: n,
            spacing_wavelengths: spacing,
            round_trip,
            n_angles,
            ..MusicConfig::paper_default()
        };
        let table = SteeringTable::for_config(&cfg);
        prop_assert_eq!(table.len(), n_angles);
        for g in 0..n_angles {
            let theta = 180.0 * g as f64 / n_angles as f64;
            let direct = steering_vector(&cfg, theta);
            let cached = table.vector(g);
            prop_assert_eq!(cached.len(), direct.len());
            for (a, b) in cached.iter().zip(&direct) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    /// Pseudospectra are finite and non-negative everywhere, and
    /// duplicating the snapshot set (which leaves the correlation
    /// matrix unchanged up to summation order) leaves the spectrum
    /// unchanged too.
    #[test]
    fn pseudospectrum_finite_and_duplication_invariant(
        theta in 10.0f64..170.0,
        phases in prop::collection::vec(0.0f64..std::f64::consts::TAU, 4..9),
        noise in prop::collection::vec((-0.05f64..0.05, -0.05f64..0.05), 36),
    ) {
        // MDL would see a different snapshot count after duplication,
        // so pin the source count; the subspace split is then a pure
        // function of the correlation matrix.
        let cfg = MusicConfig {
            source_count: SourceCount::Fixed(1),
            ..MusicConfig::paper_default()
        };
        let sv = steering_vector(&cfg, theta);
        let snaps: Vec<Vec<Complex>> = phases
            .iter()
            .enumerate()
            .map(|(i, &ph)| {
                (0..cfg.n_antennas)
                    .map(|k| {
                        let (re, im) = noise[(i * cfg.n_antennas + k) % noise.len()];
                        sv[k] * Complex::cis(ph) + Complex::new(re, im)
                    })
                    .collect()
            })
            .collect();
        let spec = pseudospectrum(&snaps, &cfg).expect("well-formed snapshots");
        prop_assert_eq!(spec.power.len(), cfg.n_angles);
        for &p in &spec.power {
            prop_assert!(p.is_finite() && p >= 0.0, "power {p}");
        }

        let doubled: Vec<Vec<Complex>> =
            snaps.iter().chain(snaps.iter()).cloned().collect();
        let spec2 = pseudospectrum(&doubled, &cfg).expect("well-formed snapshots");
        for (a, b) in spec.power.iter().zip(&spec2.power) {
            prop_assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                "duplication changed the spectrum: {a} vs {b}"
            );
        }
    }

    /// Room geometry: clamped points are always inside.
    #[test]
    fn room_clamp_contains(x in -50.0f64..50.0, y in -50.0f64..50.0) {
        let room = Room::laboratory();
        let p = room.clamp_inside(m2ai::rfsim::geometry::Point2::new(x, y), 0.5);
        prop_assert!(room.contains(p));
    }

    /// Wavelengths in the FCC band are near 0.32-0.33 m.
    #[test]
    fn band_wavelengths(ch in 0usize..50) {
        let f = m2ai::rfsim::channel::channel_frequency_hz(ch);
        let lambda = m2ai::rfsim::wavelength(f);
        prop_assert!((0.32..0.34).contains(&lambda));
    }
}
