//! Golden-schema contract for the observability surface.
//!
//! After the bench crate's smoke workload, the registry must carry
//! every metric family in `m2ai_bench::obs::REQUIRED_METRICS`, and
//! both exporters must render a document their own linters accept.
//! These tests share the process-global registry and the runtime
//! enable flag, so they serialise on a local lock.

use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn smoke_workload_satisfies_the_golden_schema() {
    let _g = lock();
    m2ai_bench::obs::smoke_workload();
    let gaps = m2ai_bench::obs::registry_gaps();
    assert!(gaps.is_empty(), "golden schema gaps: {gaps:?}");
}

#[test]
fn json_snapshot_is_versioned_and_lint_clean() {
    let _g = lock();
    m2ai_bench::obs::smoke_workload();
    let json = m2ai_obs::export::snapshot_json();
    assert!(
        json.contains(m2ai_obs::export::SNAPSHOT_SCHEMA),
        "snapshot must carry its schema tag"
    );
    let errs = m2ai_obs::export::validate_snapshot_json(&json);
    assert!(errs.is_empty(), "json lint: {errs:?}");
}

#[test]
fn prometheus_text_is_lint_clean_and_complete() {
    let _g = lock();
    m2ai_bench::obs::smoke_workload();
    let text = m2ai_obs::export::prometheus_text();
    let errs = m2ai_obs::export::validate_prometheus(&text);
    assert!(errs.is_empty(), "prometheus lint: {errs:?}");
    for name in m2ai_bench::obs::REQUIRED_METRICS {
        assert!(text.contains(name), "{name} missing from Prometheus text");
    }
}

#[test]
fn runtime_disable_stops_recording() {
    let _g = lock();
    // Warm the registry so the counter exists, then freeze it.
    m2ai_bench::obs::smoke_workload();
    let frozen = m2ai_obs::counter_family_total("m2ai_reader_reads_total");
    assert!(frozen > 0, "smoke must have counted reads");
    m2ai_obs::set_enabled(false);
    m2ai_bench::obs::smoke_workload();
    let still = m2ai_obs::counter_family_total("m2ai_reader_reads_total");
    m2ai_obs::set_enabled(true);
    assert_eq!(frozen, still, "disabled instrumentation must not record");
}
