//! Model checkpoints survive a save/load round trip across the full
//! CNN+LSTM architecture (the deployment path of examples/smart_home).

use m2ai::nn::serialize::{load_params, save_params, CheckpointError};
use m2ai::prelude::*;
use m2ai_core::network::build_model;

fn tiny_bundle() -> DatasetBundle {
    generate_dataset(&ExperimentConfig {
        samples_per_class: 2,
        frames_per_sample: 4,
        calibrate: false,
        ..ExperimentConfig::paper_default()
    })
}

#[test]
fn trained_model_roundtrips() {
    let bundle = tiny_bundle();
    let mut opts = TrainOptions::fast();
    opts.epochs = 3;
    let outcome = train_m2ai(&bundle, &opts);
    let mut trained = outcome.model;
    let bytes = save_params(&mut trained);

    let mut restored = build_model(
        &bundle.layout,
        bundle.n_classes,
        Architecture::CnnLstm,
        4242,
    );
    load_params(&mut restored, &bytes).expect("architectures match");
    for (frames, _) in bundle.samples.iter().take(6) {
        assert_eq!(trained.predict(frames), restored.predict(frames));
        let a = trained.predict_proba(frames);
        let b = restored.predict_proba(frames);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}

#[test]
fn wrong_architecture_is_rejected() {
    let bundle = tiny_bundle();
    let mut cnn_lstm = build_model(&bundle.layout, 12, Architecture::CnnLstm, 1);
    let bytes = save_params(&mut cnn_lstm);
    let mut cnn_only = build_model(&bundle.layout, 12, Architecture::CnnOnly, 1);
    let err = load_params(&mut cnn_only, &bytes).expect_err("must not load");
    assert!(matches!(
        err,
        CheckpointError::BlockCountMismatch { .. } | CheckpointError::ShapeMismatch { .. }
    ));
}

#[test]
fn checkpoint_is_stable_across_process_logic() {
    // Byte-for-byte determinism of serialisation.
    let bundle = tiny_bundle();
    let mut model = build_model(&bundle.layout, 12, Architecture::CnnLstm, 5);
    let a = save_params(&mut model);
    let b = save_params(&mut model);
    assert_eq!(a, b);
}
