//! Golden regression test: a fixed-seed recording pushed through the
//! full feature-extraction path must keep producing the same frames.
//!
//! The literals below were produced by `golden_printer` (run it with
//! `cargo test --test golden_frames -- --ignored --nocapture` after an
//! intentional numerics change and paste its output). The tolerance is
//! loose enough for cross-platform libm differences in `sin`/`cos`
//! (~1 ulp), but tight enough that any real change to calibration,
//! MUSIC, the periodogram, or frame assembly trips it.

use m2ai::prelude::*;
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_rfsim::geometry::Point2;

const REL_TOL: f32 = 1e-4;

/// The pinned scenario: paper geometry, two static tags, 2 s of
/// fixed-seed readings, one Joint frame per half second.
fn golden_frames() -> Vec<Vec<f32>> {
    let scene = SceneSnapshot::with_tags(vec![Point2::new(4.2, 4.5), Point2::new(6.6, 5.2)]);
    let cfg = ReaderConfig {
        seed: 42,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(Room::laboratory(), cfg, 2);
    let readings = reader.run(|_| scene.clone(), 2.0);
    let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 0.5);
    builder.build_sample(&readings, 0.0, 4)
}

/// (frame index, feature index, expected value) — a spread of probe
/// points across both tags' pseudospectra and the direct features.
const GOLDEN_PROBES: &[(usize, usize, f32)] = &[
    (0, 0, 0.029213293),
    (0, 37, 0.023365831),
    (0, 90, 0.6667194),
    (0, 180, 0.6231943),
    (0, 217, 0.62190986),
    (0, 270, 0.8858929),
    (0, 360, 0.7919064),
    (0, 367, 0.55833334),
    (1, 0, 0.26579416),
    (1, 37, 0.2465778),
    (1, 90, 0.7292302),
    (1, 180, 0.0),
    (1, 217, 0.0),
    (1, 270, 0.0),
    (1, 360, 0.7732513),
    (1, 367, 0.0),
    (2, 0, 0.12707321),
    (2, 37, 0.11409122),
    (2, 90, 0.38677257),
    (2, 180, 0.0),
    (2, 217, 0.0),
    (2, 270, 0.0),
    (2, 360, 0.78212434),
    (2, 367, 0.78333336),
    (3, 0, 0.29939643),
    (3, 37, 0.2914681),
    (3, 90, 0.8893466),
    (3, 180, 0.91233325),
    (3, 217, 0.9811863),
    (3, 270, 0.9214344),
    (3, 360, 0.80628633),
    (3, 367, 0.55428654),
];

/// Per-frame feature sums — a cheap whole-frame checksum.
const GOLDEN_SUMS: &[f32] = &[140.72935, 60.858356, 41.50529, 234.64206];

#[test]
#[ignore = "generator: prints fresh golden literals"]
fn golden_printer() {
    let frames = golden_frames();
    let dim = frames[0].len();
    println!("const GOLDEN_PROBES: &[(usize, usize, f32)] = &[");
    for (k, frame) in frames.iter().enumerate() {
        for &j in &[0usize, 37, 90, 180, 217, 270, dim - 8, dim - 1] {
            println!("    ({k}, {j}, {:?}),", frame[j]);
        }
    }
    println!("];");
    println!("const GOLDEN_SUMS: &[f32] = &[");
    for frame in &frames {
        println!("    {:?},", frame.iter().sum::<f32>());
    }
    println!("];");
}

#[test]
fn frames_match_golden_snapshot() {
    let frames = golden_frames();
    assert_eq!(frames.len(), 4);
    assert!(
        !GOLDEN_PROBES.is_empty(),
        "golden literals missing — run golden_printer"
    );
    for &(k, j, expected) in GOLDEN_PROBES {
        let got = frames[k][j];
        assert!(
            (got - expected).abs() <= REL_TOL * (1.0 + expected.abs()),
            "frame {k} feature {j}: got {got}, golden {expected}"
        );
    }
    for (k, (frame, &expected)) in frames.iter().zip(GOLDEN_SUMS).enumerate() {
        let sum: f32 = frame.iter().sum();
        // Sums accumulate rounding over frame_dim() terms; scale the
        // tolerance accordingly.
        let tol = REL_TOL * (1.0 + expected.abs()) * (frame.len() as f32).sqrt();
        assert!(
            (sum - expected).abs() <= tol,
            "frame {k} sum: got {sum}, golden {expected}"
        );
    }
}
