//! End-to-end quantized serving and thread-budget clamping.
//!
//! Two process-global knobs ship with the quantized-inference PR and
//! both are exercised here against the real fabric:
//!
//! * `ServeConfig::backend` — `Some(Backend::QuantI8)` must switch the
//!   process backend when the engine (or a fabric worker's engine) is
//!   constructed, and a prepared model must then serve int8 end to
//!   end: sessions open, frames flow, predictions come out finite.
//! * the `m2ai-par` worker budget — a fabric with `shards == cores`
//!   must clamp tile-parallel GEMM down to one thread per worker so
//!   shard workers plus GEMM tiles never oversubscribe the machine,
//!   and the reservation must be released on shutdown.

use m2ai::core::calibration::PhaseCalibrator;
use m2ai::core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai::core::network::{build_model, Architecture};
use m2ai::core::online::HealthState;
use m2ai::core::serve::{ServeConfig, ServeEngine};
use m2ai::fabric::{FabricConfig, PushOutcome, ServeFabric};
use m2ai::kernels::{self, Backend};
use m2ai::nn::model::SequenceClassifier;
use m2ai::par::budget;
use std::sync::Mutex;

/// Sliding window length (the serving `T`).
const HISTORY: usize = 3;

/// Serialises tests: both the kernel backend and the thread budget
/// are process globals.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// Restores both globals when a test body exits (even on panic).
struct RestoreGlobals;
impl Drop for RestoreGlobals {
    fn drop(&mut self) {
        kernels::set_backend(Backend::Fast);
        budget::set_total_threads(0);
    }
}

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn builder() -> FrameBuilder {
    FrameBuilder::new(layout(), PhaseCalibrator::disabled(1, 4), 0.5)
}

fn model() -> SequenceClassifier {
    build_model(&layout(), 12, Architecture::CnnLstm, 7)
}

/// Deterministic pseudo-random frame payload in `(-1, 1)`.
fn synth_frame(seed: u64, step: usize) -> Vec<f32> {
    let dim = layout().frame_dim();
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step as u64)
        | 1;
    (0..dim)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// A small calibration corpus shaped like the serving traffic.
fn calib_sequences() -> Vec<Vec<Vec<f32>>> {
    (0..4u64)
        .map(|s| (0..HISTORY).map(|t| synth_frame(s, t)).collect())
        .collect()
}

fn quantized_model() -> SequenceClassifier {
    let mut m = model();
    let calib = calib_sequences();
    m.prepare_quantized(calib.iter().map(|s| s.as_slice()));
    assert!(m.is_quantized(), "calibration must freeze quant state");
    m
}

#[test]
fn serve_engine_applies_configured_backend() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreGlobals;
    kernels::set_backend(Backend::Fast);
    let cfg = ServeConfig {
        history_len: HISTORY,
        backend: Some(Backend::QuantI8),
        ..ServeConfig::default()
    };
    let _eng = ServeEngine::new(quantized_model(), builder(), cfg);
    assert_eq!(
        kernels::backend(),
        Backend::QuantI8,
        "ServeEngine::new must activate the configured backend"
    );

    // `None` inherits: constructing another engine must not stomp it.
    let _eng2 = ServeEngine::new(model(), builder(), ServeConfig::default());
    assert_eq!(kernels::backend(), Backend::QuantI8);
}

#[test]
fn fabric_serves_quantized_end_to_end() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreGlobals;
    kernels::set_backend(Backend::Fast);
    let cfg = FabricConfig {
        shards: 2,
        vnodes: 16,
        ingress_capacity: 4096,
        serve: ServeConfig {
            history_len: HISTORY,
            queue_capacity: 1024,
            backend: Some(Backend::QuantI8),
            ..ServeConfig::default()
        },
        supervision: Default::default(),
    };
    let fabric = ServeFabric::new(quantized_model(), builder(), cfg);
    let keys: Vec<_> = (0..4)
        .map(|_| fabric.open_session().expect("capacity"))
        .collect();
    for t in 0..6 {
        for (s, &key) in keys.iter().enumerate() {
            loop {
                match fabric
                    .push_frame(
                        key,
                        t as f64,
                        synth_frame(s as u64, t),
                        HealthState::Healthy,
                    )
                    .expect("session open")
                {
                    PushOutcome::Enqueued => break,
                    PushOutcome::Shed => std::thread::yield_now(),
                }
            }
        }
    }
    let out = fabric.flush();
    fabric.shutdown();
    assert_eq!(
        kernels::backend(),
        Backend::QuantI8,
        "worker engines must have activated the configured backend"
    );
    assert!(
        !out.is_empty(),
        "quantized fabric must emit predictions once windows fill"
    );
    for p in &out {
        assert!(
            p.prediction.probabilities.iter().all(|v| v.is_finite()),
            "int8 serving must produce finite probabilities"
        );
    }
    for &key in &keys {
        assert!(
            out.iter().any(|p| p.session == key),
            "every stream must have produced at least one prediction"
        );
    }
}

#[test]
fn fabric_with_shards_eq_cores_clamps_gemm_to_one_thread() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreGlobals;
    // Pretend the machine has 4 cores so the test is deterministic on
    // any host.
    budget::set_total_threads(4);
    let reserved_before = budget::reserved_workers();

    let cfg = FabricConfig {
        shards: 4,
        vnodes: 16,
        ingress_capacity: 64,
        serve: ServeConfig {
            history_len: HISTORY,
            ..ServeConfig::default()
        },
        supervision: Default::default(),
    };
    let fabric = ServeFabric::new(model(), builder(), cfg);
    assert_eq!(
        budget::reserved_workers(),
        reserved_before + 4,
        "the fabric must reserve one budget slot per shard"
    );
    assert_eq!(
        budget::gemm_threads(),
        1,
        "shards == cores must leave GEMM single-threaded (no oversubscription)"
    );
    fabric.shutdown();
    assert_eq!(
        budget::reserved_workers(),
        reserved_before,
        "shutdown must release the reservation"
    );
}
