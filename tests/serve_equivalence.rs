//! Serving-engine equivalence suite (serving PR).
//!
//! Pins the numerical contract DESIGN.md documents for the serving
//! path, at full model scale for every Fig. 17 architecture variant:
//!
//! * **incremental == replay** — a fresh `StreamState` stepped through
//!   a window reproduces the full-sequence `predict_proba` *bitwise*
//!   (the streaming step reduces exactly the accumulator chains the
//!   sequence forward does, on either kernel backend);
//! * **batched == serial** — one B-session micro-batched tick equals B
//!   single-session ticks bitwise (kernel rows are independent);
//! * **slot independence** — a property test over random slot churn,
//!   arrival interleavings and mid-stream departures: each session's
//!   predictions depend only on its own frame stream, never on which
//!   slot it landed in or who it shared ticks with.
//!
//! Tolerance is exact equality everywhere — the one *semantic*
//! divergence (LSTM context retained across windows after the first,
//! instead of replay-from-zero) is intentional and starts only after
//! the first full window, which these tests pin too.

use m2ai::core::calibration::PhaseCalibrator;
use m2ai::core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai::core::network::{build_model, Architecture};
use m2ai::core::online::HealthState;
use m2ai::core::serve::{ServeConfig, ServeEngine, ServePrediction, SessionId};
use m2ai::kernels::{self, Backend};
use m2ai::nn::model::SequenceClassifier;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// Sliding window length used throughout the suite.
const HISTORY: usize = 3;

/// Serialises the tests that flip the process-global kernel backend.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn builder() -> FrameBuilder {
    FrameBuilder::new(layout(), PhaseCalibrator::disabled(1, 4), 0.5)
}

fn model(arch: Architecture) -> SequenceClassifier {
    build_model(&layout(), 12, arch, 7)
}

/// Deterministic pseudo-random frame payload in `(-1, 1)`.
fn synth_frame(seed: u64, step: usize) -> Vec<f32> {
    let dim = layout().frame_dim();
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step as u64)
        | 1;
    (0..dim)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

const ALL_ARCHS: [Architecture; 3] = [
    Architecture::CnnLstm,
    Architecture::CnnOnly,
    Architecture::LstmOnly,
];

#[test]
fn incremental_step_matches_full_replay_bitwise() {
    for arch in ALL_ARCHS {
        let m = model(arch);
        let frames: Vec<Vec<f32>> = (0..HISTORY).map(|t| synth_frame(5, t)).collect();
        let mut state = m.stream_state(HISTORY);
        let mut last = Vec::new();
        for f in &frames {
            last = m.step(f, &mut state);
        }
        assert_eq!(
            last,
            m.predict_proba(&frames),
            "{arch:?}: incremental window must bit-match replay"
        );
    }
}

#[test]
fn incremental_step_matches_full_replay_on_reference_backend() {
    // The bit-exactness argument is per-backend (each computes one
    // accumulator chain per output); pin it on the naive kernels too.
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            kernels::set_backend(Backend::Fast);
        }
    }
    let _restore = Restore;
    kernels::set_backend(Backend::Reference);
    let m = model(Architecture::CnnLstm);
    let frames: Vec<Vec<f32>> = (0..HISTORY).map(|t| synth_frame(6, t)).collect();
    let mut state = m.stream_state(HISTORY);
    let mut last = Vec::new();
    for f in &frames {
        last = m.step(f, &mut state);
    }
    assert_eq!(last, m.predict_proba(&frames));
}

/// Feeds `steps` frames of stream `seed` to one engine session and
/// returns its predictions.
fn run_single(m: &SequenceClassifier, seed: u64, steps: usize) -> Vec<ServePrediction> {
    let mut eng = ServeEngine::new(
        m.clone(),
        builder(),
        ServeConfig {
            history_len: HISTORY,
            ..ServeConfig::default()
        },
    );
    let id = eng.open_session().expect("capacity");
    for t in 0..steps {
        eng.push_frame(id, t as f64, synth_frame(seed, t), HealthState::Healthy)
            .expect("queue capacity");
    }
    eng.drain()
}

#[test]
fn batched_ticks_match_serial_ticks_bitwise() {
    const B: usize = 5;
    const STEPS: usize = 7;
    for arch in ALL_ARCHS {
        let m = model(arch);
        // Serial: each stream alone in its own engine.
        let serial: Vec<Vec<ServePrediction>> =
            (0..B as u64).map(|s| run_single(&m, s, STEPS)).collect();

        // Batched: all streams share one engine; every tick advances
        // all of them in one micro-batched step.
        let mut eng = ServeEngine::new(
            m.clone(),
            builder(),
            ServeConfig {
                history_len: HISTORY,
                ..ServeConfig::default()
            },
        );
        let ids: Vec<SessionId> = (0..B)
            .map(|_| eng.open_session().expect("capacity"))
            .collect();
        for t in 0..STEPS {
            for (s, &id) in ids.iter().enumerate() {
                eng.push_frame(id, t as f64, synth_frame(s as u64, t), HealthState::Healthy)
                    .expect("queue capacity");
            }
        }
        let batched = eng.drain();
        assert!(
            !batched.is_empty(),
            "{arch:?}: suite is vacuous if nothing is ever emitted"
        );

        for (s, &id) in ids.iter().enumerate() {
            let mine: Vec<&ServePrediction> = batched.iter().filter(|p| p.session == id).collect();
            assert_eq!(mine.len(), serial[s].len(), "{arch:?}: stream {s} count");
            for (b, a) in mine.iter().zip(&serial[s]) {
                assert_eq!(b.time_s, a.time_s, "{arch:?}: stream {s} timing");
                assert_eq!(
                    b.probabilities, a.probabilities,
                    "{arch:?}: stream {s} must bit-match its solo run"
                );
                assert_eq!(b.class, a.class);
            }
        }
    }
}

/// Shared model for the property test (building one per case would
/// dominate the runtime; the model is immutable so sharing is sound).
fn shared_model() -> &'static SequenceClassifier {
    static MODEL: OnceLock<SequenceClassifier> = OnceLock::new();
    MODEL.get_or_init(|| model(Architecture::CnnLstm))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine output per session is a pure function of that session's
    /// frame stream: random pre-churn (sessions opened and closed to
    /// scramble slot assignment), random open order and a random
    /// mid-stream departure must not change any surviving session's
    /// predictions.
    #[test]
    fn predictions_independent_of_slot_assignment_and_arrivals(
        churn in 0usize..4,
        order_seed in any::<u64>(),
        departing in 0usize..4,
        depart_after in 1usize..6,
    ) {
        const B: usize = 4;
        const STEPS: usize = 6;
        let m = shared_model();
        let mut eng = ServeEngine::new(
            m.clone(),
            builder(),
            ServeConfig {
                history_len: HISTORY,
                max_sessions: 16,
                ..ServeConfig::default()
            },
        );
        // Slot churn: occupy and free low slots so real sessions land
        // in scrambled positions.
        let dummies: Vec<SessionId> =
            (0..churn + 1).map(|_| eng.open_session().expect("capacity")).collect();
        for (i, &d) in dummies.iter().enumerate() {
            if i.is_multiple_of(2) {
                eng.close_session(d).expect("open above");
            }
        }
        // Open the real sessions in a seed-derived order.
        let mut open_order: Vec<usize> = (0..B).collect();
        let mut rng = order_seed | 1;
        for i in (1..B).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            open_order.swap(i, (rng >> 33) as usize % (i + 1));
        }
        let mut by_stream: Vec<Option<SessionId>> = vec![None; B];
        for &stream in &open_order {
            by_stream[stream] = Some(eng.open_session().expect("capacity"));
        }
        let ids: Vec<SessionId> =
            by_stream.into_iter().map(|id| id.expect("all opened")).collect();
        let mut open = [true; B];
        // Feed frames tick-aligned; one session departs mid-stream.
        let mut collected: Vec<ServePrediction> = Vec::new();
        for t in 0..STEPS {
            if t == depart_after && open[departing] {
                // Departure discards the session's queue; drain first
                // so its already-queued work is identical to the solo
                // run's prefix.
                collected.extend(eng.drain());
                eng.close_session(ids[departing]).expect("still open");
                open[departing] = false;
            }
            for (stream, &id) in ids.iter().enumerate() {
                if open[stream] {
                    eng.push_frame(id, t as f64, synth_frame(stream as u64, t), HealthState::Healthy)
                        .expect("queue capacity");
                }
            }
        }
        collected.extend(eng.drain());

        for stream in 0..B {
            // A departed stream still must have produced predictions
            // identical to a solo run over the frames it got to push.
            let steps = if open[stream] { STEPS } else { depart_after };
            let solo = run_single(m, stream as u64, steps);
            let mine: Vec<&ServePrediction> =
                collected.iter().filter(|p| p.session == ids[stream]).collect();
            prop_assert_eq!(mine.len(), solo.len());
            for (got, want) in mine.iter().zip(&solo) {
                prop_assert_eq!(got.time_s, want.time_s);
                prop_assert_eq!(&got.probabilities, &want.probabilities);
            }
        }
    }
}
