//! Degradation state-machine contract: a scripted stream — clean,
//! then heavily faulted, then silent, then clean again — must walk the
//! session through the *exact* transition sequence
//! Healthy → Degraded → Stale → Degraded → Healthy, with the
//! hysteretic recovery (two good windows before Healthy) observable
//! both in the session's own transition log and in the global
//! `m2ai_core_health_transitions_total` counters.

use m2ai::prelude::*;
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::online::{SessionWindow, WindowEvent};
use m2ai_rfsim::geometry::Point2;

/// Current count of one transition edge in the global registry.
fn edge_count(from: &'static str, to: &'static str) -> u64 {
    match m2ai_obs::find(
        "m2ai_core_health_transitions_total",
        &[("from", from), ("to", to)],
    ) {
        Some(m2ai_obs::MetricValue::Counter(n)) => n,
        _ => 0,
    }
}

#[test]
fn scripted_faults_walk_the_exact_transition_sequence() {
    // One tag near the array: a clean stream keeps every window's
    // coverage high, so health stays Healthy until the script says
    // otherwise.
    let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
    let clean = {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        reader.run(|_| scene.clone(), 8.0)
    };
    let faulty = {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1)
            .with_fault_plan(FaultPlan::with_intensity(0.7, 11));
        reader.run(|_| scene.clone(), 8.0)
    };

    // The script: clean [0, 2), heavy faults [2, 3.5), silence
    // [3.5, 6), clean again [6, 8).
    let mut stream: Vec<TagReading> = clean
        .iter()
        .filter(|r| r.time_s < 2.0 || r.time_s >= 6.0)
        .cloned()
        .collect();
    stream.extend(
        faulty
            .iter()
            .filter(|r| (2.0..3.5).contains(&r.time_s))
            .cloned(),
    );
    stream.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite times"));

    let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
    let cfg = HealthConfig {
        degraded_coverage: 0.4,
        stale_timeout_s: 1.0,
        min_confidence: 0.0,
        recovery_windows: 2,
    };
    let mut window = SessionWindow::new(builder, 4, cfg);

    let before = [
        edge_count("healthy", "degraded"),
        edge_count("degraded", "stale"),
        edge_count("stale", "degraded"),
        edge_count("degraded", "healthy"),
    ];

    let mut events: Vec<WindowEvent> = Vec::new();
    window.push(&stream, &mut events);
    assert!(!events.is_empty(), "the stream must close windows");

    // The exact walk, including the hysteresis: recovery re-enters
    // through Degraded (good window #1 of 2) before reaching Healthy
    // (good window #2).
    assert_eq!(
        window.transitions(),
        &[
            (HealthState::Healthy, HealthState::Degraded),
            (HealthState::Degraded, HealthState::Stale),
            (HealthState::Stale, HealthState::Degraded),
            (HealthState::Degraded, HealthState::Healthy),
        ],
        "transition log must record the scripted walk exactly"
    );
    assert_eq!(window.health(), HealthState::Healthy, "must end recovered");

    // The same walk is visible in the global counters (>= because the
    // registry is process-wide; the delta from this session is 1 each).
    let after = [
        edge_count("healthy", "degraded"),
        edge_count("degraded", "stale"),
        edge_count("stale", "degraded"),
        edge_count("degraded", "healthy"),
    ];
    for (i, edge) in ["H→D", "D→S", "S→D", "D→H"].iter().enumerate() {
        assert!(
            after[i] > before[i],
            "global counter for {edge} must record the transition"
        );
    }
}

#[test]
fn recovery_hysteresis_waits_for_the_full_streak() {
    // Three good windows required: after a stale gap the session must
    // pass through Degraded twice before Healthy.
    let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
    let clean = {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        reader.run(|_| scene.clone(), 9.0)
    };
    let stream: Vec<TagReading> = clean
        .iter()
        .filter(|r| r.time_s < 2.0 || r.time_s >= 5.0)
        .cloned()
        .collect();

    let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
    let cfg = HealthConfig {
        stale_timeout_s: 1.0,
        recovery_windows: 3,
        ..HealthConfig::default()
    };
    let mut window = SessionWindow::new(builder, 4, cfg);
    let mut events = Vec::new();
    window.push(&stream, &mut events);

    // Silence begins at 2.0: the first empty window is still inside
    // the stale timeout (Degraded — no reads), the next one crosses it
    // (Stale). On the way up the streak holds the state at Degraded
    // until the third good window.
    assert_eq!(
        window.transitions(),
        &[
            (HealthState::Healthy, HealthState::Degraded),
            (HealthState::Degraded, HealthState::Stale),
            (HealthState::Stale, HealthState::Degraded),
            (HealthState::Degraded, HealthState::Healthy),
        ],
        "hysteresis must route recovery through Degraded"
    );
    assert_eq!(window.health(), HealthState::Healthy);
}
