//! Self-healing battery for the serve fabric (supervision PR).
//!
//! Each scenario corrupts the fabric the way production would — a
//! crashed worker, a permanently dead shard, a silent stall, a session
//! whose input panics the engine — and then asserts the supervisor's
//! contract: restarts happen, checkpointed sessions resume with *zero*
//! prediction loss, poison is quarantined without collateral damage,
//! and every blocking control-plane call surfaces a typed timeout
//! instead of hanging. Every scenario runs under a watchdog so a
//! supervision bug deadlocks into a test failure, not a hung CI job.
//!
//! Conservation here means the same thing as in the soak: a session
//! that pushed `N` clean frames with no sheds must emit exactly
//! `N - HISTORY + 1` predictions across its whole life, *including*
//! any crash/restore or migration in the middle.

use m2ai::core::calibration::PhaseCalibrator;
use m2ai::core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai::core::network::{build_model, Architecture};
use m2ai::core::online::HealthState;
use m2ai::core::serve::ServeConfig;
use m2ai::fabric::{
    FabricConfig, FabricError, FabricPrediction, PushOutcome, ServeFabric, SessionKey,
    ShardThrottle, SupervisionConfig,
};
use std::collections::HashMap;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Sliding window length (small model keeps the battery fast).
const HISTORY: usize = 3;

/// Frames pushed before the injected failure.
const WARM: usize = 5;

/// Frames pushed after recovery.
const MORE: usize = 4;

/// Hard wall-clock ceiling per scenario.
const WATCHDOG: Duration = Duration::from_secs(120);

/// Generous bound for "the supervisor noticed and recovered".
const RECOVERY: Duration = Duration::from_secs(30);

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn builder() -> FrameBuilder {
    FrameBuilder::new(layout(), PhaseCalibrator::disabled(1, 4), 0.5)
}

fn fabric(shards: usize, supervision: SupervisionConfig) -> ServeFabric {
    let l = layout();
    ServeFabric::new(
        build_model(&l, 12, Architecture::CnnLstm, 7),
        builder(),
        FabricConfig {
            shards,
            vnodes: 32,
            ingress_capacity: 256,
            serve: ServeConfig {
                max_sessions: 32,
                history_len: HISTORY,
                queue_capacity: 256,
                ..ServeConfig::default()
            },
            supervision,
        },
    )
}

/// Aggressive supervision knobs so failures are noticed in
/// milliseconds, not the production-default second.
fn fast_supervision() -> SupervisionConfig {
    SupervisionConfig {
        heartbeat_interval: Duration::from_millis(2),
        stall_deadline: Duration::from_millis(60),
        // Checkpoints are taken explicitly (`checkpoint_now`) so every
        // scenario knows exactly which state survives the failure.
        checkpoint_interval: Duration::ZERO,
        restart_backoff: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        ..SupervisionConfig::default()
    }
}

fn synth_frame(seed: u64, step: usize) -> Vec<f32> {
    let dim = layout().frame_dim();
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step as u64)
        | 1;
    (0..dim)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Runs a scenario body on a watchdog-supervised thread.
fn under_watchdog<T: Send + 'static>(body: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(body());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(out) => {
            worker.join().expect("scenario thread panicked");
            out
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("scenario deadlocked: no result within {WATCHDOG:?}")
        }
        Err(RecvTimeoutError::Disconnected) => {
            worker.join().expect("scenario thread panicked");
            unreachable!("disconnected without panic")
        }
    }
}

/// Spins until `cond` holds or `RECOVERY` elapses (then panics with
/// `what`).
fn await_cond(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < RECOVERY, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Opens sessions until both shards of a two-shard fabric own at
/// least one, so a shard-0 failure provably hits real sessions.
fn open_covering_both(fabric: &ServeFabric) -> Vec<SessionKey> {
    let mut keys = Vec::new();
    let mut covered = [false; 2];
    for _ in 0..32 {
        let key = fabric.open_session().expect("fabric sized for test");
        covered[fabric.shard_of(key).expect("open")] = true;
        keys.push(key);
        if covered[0] && covered[1] && keys.len() >= 4 {
            break;
        }
    }
    assert!(
        covered[0] && covered[1],
        "32 opens never covered both shards — ring misconfigured"
    );
    keys
}

/// Pushes `count` frames (global step offset `from`) into every
/// session, riding restarts via the deadline path.
fn push_all(fabric: &ServeFabric, keys: &[SessionKey], from: usize, count: usize) {
    for t in from..from + count {
        for (s, &key) in keys.iter().enumerate() {
            fabric
                .push_frame_with_deadline(
                    key,
                    t as f64 * 0.5,
                    synth_frame(s as u64, t),
                    HealthState::Healthy,
                    Duration::from_secs(20),
                )
                .expect("push must survive a recovery window");
        }
    }
}

/// Groups predictions by raw session key, preserving arrival order.
fn per_session(preds: &[FabricPrediction]) -> HashMap<u64, Vec<&FabricPrediction>> {
    let mut map: HashMap<u64, Vec<&FabricPrediction>> = HashMap::new();
    for p in preds {
        map.entry(p.session.raw()).or_default().push(p);
    }
    map
}

/// Exact conservation + per-session monotone times for clean streams.
fn assert_conserved(preds: &[FabricPrediction], keys: &[SessionKey], pushed: usize) {
    let by_key = per_session(preds);
    for &key in keys {
        let got = by_key.get(&key.raw()).map_or(0, Vec::len);
        assert_eq!(
            got,
            pushed - HISTORY + 1,
            "session {}: pushed {pushed} clean frames across the failure, \
             expected exactly {} predictions, got {got}",
            key.raw(),
            pushed - HISTORY + 1
        );
    }
    for (key, stream) in &by_key {
        for w in stream.windows(2) {
            assert!(
                w[1].prediction.time_s > w[0].prediction.time_s,
                "session {key}: prediction times regressed — duplicate or \
                 reorder across the restart"
            );
        }
    }
}

/// A crashed worker is restarted by the supervisor and every
/// checkpointed session resumes with zero prediction loss.
#[test]
fn killed_shard_restarts_and_conserves_predictions() {
    let (stats, preds, keys) = under_watchdog(|| {
        let fabric = fabric(2, fast_supervision());
        let keys = open_covering_both(&fabric);

        push_all(&fabric, &keys, 0, WARM);
        let mut preds = fabric.flush();
        // Snapshot the drained state: this is exactly what the
        // replacement worker must resume from.
        let snapped = fabric.checkpoint_now().expect("live shards checkpoint");
        assert_eq!(snapped, keys.len(), "every open session is snapshotted");
        assert_eq!(fabric.checkpointed_sessions(), keys.len());

        fabric.kill_shard(0).expect("shard 0 is alive");
        await_cond("shard 0 restart", || {
            fabric.restarts() >= 1 && fabric.shard_alive(0)
        });

        push_all(&fabric, &keys, WARM, MORE);
        preds.extend(fabric.flush());
        (fabric.shutdown(), preds, keys)
    });

    assert_conserved(&preds, &keys, WARM + MORE);
    assert!(stats.restarts >= 1, "the kill must register as a restart");
    assert_eq!(stats.stalls, 0, "a crash is not a stall");
    assert_eq!(stats.evicted, 0, "no session may be evicted");
    assert_eq!(
        stats.lost_inflight, 0,
        "the queue was drained before the kill"
    );
    let restored: u64 = stats.shards.iter().map(|s| s.restored).sum();
    assert!(
        restored >= 1,
        "shard 0 owned sessions, so the restart must restore some"
    );
}

/// With the restart budget exhausted the shard is declared dead and
/// its sessions migrate to the survivor — still with zero loss.
#[test]
fn dead_shard_migrates_sessions_to_survivor() {
    let (stats, preds, keys, migrated) = under_watchdog(|| {
        let fabric = fabric(
            2,
            SupervisionConfig {
                restart_budget: 0,
                ..fast_supervision()
            },
        );
        let keys = open_covering_both(&fabric);
        let on_zero: Vec<SessionKey> = keys
            .iter()
            .copied()
            .filter(|&k| fabric.shard_of(k) == Ok(0))
            .collect();

        push_all(&fabric, &keys, 0, WARM);
        let mut preds = fabric.flush();
        fabric.checkpoint_now().expect("live shards checkpoint");

        fabric.kill_shard(0).expect("shard 0 is alive");
        await_cond("migration off the dead shard", || {
            !fabric.shard_alive(0) && on_zero.iter().all(|&k| fabric.shard_of(k) == Ok(1))
        });

        push_all(&fabric, &keys, WARM, MORE);
        preds.extend(fabric.flush());
        assert_eq!(
            fabric.kill_shard(0),
            Err(FabricError::ShardDown),
            "a dead shard refuses further control traffic"
        );
        (fabric.shutdown(), preds, keys, on_zero.len())
    });

    assert_conserved(&preds, &keys, WARM + MORE);
    assert_eq!(stats.restarts, 0, "budget 0 means death, not restart");
    assert_eq!(stats.evicted, 0, "the survivor had capacity for everyone");
    assert_eq!(stats.lost_inflight, 0);
    assert!(
        stats.shards[1].restored >= migrated as u64,
        "every migrated session must be checkpoint-restored on shard 1"
    );
}

/// A worker whose heartbeat flatlines (simulated with the `Stall`
/// throttle) is abandoned on the deadline and replaced; its sessions
/// resume from their checkpoints.
#[test]
fn stalled_worker_is_abandoned_and_replaced() {
    let (stats, preds, keys) = under_watchdog(|| {
        let fabric = fabric(1, fast_supervision());
        let keys = vec![fabric.open_session().expect("capacity")];

        push_all(&fabric, &keys, 0, WARM);
        let mut preds = fabric.flush();
        fabric.checkpoint_now().expect("live shard checkpoints");

        // The worker keeps acking throttles but stops beating — the
        // shape of a genuine hang, minus the hang.
        fabric.set_throttle(0, ShardThrottle::Stall);
        await_cond("stall abandonment + replacement", || {
            fabric.restarts() >= 1 && fabric.shard_alive(0)
        });

        push_all(&fabric, &keys, WARM, MORE);
        preds.extend(fabric.flush());
        (fabric.shutdown(), preds, keys)
    });

    assert_conserved(&preds, &keys, WARM + MORE);
    assert!(stats.stalls >= 1, "the flatline must register as a stall");
    assert!(stats.restarts >= 1);
    assert_eq!(
        stats.lost_inflight, 0,
        "the abandoned queue was empty — nothing in flight to lose"
    );
}

/// Input that repeatedly panics the engine quarantines exactly its own
/// session; the neighbor on the same shard keeps its conservation
/// guarantee through every poison-triggered restart.
#[test]
fn poisoned_session_is_quarantined_without_collateral() {
    let (stats, preds, clean) = under_watchdog(|| {
        let fabric = fabric(
            1,
            SupervisionConfig {
                poison_threshold: 2,
                restart_budget: 100,
                ..fast_supervision()
            },
        );
        let clean = fabric.open_session().expect("capacity");
        let victim = fabric.open_session().expect("capacity");

        push_all(&fabric, &[clean], 0, WARM);
        let mut preds = fabric.flush();
        fabric.checkpoint_now().expect("live shard checkpoints");

        // A wrong-dimension frame passes admission (the fabric never
        // inspects payloads) and panics the encoder at tick time.
        let poison = vec![0.25f32; layout().frame_dim() + 3];
        let t0 = Instant::now();
        while !fabric.is_quarantined(victim) {
            assert!(
                t0.elapsed() < RECOVERY,
                "poison never tripped the quarantine threshold"
            );
            match fabric.push_frame(victim, 0.0, poison.clone(), HealthState::Healthy) {
                Ok(_) => std::thread::sleep(Duration::from_millis(5)),
                Err(FabricError::Quarantined) => break,
                Err(e) => panic!("unexpected push error while poisoning: {e}"),
            }
        }
        assert!(fabric.is_quarantined(victim));
        assert_eq!(fabric.quarantined(), 1, "exactly one session quarantined");
        assert_eq!(
            fabric.push_frame(victim, 1.0, synth_frame(9, 0), HealthState::Healthy),
            Err(FabricError::Quarantined),
            "a quarantined key refuses even well-formed data"
        );
        assert!(
            !fabric.is_quarantined(clean),
            "quarantine must not leak to the neighbor"
        );

        // The neighbor sailed through every poison restart: its
        // checkpointed window resumes and conservation stays exact.
        push_all(&fabric, &[clean], WARM, MORE);
        preds.extend(fabric.flush());
        fabric
            .close_session(victim)
            .expect("closing a quarantined session is an ack, not an error");
        (fabric.shutdown(), preds, clean)
    });

    assert_conserved(&preds, &[clean], WARM + MORE);
    assert_eq!(stats.quarantined, 1);
    assert!(
        stats.shards[0].poison_events >= 2,
        "each caught engine panic must be counted"
    );
    assert!(
        stats.restarts >= 1,
        "the first (unattributed) panic costs one restart"
    );
}

/// Blocking control-plane calls against an unresponsive shard come
/// back as `FabricError::Timeout`, never a hang.
#[test]
fn flush_and_throttle_deadlines_surface_typed_timeouts() {
    under_watchdog(|| {
        // Freeze parks the worker: the flush barrier cannot complete.
        let frozen = fabric(
            1,
            SupervisionConfig {
                stall_deadline: Duration::from_secs(60),
                ..fast_supervision()
            },
        );
        let key = frozen.open_session().expect("capacity");
        frozen.set_throttle(0, ShardThrottle::Freeze);
        assert_eq!(
            frozen
                .push_frame(key, 0.0, synth_frame(0, 0), HealthState::Healthy)
                .expect("ingress has room"),
            PushOutcome::Enqueued
        );
        assert_eq!(
            frozen.try_flush(Duration::from_millis(120)),
            Err(FabricError::Timeout),
            "a frozen shard must time the barrier out, not wedge it"
        );
        // Thawing completes the same barrier; the timed-out attempt
        // lost nothing.
        frozen.set_throttle(0, ShardThrottle::Run);
        let drained = frozen
            .try_flush(Duration::from_secs(30))
            .expect("thawed shard drains");
        assert!(
            drained.is_empty(),
            "one frame cannot fill a {HISTORY}-deep window"
        );
        frozen.shutdown();

        // With supervision disabled, a killed worker is never
        // replaced: the ack handshake must report Timeout instead of
        // spinning forever (and the fabric itself stays responsive).
        let orphaned = fabric(
            1,
            SupervisionConfig {
                enabled: false,
                ..SupervisionConfig::default()
            },
        );
        // `down` starts true and is cleared by the worker thread at
        // startup, so handshake first (open_session is synchronous
        // with the worker) — otherwise `!shard_alive` can be observed
        // before the worker even runs, and the late-starting worker
        // would ack the throttle below.
        orphaned.open_session().expect("worker is up and serving");
        orphaned.kill_shard(0).expect("shard 0 is alive");
        await_cond("worker exit without supervision", || {
            !orphaned.shard_alive(0)
        });
        assert_eq!(
            orphaned.try_set_throttle(0, ShardThrottle::Freeze, Duration::from_millis(120)),
            Err(FabricError::Timeout),
            "no worker will ever ack — the handshake must surface a timeout"
        );
        orphaned.shutdown();
    });
}
