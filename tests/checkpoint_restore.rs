//! Checkpoint/restore equivalence suite (supervision PR).
//!
//! The supervisor's zero-loss recovery story rests on one numerical
//! contract: a session snapshotted mid-stream and adopted by a *fresh*
//! engine continues **bitwise identically** to the uninterrupted
//! original. This file pins that contract at three layers, on both
//! kernel backends:
//!
//! * **`StreamState` bytes** — `to_bytes`/`from_bytes` round-trips the
//!   LSTM carries and the softmax ring exactly; stepping the restored
//!   state reproduces the original's outputs bit for bit;
//! * **engine sessions** — `export_session` at a random cut point
//!   (with events still *pending* in the queue) and `restore_session`
//!   into a fresh engine yields the same prediction stream as never
//!   having been interrupted, and the snapshot is a deep copy — the
//!   donor engine can keep running without disturbing it;
//! * **rejection** — a snapshot from a mismatched model geometry is
//!   refused with `CheckpointMismatch`, and corrupted bytes never
//!   deserialize.

use m2ai::core::calibration::PhaseCalibrator;
use m2ai::core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai::core::network::{build_model, Architecture};
use m2ai::core::online::HealthState;
use m2ai::core::serve::{ServeConfig, ServeEngine, ServeError, ServePrediction};
use m2ai::kernels::{self, Backend};
use m2ai::nn::model::{SequenceClassifier, StreamState};
use proptest::prelude::*;
use std::sync::Mutex;

/// Sliding window length used throughout the suite.
const HISTORY: usize = 3;

/// Serialises tests that flip the process-global kernel backend.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Restores the fast backend when a scope exits (even on panic).
struct RestoreBackend;
impl Drop for RestoreBackend {
    fn drop(&mut self) {
        kernels::set_backend(Backend::Fast);
    }
}

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn builder() -> FrameBuilder {
    FrameBuilder::new(layout(), PhaseCalibrator::disabled(1, 4), 0.5)
}

fn model(arch: Architecture) -> SequenceClassifier {
    build_model(&layout(), 12, arch, 7)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        history_len: HISTORY,
        queue_capacity: 256,
        ..ServeConfig::default()
    }
}

/// Deterministic pseudo-random frame payload in `(-1, 1)`.
fn synth_frame(seed: u64, step: usize) -> Vec<f32> {
    let dim = layout().frame_dim();
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step as u64)
        | 1;
    (0..dim)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

const ALL_ARCHS: [Architecture; 3] = [
    Architecture::CnnLstm,
    Architecture::CnnOnly,
    Architecture::LstmOnly,
];

/// Steps `state` through frames `[from, to)` of stream `seed`,
/// returning the last output.
fn step_range(
    m: &SequenceClassifier,
    state: &mut StreamState,
    seed: u64,
    from: usize,
    to: usize,
) -> Vec<f32> {
    let mut last = Vec::new();
    for t in from..to {
        last = m.step(&synth_frame(seed, t), state);
    }
    last
}

/// `StreamState` byte round-trip: the deserialized state continues the
/// stream bitwise-identically to the original, for every architecture
/// on the given backend.
fn assert_stream_roundtrip(seed: u64, warm: usize, tail: usize) {
    for arch in ALL_ARCHS {
        let m = model(arch);
        let mut original = m.stream_state(HISTORY);
        step_range(&m, &mut original, seed, 0, warm);

        let bytes = original.to_bytes();
        let mut restored = StreamState::from_bytes(&bytes).expect("round-trip");

        let want = step_range(&m, &mut original, seed, warm, warm + tail);
        let got = step_range(&m, &mut restored, seed, warm, warm + tail);
        assert_eq!(
            got, want,
            "{arch:?}: restored stream state diverged after {warm} warm steps"
        );
    }
}

/// Engine-level equivalence: an uninterrupted engine vs one whose
/// session was exported at `cut` (pending events included) and adopted
/// by a fresh engine. Prediction streams must concatenate bitwise.
fn assert_engine_roundtrip(arch: Architecture, seed: u64, steps: usize, cut: usize) {
    let m = model(arch);

    // Oracle: one engine, never interrupted.
    let mut oracle = ServeEngine::new(m.clone(), builder(), serve_config());
    let oid = oracle.open_session().expect("capacity");
    for t in 0..steps {
        oracle
            .push_frame(
                oid,
                t as f64 * 0.5,
                synth_frame(seed, t),
                HealthState::Healthy,
            )
            .expect("queue sized for trace");
    }
    let want: Vec<ServePrediction> = oracle.drain();

    // Donor: pushes up to `cut` *without draining*, so the snapshot
    // carries a non-trivial pending queue — the state a crash actually
    // interrupts.
    let mut donor = ServeEngine::new(m.clone(), builder(), serve_config());
    let did = donor.open_session().expect("capacity");
    for t in 0..cut {
        donor
            .push_frame(
                did,
                t as f64 * 0.5,
                synth_frame(seed, t),
                HealthState::Healthy,
            )
            .expect("queue sized for trace");
    }
    let ckpt = donor.export_session(did).expect("session open");
    assert_eq!(ckpt.pending_len(), cut, "nothing ticked before the export");

    // Deep-copy check: keep running (and then discard) the donor after
    // the export — the snapshot must not notice.
    donor
        .push_frame(
            did,
            99.0,
            synth_frame(seed ^ 0xDEAD, 0),
            HealthState::Healthy,
        )
        .expect("queue sized for trace");
    donor.drain();
    drop(donor);

    let mut heir = ServeEngine::new(m.clone(), builder(), serve_config());
    let hid = heir.restore_session(ckpt).expect("geometry matches");
    for t in cut..steps {
        heir.push_frame(
            hid,
            t as f64 * 0.5,
            synth_frame(seed, t),
            HealthState::Healthy,
        )
        .expect("queue sized for trace");
    }
    let got: Vec<ServePrediction> = heir.drain();

    assert_eq!(
        got.len(),
        want.len(),
        "{arch:?}: restored session lost or invented predictions \
         (cut {cut} of {steps})"
    );
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(
            (g.time_s, g.class, &g.probabilities, g.confidence, g.health),
            (w.time_s, w.class, &w.probabilities, w.confidence, w.health),
            "{arch:?}: restored stream diverged from the uninterrupted \
             oracle (cut {cut} of {steps})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Byte round-trip continuation is bitwise on the fast kernels.
    #[test]
    fn stream_state_bytes_roundtrip_bitwise_fast(
        seed in 0u64..1_000_000,
        warm in 1usize..8,
        tail in 1usize..5,
    ) {
        let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = RestoreBackend;
        kernels::set_backend(Backend::Fast);
        assert_stream_roundtrip(seed, warm, tail);
    }

    /// Same property on the reference kernels: the contract is
    /// per-backend, not an artifact of one kernel implementation.
    #[test]
    fn stream_state_bytes_roundtrip_bitwise_reference(
        seed in 0u64..1_000_000,
        warm in 1usize..8,
        tail in 1usize..5,
    ) {
        let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = RestoreBackend;
        kernels::set_backend(Backend::Reference);
        assert_stream_roundtrip(seed, warm, tail);
    }

    /// Export-at-a-random-cut → restore-into-a-fresh-engine equals the
    /// uninterrupted stream, for every architecture (fast kernels).
    #[test]
    fn session_checkpoint_restore_is_bitwise_fast(
        seed in 0u64..1_000_000,
        steps in (HISTORY + 2)..12usize,
        cut_frac in 0.1f64..0.9,
    ) {
        let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = RestoreBackend;
        kernels::set_backend(Backend::Fast);
        let cut = ((steps as f64 * cut_frac) as usize).clamp(1, steps - 1);
        for arch in ALL_ARCHS {
            assert_engine_roundtrip(arch, seed, steps, cut);
        }
    }

    /// The engine-level property on the reference kernels (one
    /// architecture keeps the slow backend's share of the suite small).
    #[test]
    fn session_checkpoint_restore_is_bitwise_reference(
        seed in 0u64..1_000_000,
        steps in (HISTORY + 2)..10usize,
        cut_frac in 0.1f64..0.9,
    ) {
        let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = RestoreBackend;
        kernels::set_backend(Backend::Reference);
        let cut = ((steps as f64 * cut_frac) as usize).clamp(1, steps - 1);
        assert_engine_roundtrip(Architecture::CnnLstm, seed, steps, cut);
    }
}

/// Geometry guard: a snapshot minted by one model must not be adopted
/// by an engine whose model disagrees on classes or feature width.
#[test]
fn mismatched_checkpoint_is_refused() {
    let donor_model = model(Architecture::CnnLstm);
    let mut donor = ServeEngine::new(donor_model.clone(), builder(), serve_config());
    let id = donor.open_session().expect("capacity");
    // Tick past a full window so the snapshot carries buffered softmax
    // rows — the class-dimension gate inspects those rows.
    for t in 0..HISTORY {
        donor
            .push_frame(id, t as f64 * 0.5, synth_frame(1, t), HealthState::Healthy)
            .expect("queue sized");
    }
    donor.drain();
    let ckpt = donor.export_session(id).expect("open");

    // Same layout, different class count: the snapshot's 12-wide
    // softmax rows cannot feed a 5-class engine.
    let other = build_model(&layout(), 5, Architecture::CnnLstm, 7);
    let mut heir = ServeEngine::new(other, builder(), serve_config());
    assert_eq!(
        heir.restore_session(ckpt).err(),
        Some(ServeError::CheckpointMismatch),
        "a class-count mismatch must be refused, not adopted"
    );

    // Different window length: refused by the structural gate even
    // with nothing buffered.
    let id2 = donor.open_session().expect("capacity");
    let fresh = donor.export_session(id2).expect("open");
    let mut longer = ServeEngine::new(
        donor_model,
        builder(),
        ServeConfig {
            history_len: HISTORY + 2,
            ..serve_config()
        },
    );
    assert_eq!(
        longer.restore_session(fresh).err(),
        Some(ServeError::CheckpointMismatch),
        "a window-length mismatch must be refused, not adopted"
    );
}

/// Corrupted persistence bytes never deserialize into a state.
#[test]
fn corrupted_stream_state_bytes_are_rejected() {
    let m = model(Architecture::CnnLstm);
    let mut state = m.stream_state(HISTORY);
    step_range(&m, &mut state, 7, 0, 4);
    let bytes = state.to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(
        StreamState::from_bytes(&bad_magic).is_err(),
        "a corrupted magic must be rejected"
    );
    assert!(
        StreamState::from_bytes(&bytes[..bytes.len() - 3]).is_err(),
        "truncated bytes must be rejected"
    );
    assert!(
        StreamState::from_bytes(&[]).is_err(),
        "empty bytes must be rejected"
    );
}
