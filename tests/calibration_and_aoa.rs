//! Integration of the RF simulator with the DSP chain: does the
//! calibrated pipeline recover geometry the way the paper relies on?

use m2ai::prelude::*;
use m2ai_core::frames::FrameBuilder;
use m2ai_rfsim::geometry::Point2;

/// An almost-anechoic room isolates the direct path.
fn anechoic() -> Room {
    Room::rectangular("anechoic", 10.0, 8.0, 60.0)
}

fn reader_cfg(hopping: bool) -> ReaderConfig {
    ReaderConfig {
        hopping_offsets: hopping,
        phase_noise_std: 0.02,
        rssi_noise_db: 0.2,
        ..ReaderConfig::default()
    }
}

fn peak_angle(frame: &[f32]) -> f64 {
    frame[..180]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i as f64)
        .expect("non-empty")
}

#[test]
fn aoa_tracks_tag_direction() {
    // Sweep the tag across the room; the pseudospectrum peak must move
    // monotonically with the geometric angle.
    let mut measured = Vec::new();
    let mut truth = Vec::new();
    for x in [3.0, 4.0, 5.0, 6.0, 7.0] {
        let pos = Point2::new(x, 3.6);
        let mut reader = Reader::new(anechoic(), reader_cfg(false), 1);
        let scene = SceneSnapshot::with_tags(vec![pos]);
        let readings = reader.run(|_| scene.clone(), 2.0);
        let layout = FrameLayout::new(1, 4, FeatureMode::MusicOnly);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 2.0);
        let frame = builder.build_frame(&readings, 0.0);
        measured.push(peak_angle(&frame));
        let center = reader.config().array_center;
        let v = center.to(pos);
        truth.push(v.y.atan2(v.x).to_degrees());
    }
    for w in measured.windows(2) {
        assert!(w[1] < w[0], "peaks must move monotonically: {measured:?}");
    }
    for (m, t) in measured.iter().zip(&truth) {
        assert!((m - t).abs() < 15.0, "measured {m} vs geometric {t}");
    }
}

#[test]
fn calibration_stabilises_aoa_under_hopping() {
    // Eq. 1 calibration cannot remove the *constant* per-port offsets
    // (it maps every channel onto the reference channel, whose own
    // per-port phases remain) — so a fixed AoA bias survives. The bias
    // is arbitrary (cable-delay differences of a few ns are many
    // wavelengths at 910 MHz), deployment-specific, and absorbed by
    // learning. What calibration buys is *stability*: without it, every
    // estimation window straddles different hop channels and the peak
    // wanders window to window. So we assert (a) calibrated peaks are
    // pinned, (b) the pinned angle is a deployment constant — two
    // calibrators learned from disjoint recordings agree — and (c)
    // calibration is never less stable than no calibration.
    let pos = Point2::new(5.0, 4.3); // broadside: 90°
    let scene = SceneSnapshot::with_tags(vec![pos]);

    let mut cal_reader = Reader::new(anechoic(), reader_cfg(true), 1);
    let frozen = scene.clone();
    let cal_readings = cal_reader.run(|_| frozen.clone(), 42.0);
    let (first_half, second_half): (Vec<_>, Vec<_>) =
        cal_readings.into_iter().partition(|r| r.time_s < 21.0);
    let calibrator = PhaseCalibrator::learn(&first_half, 1, 4);
    let calibrator_b = PhaseCalibrator::learn(&second_half, 1, 4);

    let mut reader = Reader::new(anechoic(), reader_cfg(true), 1);
    let readings = reader.run(|_| scene.clone(), 21.0);
    let layout = FrameLayout::new(1, 4, FeatureMode::MusicOnly);

    let builder = FrameBuilder::new(layout, calibrator, 2.0);
    let builder_b = FrameBuilder::new(layout, calibrator_b, 2.0);
    let uncal_builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 2.0);
    let n_windows = 8;
    let mut cal_peaks = Vec::new();
    let mut cal_peaks_b = Vec::new();
    let mut raw_peaks = Vec::new();
    for k in 0..n_windows {
        let t0 = k as f64 * 2.0;
        cal_peaks.push(peak_angle(&builder.build_frame(&readings, t0)));
        cal_peaks_b.push(peak_angle(&builder_b.build_frame(&readings, t0)));
        raw_peaks.push(peak_angle(&uncal_builder.build_frame(&readings, t0)));
    }
    let spread = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::MAX, f64::min);
        let hi = v.iter().cloned().fold(f64::MIN, f64::max);
        hi - lo
    };
    // (a) Calibrated peaks are pinned (≤ 2° wander).
    assert!(
        spread(&cal_peaks) <= 2.0,
        "calibrated peaks wander: {cal_peaks:?}"
    );
    // (b) The surviving bias is a deployment constant: independently
    // learned calibrators pin the peak at the same angle.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        (mean(&cal_peaks) - mean(&cal_peaks_b)).abs() <= 2.0,
        "bias depends on the calibration recording: {} vs {}",
        mean(&cal_peaks),
        mean(&cal_peaks_b)
    );
    // (c) Calibration is never less stable than no calibration.
    assert!(
        spread(&cal_peaks) <= spread(&raw_peaks),
        "calibration must not be less stable: {cal_peaks:?} vs {raw_peaks:?}"
    );
}

#[test]
fn blocker_changes_the_spectrum() {
    // Fig. 2(b): a person stepping into a path must visibly change the
    // pseudospectrum.
    let pos = Point2::new(4.0, 4.5);
    let layout = FrameLayout::new(1, 4, FeatureMode::MusicOnly);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 2.0);
    let spectrum = |blocked: bool| -> Vec<f32> {
        let mut scene = SceneSnapshot::with_tags(vec![pos]);
        if blocked {
            scene
                .blockers
                .push(m2ai::rfsim::scene::Blocker::person(Point2::new(4.5, 2.4)));
        }
        let mut reader = Reader::new(Room::laboratory(), reader_cfg(false), 1);
        let readings = reader.run(|_| scene.clone(), 2.0);
        builder.build_frame(&readings, 0.0)
    };
    let clear = spectrum(false);
    let blocked = spectrum(true);
    let diff: f32 = clear.iter().zip(&blocked).map(|(a, b)| (a - b).abs()).sum();
    assert!(diff > 1.0, "blocking changed nothing (diff {diff})");
}

#[test]
fn more_antennas_sharpen_the_spectrum() {
    // Fig. 14 mechanism: with 2 antennas the pseudospectrum is broad;
    // 4 antennas concentrate power around the true angle.
    let pos = Point2::new(5.0, 4.0);
    let scene = SceneSnapshot::with_tags(vec![pos]);
    let sharpness = |n_ant: usize, seed: u64| -> f64 {
        let mut cfg = reader_cfg(false);
        cfg.n_antennas = n_ant;
        cfg.seed = seed;
        let mut reader = Reader::new(anechoic(), cfg, 1);
        let readings = reader.run(|_| scene.clone(), 2.0);
        let layout = FrameLayout::new(1, n_ant, FeatureMode::MusicOnly);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, n_ant), 2.0);
        let frame = builder.build_frame(&readings, 0.0);
        // Support size: how many angle bins carry noticeable power.
        frame[..180].iter().filter(|&&v| v > 0.12).count() as f64
    };
    // The support size is a noisy statistic of one 2 s recording, so
    // compare averages over several independent noise realisations.
    let seeds = [1u64, 2, 3, 4, 5];
    let avg = |n_ant: usize| -> f64 {
        seeds.iter().map(|&s| sharpness(n_ant, s)).sum::<f64>() / seeds.len() as f64
    };
    let s2 = avg(2);
    let s4 = avg(4);
    assert!(
        s4 <= s2,
        "4 antennas should concentrate power into no more bins: {s4} vs {s2}"
    );
    assert!(s4 > 0.0, "4-antenna spectrum must not be empty");
}
