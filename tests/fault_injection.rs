//! End-to-end fault-injection tests: the read→frame→predict pipeline
//! under the PR-2 fault model.
//!
//! The contracts checked here:
//!
//! * `FaultPlan::none()` is a bit-exact no-op at every layer;
//! * fault injection is deterministic and thread-count invariant;
//! * read loss grows with fault intensity;
//! * no frame or prediction ever contains a non-finite value, no
//!   matter how hard the stream is faulted;
//! * training survives faulted data, and the streaming identifier
//!   degrades and recovers instead of crashing.

use m2ai::core::dataset::{generate_dataset, ExperimentConfig};
use m2ai::core::frames::{FrameBuilder, FrameLayout};
use m2ai::core::network::build_model;
use m2ai::core::online::{HealthConfig, HealthState, OnlineIdentifier};
use m2ai::prelude::*;
use m2ai::rfsim::geometry::Point2;

/// A small-but-real experimental condition (fast enough for CI).
fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        n_persons: 1,
        tags_per_person: 2,
        samples_per_class: 2,
        frames_per_sample: 4,
        ..ExperimentConfig::paper_default()
    }
}

fn assert_bundles_identical(a: &m2ai::core::DatasetBundle, b: &m2ai::core::DatasetBundle) {
    assert_eq!(a.samples.len(), b.samples.len());
    for ((fa, la), (fb, lb)) in a.samples.iter().zip(&b.samples) {
        assert_eq!(la, lb);
        assert_eq!(fa.len(), fb.len());
        for (va, vb) in fa.iter().zip(fb) {
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "frame values must be bit-equal");
            }
        }
    }
}

#[test]
fn none_plan_is_a_bit_exact_noop_end_to_end() {
    let clean = generate_dataset(&small_config());
    let mut cfg = small_config();
    cfg.faults = FaultPlan::with_intensity(0.0, 999); // seed must not matter at zero
    let zero = generate_dataset(&cfg);
    assert_bundles_identical(&clean, &zero);
}

#[test]
fn faulted_dataset_is_deterministic() {
    let mut cfg = small_config();
    cfg.faults = FaultPlan::with_intensity(0.6, 2026);
    let a = generate_dataset(&cfg);
    let b = generate_dataset(&cfg);
    assert_bundles_identical(&a, &b);
}

#[test]
fn faulted_dataset_is_thread_count_invariant() {
    let mut serial = small_config();
    serial.faults = FaultPlan::with_intensity(0.5, 7);
    serial.n_threads = 1;
    let mut parallel = serial.clone();
    parallel.n_threads = 8;
    assert_bundles_identical(&generate_dataset(&serial), &generate_dataset(&parallel));
}

#[test]
fn read_loss_grows_with_intensity() {
    let room = Room::laboratory();
    let scene = SceneSnapshot::with_tags(vec![Point2::new(2.0, 2.5), Point2::new(3.5, 2.5)]);
    let survivors = |intensity: f64| -> usize {
        let mut reader = Reader::new(room.clone(), ReaderConfig::default(), 2)
            .with_fault_plan(FaultPlan::with_intensity(intensity, 2026));
        reader.run(|_| scene.clone(), 4.0).len()
    };
    let counts: Vec<usize> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&i| survivors(i))
        .collect();
    assert!(counts[0] > 0, "clean run must produce reads");
    for w in counts.windows(2) {
        assert!(
            w[1] <= w[0],
            "read count must not grow with intensity: {counts:?}"
        );
    }
    assert!(
        counts[4] < counts[0],
        "full intensity must destroy some reads: {counts:?}"
    );
}

#[test]
fn frames_stay_finite_under_maximum_faults() {
    let mut cfg = small_config();
    cfg.faults = FaultPlan::with_intensity(1.0, 13);
    let bundle = generate_dataset(&cfg);
    for (frames, _) in &bundle.samples {
        for frame in frames {
            assert_eq!(frame.len(), bundle.layout.frame_dim());
            assert!(
                frame.iter().all(|v| v.is_finite()),
                "faulted frame leaked a non-finite value"
            );
        }
    }
}

#[test]
fn training_survives_a_faulted_dataset() {
    let mut cfg = small_config();
    cfg.samples_per_class = 3;
    cfg.faults = FaultPlan::with_intensity(0.8, 5);
    let bundle = generate_dataset(&cfg);
    let outcome = train_m2ai(
        &bundle,
        &TrainOptions {
            epochs: 2,
            ..TrainOptions::fast()
        },
    );
    assert!(outcome.test_accuracy.is_finite());
    for &loss in &outcome.report.epoch_losses {
        assert!(loss.is_finite(), "training loss diverged on faulted data");
    }
}

/// Streams a faulted read sequence through the online identifier: the
/// state machine may flag or suppress, but every emitted prediction
/// must be finite and well-formed.
#[test]
fn online_identifier_survives_a_faulted_stream() {
    let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    let mut ident = OnlineIdentifier::with_health_config(
        builder,
        model,
        2,
        HealthConfig {
            stale_timeout_s: 1.0,
            ..HealthConfig::default()
        },
    );

    let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1)
        .with_fault_plan(FaultPlan::with_intensity(0.9, 2026));
    let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
    let readings = reader.run(|_| scene.clone(), 8.0);
    assert!(
        !readings.is_empty(),
        "some reads must survive 0.9 intensity"
    );

    let preds = ident.push(&readings);
    for p in &preds {
        assert!(p.class < 12);
        assert!(p.confidence.is_finite());
        assert!(
            p.probabilities.iter().all(|v| v.is_finite()),
            "prediction leaked a non-finite probability"
        );
    }
    // Under 90 % fault intensity the stream must not look pristine end
    // to end: either some window was flagged or some output suppressed.
    let flagged = preds.iter().any(|p| p.health != HealthState::Healthy);
    assert!(
        flagged || ident.suppressed() > 0 || preds.is_empty(),
        "a heavily faulted stream reported uniformly healthy output"
    );
}

/// The reader's surviving reads under faults are a subset of the clean
/// stream (faults only remove or perturb; they never invent reads at
/// new instants).
#[test]
fn faults_never_invent_reads() {
    let room = Room::laboratory();
    let scene = SceneSnapshot::with_tags(vec![Point2::new(2.0, 2.5)]);
    let run = |plan: FaultPlan| -> Vec<TagReading> {
        let mut reader =
            Reader::new(room.clone(), ReaderConfig::default(), 1).with_fault_plan(plan);
        reader.run(|_| scene.clone(), 3.0)
    };
    let clean = run(FaultPlan::none());
    let faulted = run(FaultPlan::with_intensity(0.7, 3));
    assert!(faulted.len() <= clean.len());
    // Every surviving (time, tag, antenna, channel) identity appears in
    // the clean stream too.
    for f in &faulted {
        assert!(
            clean.iter().any(|c| c.time_s == f.time_s
                && c.tag == f.tag
                && c.antenna == f.antenna
                && c.channel == f.channel),
            "fault injection invented a read at t={}",
            f.time_s
        );
    }
}
