//! Trace-context propagation across the fabric's thread boundaries.
//!
//! The tracing subsystem's core promise: a context minted at the
//! fabric edge is carried on the `ShardCmd` into the worker thread,
//! re-parented through the ingress span, and surfaces on the emitted
//! prediction — one causally linked span tree per frame, even when
//! the frame's session migrated through a kill/restart in between.
//! These tests flip the process-global sampling configuration and
//! drain the process-global collector, so they serialise on a local
//! lock (the same pattern as `tests/observability.rs`).

use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_core::online::HealthState;
use m2ai_core::serve::{ServeConfig, ServeEngine};
use m2ai_obs::trace::{self, SpanStatus, TraceConfig};
use m2ai_serve_fabric::{FabricConfig, ServeFabric, SessionKey, SupervisionConfig};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const HISTORY: usize = 12;

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn builder() -> FrameBuilder {
    FrameBuilder::new(layout(), PhaseCalibrator::disabled(1, 4), 0.5)
}

fn fabric(shards: usize) -> ServeFabric {
    ServeFabric::new(
        build_model(&layout(), 12, Architecture::CnnLstm, 1),
        builder(),
        FabricConfig {
            shards,
            vnodes: 16,
            ingress_capacity: 256,
            serve: ServeConfig {
                history_len: HISTORY,
                queue_capacity: 256,
                ..ServeConfig::default()
            },
            supervision: SupervisionConfig {
                heartbeat_interval: Duration::from_millis(5),
                restart_backoff: Duration::from_millis(10),
                backoff_max: Duration::from_millis(100),
                ..SupervisionConfig::default()
            },
        },
    )
}

fn frame(dim: usize, step: usize) -> Vec<f32> {
    (0..dim)
        .map(|d| 0.05 + 0.01 * ((step + d) % 9) as f32)
        .collect()
}

fn push_steps(f: &ServeFabric, key: SessionKey, from: usize, count: usize) {
    let dim = layout().frame_dim();
    for t in from..from + count {
        f.push_frame_with_deadline(
            key,
            t as f64 * 0.5,
            frame(dim, t),
            HealthState::Healthy,
            Duration::from_secs(30),
        )
        .expect("push survives restarts");
    }
}

#[test]
fn emitted_predictions_walk_back_to_worker_ingress_spans() {
    let _g = lock();
    let _ = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 1 });
    let f = fabric(2);
    let keys: Vec<SessionKey> = (0..3)
        .map(|_| f.open_session().expect("capacity"))
        .collect();
    for &key in &keys {
        push_steps(&f, key, 0, HISTORY + 4);
    }
    let preds: Vec<_> = f.flush();
    f.shutdown();
    let spans = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });

    assert_eq!(preds.len(), 3 * 5, "one prediction per full window");
    for p in &preds {
        let ctx = p.prediction.trace;
        assert!(ctx.is_sampled(), "sampling 1 must tag every prediction");
        let emit = spans
            .iter()
            .find(|s| s.span_id == ctx.span_id && s.trace_id == ctx.trace_id)
            .expect("emit span reaches the collector across the worker thread");
        assert_eq!(emit.name, "emit");
        assert_eq!(emit.status, SpanStatus::Ok);
        // The emit span's parent is the ingress span recorded on the
        // shard worker after the queue wait — same trace, shard-tagged.
        let ingress = spans
            .iter()
            .find(|s| s.span_id == emit.parent_id && s.trace_id == emit.trace_id)
            .expect("ingress parent span recorded");
        assert_eq!(ingress.name, "ingress");
        assert_eq!(
            ingress.shard, p.shard as i64,
            "ingress span carries the serving shard"
        );
        // The root context minted at the fabric edge has span id 0.
        assert_eq!(ingress.parent_id, 0, "ingress parents to the trace root");
    }
}

#[test]
fn span_trees_survive_a_kill_and_restart_migration() {
    let _g = lock();
    let _ = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 1 });
    let f = fabric(2);
    let key = f.open_session().expect("capacity");
    push_steps(&f, key, 0, HISTORY);
    let mut preds = f.flush();
    f.checkpoint_now().expect("live shards checkpoint");
    f.kill_shard(0).expect("shard 0 alive");
    let t0 = Instant::now();
    while !f.shard_alive(0) {
        assert!(t0.elapsed() < Duration::from_secs(30), "restart timed out");
        std::thread::sleep(Duration::from_millis(2));
    }
    push_steps(&f, key, HISTORY, 4);
    preds.extend(f.flush());
    f.shutdown();
    let spans = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });

    assert_eq!(preds.len(), 5, "no prediction may be lost across the kill");
    // Predictions emitted by the post-restart incarnation still carry
    // complete trees: edge context → worker ingress → emit.
    for p in &preds {
        let ctx = p.prediction.trace;
        assert!(ctx.is_sampled());
        let emit = spans
            .iter()
            .find(|s| s.span_id == ctx.span_id && s.trace_id == ctx.trace_id)
            .expect("emit span");
        assert!(
            spans.iter().any(|s| s.span_id == emit.parent_id
                && s.trace_id == emit.trace_id
                && s.name == "ingress"),
            "emit must parent to an ingress span even after migration"
        );
    }
}

#[test]
fn sampling_off_leaves_no_spans_and_unsampled_predictions() {
    let _g = lock();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });
    let _ = trace::take_spans();
    let f = fabric(1);
    let key = f.open_session().expect("capacity");
    push_steps(&f, key, 0, HISTORY + 2);
    let preds = f.flush();
    f.shutdown();
    assert!(!preds.is_empty());
    for p in &preds {
        assert!(
            !p.prediction.trace.is_sampled(),
            "sampling off must produce TraceContext::NONE"
        );
    }
    assert!(
        trace::take_spans().is_empty(),
        "sampling off must record no spans at all"
    );
}

#[test]
fn killed_shard_leaves_a_validating_flight_recorder_dump() {
    let _g = lock();
    let _ = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 1 });
    let dir = std::env::temp_dir().join(format!("m2ai-tracetest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dump dir");
    trace::set_flightrec_dir(Some(dir.clone()));

    let f = fabric(1);
    let key = f.open_session().expect("capacity");
    push_steps(&f, key, 0, HISTORY);
    f.flush();
    f.checkpoint_now().expect("checkpoint");
    f.kill_shard(0).expect("alive");
    let t0 = Instant::now();
    while !f.shard_alive(0) {
        assert!(t0.elapsed() < Duration::from_secs(30), "restart timed out");
        std::thread::sleep(Duration::from_millis(2));
    }
    f.shutdown();
    trace::set_flightrec_dir(None);
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });
    let _ = trace::take_spans();

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir readable")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("flightrec-"))
        .collect();
    assert!(!dumps.is_empty(), "the kill must leave a postmortem dump");
    for d in &dumps {
        let doc = std::fs::read_to_string(d.path()).expect("dump readable");
        let errs = trace::validate_flightrec_json(&doc);
        assert!(
            errs.is_empty(),
            "dump {:?} invalid: {errs:?}",
            d.file_name()
        );
        assert!(doc.contains("m2ai-flightrec-v1"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_exposes_traced_push_for_external_contexts() {
    let _g = lock();
    let _ = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 1 });
    // Direct engine use (no fabric): a caller-minted context flows
    // through push_frame_traced into the emitted prediction's trace.
    let mut eng = ServeEngine::new(
        build_model(&layout(), 12, Architecture::CnnLstm, 1),
        builder(),
        ServeConfig {
            history_len: 2,
            ..ServeConfig::default()
        },
    );
    let id = eng.open_session().expect("capacity");
    let dim = layout().frame_dim();
    let root = trace::begin_trace();
    for t in 0..3 {
        eng.push_frame_traced(
            id,
            t as f64 * 0.5,
            frame(dim, t),
            HealthState::Healthy,
            root,
        )
        .expect("queue capacity");
    }
    let preds = eng.drain();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });
    let spans = trace::take_spans();
    assert!(!preds.is_empty());
    for p in &preds {
        assert_eq!(p.trace.trace_id, root.trace_id, "trace id must propagate");
        assert!(
            spans.iter().any(|s| s.span_id == p.trace.span_id),
            "emit span must be recorded"
        );
    }
}
