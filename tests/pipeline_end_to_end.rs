//! Cross-crate integration: scenes → reader → frames → training.

use m2ai::prelude::*;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        samples_per_class: 3,
        frames_per_sample: 6,
        calibrate: false,
        ..ExperimentConfig::paper_default()
    }
}

#[test]
fn dataset_to_trained_model() {
    let bundle = generate_dataset(&tiny_config());
    assert_eq!(bundle.samples.len(), 36);
    let mut opts = TrainOptions::fast();
    opts.epochs = 10;
    let outcome = train_m2ai(&bundle, &opts);
    // Ten epochs on tiny data: demand clear progress over chance on the
    // training split (test split is 7 samples — too small to bound).
    // Chance is 1/12 ≈ 0.083; 0.25 is 3× chance.
    assert!(
        outcome.train_accuracy > 0.25,
        "train accuracy {}",
        outcome.train_accuracy
    );
    assert!(outcome.report.epoch_losses.len() == 10);
    let first = outcome.report.epoch_losses[0];
    let last = outcome.report.final_loss().expect("has epochs");
    assert!(last < first, "loss should decrease: {first} -> {last}");
}

#[test]
fn all_feature_modes_train() {
    for mode in [
        FeatureMode::Joint,
        FeatureMode::MusicOnly,
        FeatureMode::PeriodogramOnly,
        FeatureMode::PhaseOnly,
        FeatureMode::RssiOnly,
    ] {
        let mut config = tiny_config();
        config.samples_per_class = 2;
        config.feature_mode = mode;
        let bundle = generate_dataset(&config);
        let mut opts = TrainOptions::fast();
        opts.epochs = 2;
        let outcome = train_m2ai(&bundle, &opts);
        assert!(
            outcome.report.final_loss().expect("ran").is_finite(),
            "{mode:?} diverged"
        );
    }
}

#[test]
fn all_architectures_train() {
    let mut config = tiny_config();
    config.samples_per_class = 2;
    let bundle = generate_dataset(&config);
    for arch in [
        Architecture::CnnLstm,
        Architecture::CnnOnly,
        Architecture::LstmOnly,
    ] {
        let mut opts = TrainOptions::fast();
        opts.epochs = 2;
        opts.architecture = arch;
        let outcome = train_m2ai(&bundle, &opts);
        assert!(outcome.test_accuracy >= 0.0 && outcome.test_accuracy <= 1.0);
    }
}

#[test]
fn baselines_run_on_generated_data() {
    let bundle = generate_dataset(&tiny_config());
    let results = evaluate_baselines(&bundle, 0.25, 1, 2);
    assert_eq!(results.len(), 10);
    // At least a couple of baselines must beat chance even on tiny data
    // (the task is learnable).
    let above_chance = results.iter().filter(|(_, a)| *a > 1.0 / 12.0).count();
    assert!(above_chance >= 2, "{results:?}");
}

#[test]
fn experiment_knobs_change_the_data() {
    let base = generate_dataset(&tiny_config());
    let mut hall_cfg = tiny_config();
    hall_cfg.room = RoomKind::Hall;
    let hall = generate_dataset(&hall_cfg);
    assert_ne!(base.samples, hall.samples, "room must matter");

    let mut two_ant = tiny_config();
    two_ant.n_antennas = 2;
    let bundle2 = generate_dataset(&two_ant);
    assert_eq!(bundle2.layout.n_antennas, 2);
    assert!(bundle2.layout.frame_dim() < base.layout.frame_dim());
}

#[test]
fn one_and_three_person_variants_work() {
    for n in [1usize, 3] {
        let mut config = tiny_config();
        config.n_persons = n;
        config.samples_per_class = 1;
        let bundle = generate_dataset(&config);
        assert_eq!(bundle.layout.n_tags, n * 3);
        assert_eq!(bundle.samples.len(), 12);
    }
}
