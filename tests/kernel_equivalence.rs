//! Fast-vs-reference kernel equivalence (PR-3 satellite).
//!
//! The fast kernels use `mul_add` (fused multiply-add) in the *same*
//! accumulation order as the reference loops, so any output may differ
//! from the naive arithmetic by at most the per-step FMA rounding
//! (≤ 1 ulp each). These properties pin that contract across random
//! shapes, including the degenerate ones the lowering must not trip
//! over: `kernel = 1`, `c_in = 1`, a single timestep, single rows.
//!
//! Tests that flip the process-global backend serialise behind
//! [`BACKEND_LOCK`] and restore the default (`Fast`) even on panic.

use m2ai::kernels::{self, fast, quant, reference, tiled, Backend};
use m2ai::nn::layers::{Conv1d, Dense, Layer};
use m2ai::nn::lstm::Lstm;
use m2ai::nn::Parameterized;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises every test that reads or flips the global kernel backend.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Restores the default backend when dropped, so a panicking case
/// cannot leave `Reference` selected for the rest of the binary.
struct RestoreFast;

impl Drop for RestoreFast {
    fn drop(&mut self) {
        kernels::set_backend(Backend::Fast);
    }
}

fn with_backend<T>(b: Backend, f: impl FnOnce() -> T) -> T {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreFast;
    kernels::set_backend(b);
    f()
}

/// Deterministic pseudo-random values in `(-1, 1)` (LCG; shapes are
/// proptest-driven, the payload only needs to be well-spread).
fn lcg_values(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "shape mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn grads_of(p: &mut dyn Parameterized) -> Vec<f32> {
    let mut out = Vec::new();
    p.visit_params(&mut |_, g| out.extend_from_slice(g));
    out
}

/// Accumulated FMA-rounding slack for small shapes with O(1) values.
const TOL: f32 = 5e-4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three GEMM storage layouts agree between backends.
    #[test]
    fn gemm_fast_matches_reference(
        m in 1usize..7,
        n in 1usize..7,
        k in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = lcg_values(seed, m * k);
        let b = lcg_values(seed ^ 0x9e37, k * n);
        let c0 = lcg_values(seed ^ 0x79b9, m * n);

        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        fast::gemm_nn(m, n, k, &a, &b, &mut c_fast);
        reference::gemm_nn(m, n, k, &a, &b, &mut c_ref);
        prop_assert!(max_abs_diff(&c_fast, &c_ref) <= TOL);

        // B stored [n × k] (dot-product layout).
        let bt = lcg_values(seed ^ 0x7f4a, n * k);
        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        fast::gemm_nt(m, n, k, &a, &bt, &mut c_fast);
        reference::gemm_nt(m, n, k, &a, &bt, &mut c_ref);
        prop_assert!(max_abs_diff(&c_fast, &c_ref) <= TOL);

        // A stored [k × m] (gradient-accumulation layout).
        let at = lcg_values(seed ^ 0x7c15, k * m);
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        fast::gemm_tn(m, n, k, &at, &b, &mut c_fast);
        reference::gemm_tn(m, n, k, &at, &b, &mut c_ref);
        prop_assert!(max_abs_diff(&c_fast, &c_ref) <= TOL);
    }

    /// Matrix–vector products (both orientations) agree between
    /// backends, accumulating into a non-zero `y`.
    #[test]
    fn gemv_fast_matches_reference(
        m in 1usize..9,
        k in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = lcg_values(seed, m * k);
        let x = lcg_values(seed ^ 0x1ce4, k);
        let y0 = lcg_values(seed ^ 0xe5b9, m);
        let mut y_fast = y0.clone();
        let mut y_ref = y0;
        fast::gemv(m, k, &a, &x, &mut y_fast);
        reference::gemv(m, k, &a, &x, &mut y_ref);
        prop_assert!(max_abs_diff(&y_fast, &y_ref) <= TOL);

        // Transposed: y[j] += Σ_r x[r]·a[r·n + j].
        let xt = lcg_values(seed ^ 0x1331, m);
        let z0 = lcg_values(seed ^ 0x11eb, k);
        let mut z_fast = z0.clone();
        let mut z_ref = z0;
        fast::gemv_t(m, k, &a, &xt, &mut z_fast);
        reference::gemv_t(m, k, &a, &xt, &mut z_ref);
        prop_assert!(max_abs_diff(&z_fast, &z_ref) <= TOL);
    }

    /// Per-row symmetric int8 quantization round-trips within half a
    /// scale step per element, and the i8×i8→i32 GEMM is exact
    /// integer arithmetic (checked against a naive i32 loop).
    #[test]
    fn int8_quantization_round_trips(
        rows in 1usize..6,
        cols in 1usize..40,
        scale_mag in 0.01f32..10.0,
        seed in any::<u64>(),
    ) {
        let w: Vec<f32> = lcg_values(seed, rows * cols)
            .into_iter()
            .map(|v| v * scale_mag)
            .collect();
        let qm = quant::quantize_rows(&w, rows, cols);
        prop_assert_eq!(qm.rows, rows);
        prop_assert_eq!(qm.cols, cols);
        for r in 0..rows {
            let s = qm.scales[r];
            prop_assert!(s > 0.0, "scale must be positive");
            for c in 0..cols {
                let back = qm.q[r * cols + c] as f32 * s;
                prop_assert!(
                    (w[r * cols + c] - back).abs() <= 0.5 * s + 1e-6,
                    "row {} col {}: {} vs {} (scale {})",
                    r, c, w[r * cols + c], back, s
                );
            }
        }

        // Activation quantization: same half-step bound inside the
        // calibrated range, saturation outside it.
        let xs: Vec<f32> = lcg_values(seed ^ 0x0dd5, cols)
            .into_iter()
            .map(|v| v * scale_mag)
            .collect();
        let s = quant::activation_scale(quant::max_abs(&xs));
        let mut qx = Vec::new();
        quant::quantize_into(&xs, s, &mut qx);
        for (x, &q) in xs.iter().zip(&qx) {
            prop_assert!((x - q as f32 * s).abs() <= 0.5 * s + 1e-6);
            prop_assert!((-127..=127).contains(&(q as i32)));
        }

        // The integer GEMM accumulates exactly.
        let mut acc = vec![0i32; rows];
        quant::gemm_i8_nt(1, rows, cols, &qx, &qm.q, &mut acc);
        for (r, &got) in acc.iter().enumerate() {
            let want: i32 = (0..cols)
                .map(|c| qx[c] as i32 * qm.q[r * cols + c] as i32)
                .sum();
            // Integer dot products must be exact.
            prop_assert_eq!(got, want);
        }
    }
}

// Large-shape tiled properties get their own (smaller) case budget:
// each case multiplies several-hundred-dimension matrices in debug
// builds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The cache-blocked parallel tiling agrees with `reference` at
    /// shapes large enough to actually cross the tiled path's
    /// worthwhile threshold (several-hundred dimensions, multiple M
    /// tiles and K panels), in all three storage layouts. Tolerance is
    /// banded by the accumulation length `k`.
    #[test]
    fn tiled_matches_reference_at_large_shapes(
        m in 130usize..280,
        n in 96usize..170,
        k in 96usize..170,
        threads in 2usize..5,
        seed in any::<u64>(),
    ) {
        // FMA-rounding slack grows with the accumulation chain.
        let tol = 1e-4 + k as f32 * 2e-5;
        let a = lcg_values(seed, m * k);
        let b = lcg_values(seed ^ 0x9e37, k * n);
        let c0 = lcg_values(seed ^ 0x79b9, m * n);

        let mut c_tiled = c0.clone();
        let mut c_ref = c0.clone();
        tiled::gemm_nn_with_threads(m, n, k, &a, &b, &mut c_tiled, threads);
        reference::gemm_nn(m, n, k, &a, &b, &mut c_ref);
        prop_assert!(max_abs_diff(&c_tiled, &c_ref) <= tol);

        let bt = lcg_values(seed ^ 0x7f4a, n * k);
        let mut c_tiled = c0.clone();
        let mut c_ref = c0.clone();
        tiled::gemm_nt_with_threads(m, n, k, &a, &bt, &mut c_tiled, threads);
        reference::gemm_nt(m, n, k, &a, &bt, &mut c_ref);
        prop_assert!(max_abs_diff(&c_tiled, &c_ref) <= tol);

        let at = lcg_values(seed ^ 0x7c15, k * m);
        let mut c_tiled = c0.clone();
        let mut c_ref = c0;
        tiled::gemm_tn_with_threads(m, n, k, &at, &b, &mut c_tiled, threads);
        reference::gemm_tn(m, n, k, &at, &b, &mut c_ref);
        prop_assert!(max_abs_diff(&c_tiled, &c_ref) <= tol);
    }

    /// Determinism is *exact*, not banded: the tiled path returns the
    /// same bits as the single-thread fast kernel for every thread
    /// count, because M-tile tasks own disjoint C rows and K panels
    /// accumulate in a fixed order.
    #[test]
    fn tiled_is_bit_exact_across_thread_counts(
        m in 130usize..260,
        n in 96usize..150,
        k in 96usize..150,
        seed in any::<u64>(),
    ) {
        let a = lcg_values(seed, m * k);
        let b = lcg_values(seed ^ 0x9e37, k * n);
        let c0 = lcg_values(seed ^ 0x79b9, m * n);
        let mut want = c0.clone();
        fast::gemm_nn(m, n, k, &a, &b, &mut want);
        for threads in [1, 2, 3, 8] {
            let mut c = c0.clone();
            tiled::gemm_nn_with_threads(m, n, k, &a, &b, &mut c, threads);
            prop_assert!(
                c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads} changed bits"
            );
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Dense` forward/backward agree between backends, and the batched
    /// entry points match the per-row ones under the fast backend.
    #[test]
    fn dense_fast_matches_reference(
        in_dim in 1usize..6,
        out_dim in 1usize..6,
        rows in 1usize..5,
        seed in any::<u64>(),
    ) {
        let xs = lcg_values(seed, rows * in_dim);
        let gs = lcg_values(seed ^ 0x0dd5, rows * out_dim);

        let run = |backend: Backend| {
            with_backend(backend, || {
                let mut d = Dense::new(in_dim, out_dim, 42);
                let mut ys = Vec::new();
                let mut gxs = Vec::new();
                for (x, g) in xs.chunks_exact(in_dim).zip(gs.chunks_exact(out_dim)) {
                    ys.extend(d.forward(x));
                    gxs.extend(d.backward(x, g));
                }
                let grads = grads_of(&mut d);
                (ys, gxs, grads)
            })
        };
        let (y_f, gx_f, g_f) = run(Backend::Fast);
        let (y_r, gx_r, g_r) = run(Backend::Reference);
        prop_assert!(max_abs_diff(&y_f, &y_r) <= TOL);
        prop_assert!(max_abs_diff(&gx_f, &gx_r) <= TOL);
        prop_assert!(max_abs_diff(&g_f, &g_r) <= TOL);

        // Batched path vs the sequence of single-row calls.
        let (ys_b, gxs_b, g_b) = with_backend(Backend::Fast, || {
            let mut d = Dense::new(in_dim, out_dim, 42);
            let ys = d.forward_batch(&xs, rows);
            let gxs = d.backward_batch(&xs, &gs, rows);
            let grads = grads_of(&mut d);
            (ys, gxs, grads)
        });
        prop_assert!(max_abs_diff(&ys_b, &y_f) <= TOL);
        prop_assert!(max_abs_diff(&gxs_b, &gx_f) <= TOL);
        prop_assert!(max_abs_diff(&g_b, &g_f) <= TOL);
    }

    /// `Conv1d` forward/backward agree between the im2col/GEMM lowering
    /// and the original window walk — including `kernel = 1` and
    /// `c_in = 1`.
    #[test]
    fn conv1d_fast_matches_reference(
        c_in in 1usize..4,
        c_out in 1usize..4,
        kernel in 1usize..4,
        stride in 1usize..3,
        extra in 0usize..6,
        seed in any::<u64>(),
    ) {
        let len_in = kernel + extra;
        let probe = Conv1d::new(c_in, len_in, c_out, kernel, stride, 42);
        let len_out = probe.len_out();
        let x = lcg_values(seed, c_in * len_in);
        let g = lcg_values(seed ^ 0x94d0, c_out * len_out);

        let run = |backend: Backend| {
            with_backend(backend, || {
                let conv = Conv1d::new(c_in, len_in, c_out, kernel, stride, 42);
                let mut layer = Layer::Conv1d(conv);
                let (y, gx) = match &mut layer {
                    Layer::Conv1d(c) => (c.forward(&x), c.backward(&x, &g)),
                    _ => unreachable!(),
                };
                let grads = grads_of(&mut layer);
                (y, gx, grads)
            })
        };
        let (y_f, gx_f, g_f) = run(Backend::Fast);
        let (y_r, gx_r, g_r) = run(Backend::Reference);
        prop_assert!(max_abs_diff(&y_f, &y_r) <= TOL, "forward diverged");
        prop_assert!(max_abs_diff(&gx_f, &gx_r) <= TOL, "input grads diverged");
        prop_assert!(max_abs_diff(&g_f, &g_r) <= TOL, "weight grads diverged");
    }

    /// LSTM forward/backward-through-time agree between the fused-GEMM
    /// timestep path and the original per-gate loops — including a
    /// single-timestep sequence.
    #[test]
    fn lstm_fast_matches_reference(
        in_dim in 1usize..4,
        hidden in 1usize..5,
        t_len in 1usize..5,
        seed in any::<u64>(),
    ) {
        let xs: Vec<Vec<f32>> = (0..t_len)
            .map(|t| lcg_values(seed ^ (t as u64 * 0xbf58), in_dim))
            .collect();
        let gouts: Vec<Vec<f32>> = (0..t_len)
            .map(|t| lcg_values(seed ^ 0x476d ^ (t as u64 * 0x2545), hidden))
            .collect();

        let run = |backend: Backend| {
            with_backend(backend, || {
                let mut l = Lstm::new(in_dim, hidden, 7);
                let cache = l.forward_sequence(&xs);
                let outputs: Vec<f32> = cache.outputs.iter().flatten().copied().collect();
                let gxs: Vec<f32> = l
                    .backward_sequence(&cache, &gouts)
                    .iter()
                    .flatten()
                    .copied()
                    .collect();
                let grads = grads_of(&mut l);
                (outputs, gxs, grads)
            })
        };
        let (y_f, gx_f, g_f) = run(Backend::Fast);
        let (y_r, gx_r, g_r) = run(Backend::Reference);
        prop_assert!(max_abs_diff(&y_f, &y_r) <= TOL, "hidden states diverged");
        prop_assert!(max_abs_diff(&gx_f, &gx_r) <= TOL, "input grads diverged");
        prop_assert!(max_abs_diff(&g_f, &g_r) <= TOL, "weight grads diverged");
    }
}
