//! Overload and shed semantics of the serve fabric (serve-fabric PR).
//!
//! The fabric has exactly two shed points and one refusal, and each is
//! made *deterministic* here with the throttle test hooks:
//!
//! * **ingress shed** — [`ShardThrottle::Freeze`] parks the worker
//!   (acknowledged before `set_throttle` returns), so the bounded
//!   ingress fills after exactly `ingress_capacity` pushes and every
//!   further push must report [`PushOutcome::Shed`];
//! * **engine queue shed** — [`ShardThrottle::HoldTicks`] lets the
//!   worker drain ingress into the per-session queue without ever
//!   ticking, so pushing past `queue_capacity` sheds the *oldest*
//!   events, visible in the shutdown stats per session;
//! * **admission refusal** — `FabricFull` only when every shard is at
//!   `max_sessions`; one shard full merely spills.
//!
//! Alongside the ground-truth counters (plain atomics inside the
//! fabric), each scenario checks that the `m2ai-obs` families tell the
//! same story — the whole point of per-shard instrumentation is that
//! an operator can trust it during an incident.
//!
//! The obs registry is process-global and cumulative, so every test
//! here takes deltas around its own traffic and the suite serialises
//! on one lock.

use m2ai::core::calibration::PhaseCalibrator;
use m2ai::core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai::core::network::{build_model, Architecture};
use m2ai::core::online::HealthState;
use m2ai::core::serve::ServeConfig;
use m2ai::fabric::{FabricConfig, FabricError, PushOutcome, ServeFabric, ShardThrottle};
use m2ai::nn::model::SequenceClassifier;
use m2ai::obs;
use std::sync::Mutex;

/// Sliding window length (small model keeps the suite fast).
const HISTORY: usize = 3;

/// Serialises the tests in this binary: they assert on deltas of
/// process-global metric families.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn builder() -> FrameBuilder {
    FrameBuilder::new(layout(), PhaseCalibrator::disabled(1, 4), 0.5)
}

fn model() -> SequenceClassifier {
    build_model(&layout(), 12, Architecture::CnnLstm, 7)
}

fn synth_frame(step: usize) -> Vec<f32> {
    let dim = layout().frame_dim();
    let mut state = (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..dim)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Sum of a gauge family across label children.
fn gauge_family_total(name: &str) -> i64 {
    obs::snapshot()
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match &m.value {
            obs::MetricValue::Gauge(v) => *v,
            _ => 0,
        })
        .sum()
}

#[test]
fn frozen_ingress_sheds_exactly_past_capacity_and_obs_agrees() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const INGRESS: usize = 4;
    const EXTRA: usize = 3;
    let shed_before = obs::counter_family_total("m2ai_fabric_ingress_shed_total");
    let preds_before = obs::counter_family_total("m2ai_fabric_predictions_total");
    let depth_before = gauge_family_total("m2ai_fabric_ingress_depth");

    let fabric = ServeFabric::new(
        model(),
        builder(),
        FabricConfig {
            shards: 2,
            vnodes: 16,
            ingress_capacity: INGRESS,
            serve: ServeConfig {
                max_sessions: 8,
                history_len: HISTORY,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
            supervision: Default::default(),
        },
    );
    // Open first (a sync round-trip with the worker), then freeze the
    // owning shard — the ack guarantees the worker consumes nothing
    // more, so the ingress arithmetic below is exact, not racy.
    let key = fabric.open_session().expect("capacity");
    let shard = fabric.shard_of(key).expect("open");
    fabric.set_throttle(shard, ShardThrottle::Freeze);

    for t in 0..INGRESS {
        assert_eq!(
            fabric
                .push_frame(key, t as f64 * 0.5, synth_frame(t), HealthState::Healthy)
                .expect("session open"),
            PushOutcome::Enqueued,
            "push {t} fits in the ingress bound"
        );
    }
    for t in INGRESS..INGRESS + EXTRA {
        assert_eq!(
            fabric
                .push_frame(key, t as f64 * 0.5, synth_frame(t), HealthState::Healthy)
                .expect("session open"),
            PushOutcome::Shed,
            "push {t} must shed at the full frozen ingress"
        );
    }

    // Ground truth: per-session and fabric-wide counters.
    assert_eq!(fabric.session_shed(key).expect("open"), EXTRA as u64);
    assert_eq!(fabric.ingress_shed(), EXTRA as u64);
    // Obs agreement while the fabric is live.
    assert_eq!(
        obs::counter_family_total("m2ai_fabric_ingress_shed_total") - shed_before,
        EXTRA as u64,
        "obs shed family must match ground truth"
    );

    // Thaw, drain, and check the survivors: the INGRESS enqueued
    // frames reach the engine, the shed ones never existed.
    fabric.set_throttle(shard, ShardThrottle::Run);
    let out = fabric.flush();
    assert_eq!(
        out.len(),
        INGRESS - (HISTORY - 1),
        "exactly the enqueued frames past the ring fill must emit"
    );
    assert!(out.iter().all(|p| p.session == key));
    assert_eq!(
        obs::counter_family_total("m2ai_fabric_predictions_total") - preds_before,
        out.len() as u64,
        "obs prediction family must match delivered predictions"
    );
    assert_eq!(
        gauge_family_total("m2ai_fabric_ingress_depth"),
        depth_before,
        "ingress depth gauge must return to its pre-test level"
    );

    let stats = fabric.shutdown();
    assert_eq!(stats.ingress_shed, EXTRA as u64);
    let emitted: u64 = stats.shards.iter().map(|s| s.predictions).sum();
    assert_eq!(emitted, out.len() as u64);
}

#[test]
fn held_engine_queue_sheds_oldest_and_reports_per_session() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const QUEUE: usize = 2;
    const PUSHES: usize = 6;
    let fabric = ServeFabric::new(
        model(),
        builder(),
        FabricConfig {
            shards: 1,
            vnodes: 16,
            ingress_capacity: 64,
            serve: ServeConfig {
                max_sessions: 4,
                history_len: HISTORY,
                queue_capacity: QUEUE,
                ..ServeConfig::default()
            },
            supervision: Default::default(),
        },
    );
    let key = fabric.open_session().expect("capacity");
    // HoldTicks: the worker keeps draining ingress into the engine's
    // per-session queue but never ticks, so the queue provably
    // overflows and sheds its *oldest* events.
    fabric.set_throttle(0, ShardThrottle::HoldTicks);
    for t in 0..PUSHES {
        loop {
            match fabric
                .push_frame(key, t as f64 * 0.5, synth_frame(t), HealthState::Healthy)
                .expect("session open")
            {
                PushOutcome::Enqueued => break,
                PushOutcome::Shed => std::thread::yield_now(),
            }
        }
    }
    // flush() overrides HoldTicks: it drains the 2 surviving events.
    // 2 frames < HISTORY, so the window never fills — nothing emits.
    let out = fabric.flush();
    assert!(
        out.is_empty(),
        "only {QUEUE} frames survived a {QUEUE}-deep queue; the window \
         cannot have filled"
    );
    let stats = fabric.shutdown();
    assert_eq!(stats.ingress_shed, 0, "ingress was never the bottleneck");
    assert_eq!(
        stats.shards[0].engine_shed,
        (PUSHES - QUEUE) as u64,
        "engine queue must shed exactly the overflow, oldest first"
    );
    assert_eq!(
        stats.shards[0].session_engine_shed,
        vec![(key.raw(), (PUSHES - QUEUE) as u64)],
        "per-session shed attribution must name the overloaded session"
    );
}

#[test]
fn admission_spills_before_refusing_and_obs_agrees() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rejections_before = obs::counter_family_total("m2ai_fabric_rejections_total");
    let spills_before = obs::counter_family_total("m2ai_fabric_spill_total");
    let sessions_before = gauge_family_total("m2ai_fabric_sessions");

    let fabric = ServeFabric::new(
        model(),
        builder(),
        FabricConfig {
            shards: 2,
            vnodes: 16,
            ingress_capacity: 16,
            serve: ServeConfig {
                max_sessions: 1, // 1 per shard => 2 fabric-wide
                history_len: HISTORY,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
            supervision: Default::default(),
        },
    );
    // Graceful degradation: both opens succeed even though one of them
    // must land on a non-preferred shard once its twin is taken.
    let a = fabric.open_session().expect("first shard has room");
    let b = fabric
        .open_session()
        .expect("degrades by spilling, not refusing");
    assert_ne!(
        fabric.shard_of(a).expect("open"),
        fabric.shard_of(b).expect("open"),
        "capacity 1 per shard forces distinct shards"
    );
    // Global refusal only with *every* shard full.
    assert_eq!(fabric.open_session(), Err(FabricError::FabricFull));
    assert_eq!(fabric.rejections(), 1);

    // Freeing one slot restores admission on exactly that shard.
    let freed_shard = fabric.shard_of(a).expect("open");
    fabric.close_session(a).expect("open");
    let c = fabric
        .open_session()
        .expect("released capacity is reusable");
    assert_eq!(fabric.shard_of(c).expect("open"), freed_shard);

    // Obs agreement: rejection and spill counters mirror ground truth,
    // and the sessions gauge nets out to the live population.
    assert_eq!(
        obs::counter_family_total("m2ai_fabric_rejections_total") - rejections_before,
        fabric.rejections(),
    );
    assert_eq!(
        obs::counter_family_total("m2ai_fabric_spill_total") - spills_before,
        fabric.spills(),
    );
    assert_eq!(
        gauge_family_total("m2ai_fabric_sessions") - sessions_before,
        fabric.sessions() as i64,
        "sessions gauge must equal the live session count"
    );
    fabric.close_session(b).expect("open");
    fabric.close_session(c).expect("open");
    assert_eq!(
        gauge_family_total("m2ai_fabric_sessions"),
        sessions_before,
        "sessions gauge must return to its pre-test level"
    );
    fabric.shutdown();
}
