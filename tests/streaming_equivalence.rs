//! Property-based equivalence between the streaming incremental
//! extractor and the batch `FrameBuilder` it replaces on the raw-ingest
//! serve path.
//!
//! For any faulted, shuffled reading stream and any refresh cadence,
//! sliding a `StreamExtractor` over overlapping windows must agree
//! with rebuilding every window from the sorted batch buffer:
//!
//! - **refresh windows are bitwise-identical** — the extractor runs the
//!   exact batch arithmetic there, so not a single mantissa bit may
//!   differ, on either kernel backend;
//! - **incremental windows stay inside a tight band** — they use the
//!   `f32` GEMM-lowered pseudospectrum scan over the rank-1-updated
//!   covariance, so they may differ from the `f64` batch path, but only
//!   within the documented tolerance.
//!
//! The kernel backend is process-global, so both backends are exercised
//! sequentially inside each property case rather than in separate
//! `#[test]`s that could race.

use m2ai::core::stream_extract::{StreamExtractor, StreamingExtract};
use m2ai::prelude::*;
use proptest::prelude::*;

/// Worst tolerated |streaming − batch| frame element on incremental
/// windows (refresh windows are exact). Matches the BENCH_extract gate.
const BAND: f64 = 1e-3;

/// Overlapping window starts: one hop per inventory round (0.1 s) over
/// the 2 s base stream, each window 0.4 s long.
const N_WINDOWS: usize = 12;
const HOP_S: f64 = 0.1;
const FRAME_S: f64 = 0.4;

proptest! {
    // Each case runs MUSIC over a dozen windows twice per backend;
    // keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streaming-vs-batch equivalence over random fault intensities,
    /// fault seeds, ingest orderings and refresh cadences.
    #[test]
    fn streaming_matches_batch_on_random_faulted_streams(
        intensity in 0.0f64..0.8,
        fault_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        refresh_every in 1u32..4,
    ) {
        let plan = FaultPlan::with_intensity(intensity, fault_seed);
        let mut readings = plan.apply(base_stream());
        // Out-of-order ingest: the extractor must not depend on arrival
        // order as long as every reading lands before its window closes.
        shuffle(&mut readings, shuffle_seed);
        let sorted = sorted_dedup(readings.clone());

        let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), FRAME_S);
        let cfg = StreamingExtract { refresh_every };

        let initial = m2ai::kernels::backend();
        for backend in [m2ai::kernels::Backend::Reference, m2ai::kernels::Backend::Fast] {
            m2ai::kernels::set_backend(backend);
            let mut ex = StreamExtractor::try_new(&builder, cfg)
                .expect("joint layout at an aligned frame length supports streaming");
            for r in &readings {
                ex.ingest(r);
            }
            for k in 0..N_WINDOWS {
                let t0 = k as f64 * HOP_S;
                let refresh = ex.next_is_refresh();
                let (sf, sq) = ex.extract(t0);
                let (bf, bq) = builder.build_frame_with_quality(&sorted, t0);
                prop_assert_eq!(sf.len(), bf.len());
                if refresh {
                    for (i, (a, b)) in sf.iter().zip(&bf).enumerate() {
                        prop_assert!(
                            a.to_bits() == b.to_bits(),
                            "refresh window {} ({:?}) diverged at element {}: {} vs {}",
                            k, backend, i, a, b
                        );
                    }
                } else {
                    for (i, (a, b)) in sf.iter().zip(&bf).enumerate() {
                        let diff = (f64::from(*a) - f64::from(*b)).abs();
                        prop_assert!(
                            diff <= BAND,
                            "incremental window {} ({:?}) element {}: |{} - {}| = {:e}",
                            k, backend, i, a, b, diff
                        );
                    }
                }
                // Coverage counts complete snapshot rounds, which both
                // paths track exactly, refresh or not.
                prop_assert!(sq == bq, "window {} ({:?}) quality mismatch", k, backend);
            }
        }
        m2ai::kernels::set_backend(initial);
    }

    /// `refresh_every = 1` degenerates to the exact batch path: every
    /// window bitwise, regardless of stream content or order.
    #[test]
    fn refresh_every_one_is_bitwise_everywhere(
        intensity in 0.0f64..0.9,
        fault_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let plan = FaultPlan::with_intensity(intensity, fault_seed);
        let mut readings = plan.apply(base_stream());
        shuffle(&mut readings, shuffle_seed);
        let sorted = sorted_dedup(readings.clone());

        let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), FRAME_S);
        let mut ex = StreamExtractor::try_new(&builder, StreamingExtract { refresh_every: 1 })
            .expect("joint layout at an aligned frame length supports streaming");
        for r in &readings {
            ex.ingest(r);
        }
        for k in 0..N_WINDOWS {
            let t0 = k as f64 * HOP_S;
            prop_assert!(ex.next_is_refresh());
            let (sf, sq) = ex.extract(t0);
            let (bf, bq) = builder.build_frame_with_quality(&sorted, t0);
            prop_assert_eq!(sf.len(), bf.len());
            for (a, b) in sf.iter().zip(&bf) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(sq, bq);
        }
    }
}

/// A fixed clean two-tag reader stream, built once (the reader
/// simulation is the expensive part; the properties randomise faults
/// and ordering on top of it).
fn base_stream() -> Vec<TagReading> {
    use std::sync::OnceLock;
    static STREAM: OnceLock<Vec<TagReading>> = OnceLock::new();
    STREAM
        .get_or_init(|| {
            let mut reader = Reader::new(Room::laboratory(), ReaderConfig::default(), 2);
            let scene = SceneSnapshot::with_tags(vec![
                m2ai::rfsim::geometry::Point2::new(2.0, 2.5),
                m2ai::rfsim::geometry::Point2::new(3.5, 2.5),
            ]);
            reader.run(|_| scene.clone(), 2.0)
        })
        .clone()
}

/// Deterministic Fisher–Yates driven by splitmix64, so shuffles are
/// reproducible from the proptest seed alone.
fn shuffle(readings: &mut [TagReading], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..readings.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        readings.swap(i, j);
    }
}

/// The batch reference buffer: sorted and exact-duplicate-deduplicated
/// with the same key `SessionWindow` uses on push, so both paths see
/// identical readings.
fn sorted_dedup(mut readings: Vec<TagReading>) -> Vec<TagReading> {
    readings.sort_by(|a, b| {
        (a.time_s, a.tag.0, a.antenna, a.channel)
            .partial_cmp(&(b.time_s, b.tag.0, b.antenna, b.channel))
            .expect("fault plan never produces NaN times")
    });
    readings.dedup_by_key(|r| (r.time_s, r.tag.0, r.antenna, r.channel));
    readings
}
