//! Single-shard oracle equivalence (serve-fabric PR).
//!
//! A `ServeFabric` with one shard is a bare `ServeEngine` behind a
//! thread and two queues — and the crate docs promise that wrapper is
//! *bitwise invisible*: per-session prediction streams out of the
//! fabric must equal the bare engine's, field for field, on both
//! kernel backends and on both ingestion paths (pre-extracted frames
//! and raw tag readings).
//!
//! Determinism is arranged, not hoped for: the shard is put in
//! [`ShardThrottle::HoldTicks`] while the whole trace is pushed, so
//! every event is queued before the first tick — exactly the state a
//! bare engine is in after pushing everything and before `drain()`.
//! The `flush()` barrier (which overrides `HoldTicks`) then ticks the
//! engine to empty the same way `drain()` does. Identical engine
//! state + identical tick schedule ⇒ identical micro-batches ⇒
//! bitwise-identical output.

use m2ai::core::calibration::PhaseCalibrator;
use m2ai::core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai::core::network::{build_model, Architecture};
use m2ai::core::online::HealthState;
use m2ai::core::serve::PushReport;
use m2ai::core::serve::{ServeConfig, ServeEngine, ServePrediction, SessionId};
use m2ai::fabric::{FabricConfig, PushOutcome, ServeFabric, SessionKey, ShardThrottle};
use m2ai::kernels::{self, Backend};
use m2ai::nn::model::SequenceClassifier;
use m2ai::rfsim::reader::{Reader, ReaderConfig};
use m2ai::rfsim::reading::TagReading;
use m2ai::rfsim::room::Room;
use m2ai::rfsim::scene::SceneSnapshot;
use std::sync::Mutex;

/// Sliding window length used throughout the suite.
const HISTORY: usize = 3;

/// Streams compared in the multi-session case.
const STREAMS: usize = 5;

/// Frames pushed per stream.
const STEPS: usize = 8;

/// Serialises tests that flip the process-global kernel backend.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Restores the fast backend when a test body exits (even on panic).
struct RestoreBackend;
impl Drop for RestoreBackend {
    fn drop(&mut self) {
        kernels::set_backend(Backend::Fast);
    }
}

fn layout() -> FrameLayout {
    FrameLayout::new(1, 4, FeatureMode::Joint)
}

fn builder() -> FrameBuilder {
    FrameBuilder::new(layout(), PhaseCalibrator::disabled(1, 4), 0.5)
}

fn model(arch: Architecture) -> SequenceClassifier {
    build_model(&layout(), 12, arch, 7)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        history_len: HISTORY,
        queue_capacity: 1024,
        ..ServeConfig::default()
    }
}

fn single_shard_config() -> FabricConfig {
    FabricConfig {
        shards: 1,
        vnodes: 16,
        ingress_capacity: 4096,
        serve: serve_config(),
        // Supervision stays ON here: the equivalence suite pins that
        // heartbeats and periodic checkpoints never perturb numerics.
        supervision: Default::default(),
    }
}

/// Deterministic pseudo-random frame payload in `(-1, 1)` (same
/// generator as the serve equivalence suite).
fn synth_frame(seed: u64, step: usize) -> Vec<f32> {
    let dim = layout().frame_dim();
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step as u64)
        | 1;
    (0..dim)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Pushes the whole trace into a held single-shard fabric, then
/// flushes; returns each stream's predictions keyed by open order.
fn run_fabric(m: &SequenceClassifier) -> (Vec<SessionKey>, Vec<Vec<ServePrediction>>) {
    let fabric = ServeFabric::new(m.clone(), builder(), single_shard_config());
    fabric.set_throttle(0, ShardThrottle::HoldTicks);
    let keys: Vec<SessionKey> = (0..STREAMS)
        .map(|_| fabric.open_session().expect("capacity"))
        .collect();
    for t in 0..STEPS {
        for (s, &key) in keys.iter().enumerate() {
            loop {
                match fabric
                    .push_frame(
                        key,
                        t as f64,
                        synth_frame(s as u64, t),
                        HealthState::Healthy,
                    )
                    .expect("session open")
                {
                    PushOutcome::Enqueued => break,
                    // Ingress full while the worker naps: retry, the
                    // worker drains even under HoldTicks.
                    PushOutcome::Shed => std::thread::yield_now(),
                }
            }
        }
    }
    let out = fabric.flush();
    let stats = fabric.shutdown();
    assert_eq!(stats.ingress_shed, 0, "retry loop re-pushed every shed");
    assert_eq!(stats.shards[0].engine_shed, 0, "queues sized for the trace");
    let streams = keys
        .iter()
        .map(|&k| {
            out.iter()
                .filter(|p| p.session == k)
                .map(|p| p.prediction.clone())
                .collect()
        })
        .collect();
    (keys, streams)
}

/// The bare-engine oracle over the same trace.
fn run_bare(m: &SequenceClassifier) -> (Vec<SessionId>, Vec<Vec<ServePrediction>>) {
    let mut eng = ServeEngine::new(m.clone(), builder(), serve_config());
    let ids: Vec<SessionId> = (0..STREAMS)
        .map(|_| eng.open_session().expect("capacity"))
        .collect();
    for t in 0..STEPS {
        for (s, &id) in ids.iter().enumerate() {
            eng.push_frame(id, t as f64, synth_frame(s as u64, t), HealthState::Healthy)
                .expect("queue capacity");
        }
    }
    let out = eng.drain();
    let streams = ids
        .iter()
        .map(|&id| out.iter().filter(|p| p.session == id).cloned().collect())
        .collect();
    (ids, streams)
}

/// Full-struct comparison of per-stream outputs: time, class,
/// probabilities, health, confidence — and even the engine-local
/// session ids, which a one-shard fabric allocates in the same order a
/// bare engine does.
fn assert_streams_identical(arch: Architecture, m: &SequenceClassifier) {
    let (_, fabric_streams) = run_fabric(m);
    let (_, bare_streams) = run_bare(m);
    for (s, (got, want)) in fabric_streams.iter().zip(&bare_streams).enumerate() {
        assert!(
            !want.is_empty(),
            "{arch:?}: stream {s} oracle emitted nothing — vacuous test"
        );
        assert_eq!(
            got, want,
            "{arch:?}: stream {s} must be bitwise identical to the bare engine"
        );
    }
}

#[test]
fn single_shard_matches_bare_engine_fast_backend() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreBackend;
    kernels::set_backend(Backend::Fast);
    for arch in [
        Architecture::CnnLstm,
        Architecture::CnnOnly,
        Architecture::LstmOnly,
    ] {
        assert_streams_identical(arch, &model(arch));
    }
}

#[test]
fn single_shard_matches_bare_engine_reference_backend() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreBackend;
    kernels::set_backend(Backend::Reference);
    assert_streams_identical(Architecture::CnnLstm, &model(Architecture::CnnLstm));
}

/// Simulated tag readings chunked the way a fabric caller would push
/// them (each chunk one ingress event / one `push` call).
fn reading_chunks() -> Vec<Vec<TagReading>> {
    let cfg = ReaderConfig {
        phase_noise_std: 0.02,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(Room::hall(), cfg, 1);
    let scene = SceneSnapshot::with_tags(vec![m2ai::rfsim::geometry::Point2::new(4.4, 3.2)]);
    let readings = reader.run(|_| scene.clone(), 6.0);
    assert!(!readings.is_empty(), "reader produced no trace");
    readings.chunks(40).map(<[TagReading]>::to_vec).collect()
}

#[test]
fn single_shard_matches_bare_engine_on_raw_readings() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = RestoreBackend;
    kernels::set_backend(Backend::Fast);
    let m = model(Architecture::CnnLstm);
    let chunks = reading_chunks();

    // Oracle: frame extraction inside a bare engine.
    let mut eng = ServeEngine::new(m.clone(), builder(), serve_config());
    let id = eng.open_session().expect("capacity");
    let mut bare_shed = 0usize;
    for c in &chunks {
        let PushReport { shed, .. } = eng.push(id, c).expect("session open");
        bare_shed += shed;
    }
    let want: Vec<ServePrediction> = eng.drain();
    assert_eq!(bare_shed, 0, "queue sized for the trace");
    assert!(!want.is_empty(), "trace too short to emit — vacuous test");

    // Fabric: same chunks through the shard worker's extraction.
    let fabric = ServeFabric::new(m.clone(), builder(), single_shard_config());
    fabric.set_throttle(0, ShardThrottle::HoldTicks);
    let key = fabric.open_session().expect("capacity");
    for c in &chunks {
        loop {
            match fabric.push(key, c.clone()).expect("session open") {
                PushOutcome::Enqueued => break,
                PushOutcome::Shed => std::thread::yield_now(),
            }
        }
    }
    let got: Vec<ServePrediction> = fabric.flush().into_iter().map(|p| p.prediction).collect();
    fabric.shutdown();
    assert_eq!(
        got, want,
        "raw-readings path must be bitwise identical to the bare engine"
    );
}
