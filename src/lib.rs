//! # M²AI — Multipath-aware Multi-object Activity Identification
//!
//! A full Rust reproduction of *"Multiple Object Activity Identification
//! using RFIDs: A Multipath-Aware Deep Learning Solution"* (ICDCS 2018),
//! including every substrate the paper's prototype relied on:
//!
//! | crate | role |
//! |---|---|
//! | [`dsp`] | FFT, Hermitian eigen, MUSIC pseudospectrum, periodogram |
//! | [`rfsim`] | physics-based UHF RFID reader/tag/multipath simulator |
//! | [`motion`] | volunteers, gestures, the 12 activity scenarios |
//! | [`nn`] | from-scratch CNN/LSTM engine with BPTT and SGD |
//! | [`baselines`] | the ten classical classifiers of Fig. 9 + HMM |
//! | [`core`] | calibration, spectrum frames, datasets, the pipeline |
//!
//! # Quickstart
//!
//! ```no_run
//! use m2ai::prelude::*;
//!
//! // One experimental condition = one config.
//! let mut config = ExperimentConfig::paper_default();
//! config.samples_per_class = 8; // small demo
//!
//! // Simulate recordings and build spectrum-frame sequences.
//! let bundle = generate_dataset(&config);
//!
//! // Train the CNN+LSTM engine with the paper's 80/20 protocol.
//! let outcome = train_m2ai(&bundle, &TrainOptions::fast());
//! println!("test accuracy {:.1}%", 100.0 * outcome.test_accuracy);
//! println!("{}", outcome.confusion);
//! ```
//!
//! See `examples/` for runnable scenarios and
//! `cargo run --release -p m2ai-bench --bin experiments -- all` for the
//! full figure-by-figure reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use m2ai_baselines as baselines;
pub use m2ai_core as core;
pub use m2ai_dsp as dsp;
pub use m2ai_kernels as kernels;
pub use m2ai_motion as motion;
pub use m2ai_nn as nn;
pub use m2ai_obs as obs;
pub use m2ai_par as par;
pub use m2ai_rfsim as rfsim;
pub use m2ai_serve_fabric as fabric;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use m2ai_core::calibration::PhaseCalibrator;
    pub use m2ai_core::dataset::{generate_dataset, DatasetBundle, ExperimentConfig, RoomKind};
    pub use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
    pub use m2ai_core::network::{build_model, Architecture};
    pub use m2ai_core::online::{HealthConfig, HealthState, OnlineIdentifier, OnlinePrediction};
    pub use m2ai_core::pipeline::{evaluate_baselines, train_m2ai, TrainOptions, TrainOutcome};
    pub use m2ai_motion::activity::{catalog, ActivityId, ActivityScenario};
    pub use m2ai_motion::scene::ActivityScene;
    pub use m2ai_motion::volunteer::Volunteer;
    pub use m2ai_nn::metrics::ConfusionMatrix;
    pub use m2ai_rfsim::fault::FaultPlan;
    pub use m2ai_rfsim::reader::{Reader, ReaderConfig};
    pub use m2ai_rfsim::reading::{TagId, TagReading};
    pub use m2ai_rfsim::room::Room;
    pub use m2ai_rfsim::scene::SceneSnapshot;
    pub use m2ai_serve_fabric::{FabricConfig, FabricPrediction, ServeFabric, SessionKey};
}
