//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! MUSIC (Eq. 10–12 of the paper) needs the full eigensystem of the
//! spatial correlation matrix `R = E{r rᴴ}`, a small (N×N, N = number of
//! antennas) Hermitian positive semi-definite matrix. The cyclic Jacobi
//! method is simple, unconditionally stable and more than fast enough at
//! these sizes; it also delivers orthonormal eigenvectors to machine
//! precision, which the signal/noise subspace split relies on.

use crate::{CMatrix, Complex, DspError};

/// Result of a Hermitian eigendecomposition.
///
/// Eigenvalues are real (Hermitian input), sorted in **descending**
/// order; `vectors.col(k)` is the unit eigenvector for `values[k]`, so
/// the first `M` columns span the MUSIC *signal subspace* and the rest
/// the *noise subspace* (Eq. 11).
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMatrix,
}

impl EigenDecomposition {
    /// Returns the eigenvectors spanning the noise subspace, i.e. the
    /// columns associated with the `n - signal_count` smallest
    /// eigenvalues, as an `n × (n - signal_count)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `signal_count > n`.
    pub fn noise_subspace(&self, signal_count: usize) -> CMatrix {
        let n = self.values.len();
        assert!(signal_count <= n, "signal_count exceeds dimension");
        CMatrix::from_fn(n, n - signal_count, |i, j| {
            self.vectors[(i, signal_count + j)]
        })
    }
}

/// Default relative off-diagonal tolerance for [`hermitian_eigen`].
pub const DEFAULT_TOL: f64 = 1e-12;

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// # Errors
///
/// * [`DspError::NotSquare`] if `a` is not square.
/// * [`DspError::InvalidParameter`] if `a` is not Hermitian (within
///   `1e-8` relative tolerance) or contains non-finite entries.
/// * [`DspError::NoConvergence`] if the sweep budget is exhausted
///   (does not happen for well-formed input).
///
/// # Example
///
/// ```
/// use m2ai_dsp::{CMatrix, Complex, eigen::hermitian_eigen};
/// let a = CMatrix::from_rows(2, 2, &[
///     Complex::new(2.0, 0.0), Complex::new(0.0, 1.0),
///     Complex::new(0.0, -1.0), Complex::new(2.0, 0.0),
/// ]).unwrap();
/// let e = hermitian_eigen(&a).unwrap();
/// assert!((e.values[0] - 3.0).abs() < 1e-9);
/// assert!((e.values[1] - 1.0).abs() < 1e-9);
/// ```
pub fn hermitian_eigen(a: &CMatrix) -> Result<EigenDecomposition, DspError> {
    if !a.is_square() {
        return Err(DspError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if a.as_slice().iter().any(|z| !z.is_finite()) {
        return Err(DspError::InvalidParameter("matrix has non-finite entries"));
    }
    if !a.is_hermitian(1e-8) {
        return Err(DspError::InvalidParameter("matrix is not Hermitian"));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(EigenDecomposition {
            values: Vec::new(),
            vectors: CMatrix::zeros(0, 0),
        });
    }

    let mut m = a.clone();
    let mut v = CMatrix::identity(n);
    let scale = m.frobenius_norm().max(1e-300);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        if m.off_diagonal_energy().sqrt() <= DEFAULT_TOL * scale {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                jacobi_rotate(&mut m, &mut v, p, q);
            }
        }
    }
    if !converged && m.off_diagonal_energy().sqrt() > 1e-8 * scale {
        return Err(DspError::NoConvergence {
            iterations: MAX_SWEEPS,
        });
    }

    // Collect (eigenvalue, column) pairs and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = CMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Ok(EigenDecomposition { values, vectors })
}

/// One two-sided Jacobi rotation annihilating `m[(p, q)]`.
fn jacobi_rotate(m: &mut CMatrix, v: &mut CMatrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    let r = apq.norm();
    if r < 1e-300 {
        return;
    }
    let phi = apq.arg();
    let app = m[(p, p)].re;
    let aqq = m[(q, q)].re;
    // Real rotation angle after phasing out e^{iφ}.
    let theta = 0.5 * (2.0 * r).atan2(app - aqq);
    let (s, c) = theta.sin_cos();
    let e_m = Complex::cis(-phi); // e^{-iφ}
    let e_p = Complex::cis(phi); // e^{+iφ}

    let n = m.rows();
    // Column update: B = M · J with
    //   J[p,p]=c, J[p,q]=-s, J[q,p]=e^{-iφ}s, J[q,q]=e^{-iφ}c
    for i in 0..n {
        let mip = m[(i, p)];
        let miq = m[(i, q)];
        m[(i, p)] = mip.scale(c) + miq * e_m.scale(s);
        m[(i, q)] = -mip.scale(s) + miq * e_m.scale(c);
    }
    // Row update: A' = Jᴴ · B
    for j in 0..n {
        let mpj = m[(p, j)];
        let mqj = m[(q, j)];
        m[(p, j)] = mpj.scale(c) + mqj * e_p.scale(s);
        m[(q, j)] = -mpj.scale(s) + mqj * e_p.scale(c);
    }
    // Clean up rounding on the annihilated pair and enforce real diagonal.
    m[(p, q)] = Complex::ZERO;
    m[(q, p)] = Complex::ZERO;
    m[(p, p)] = Complex::new(m[(p, p)].re, 0.0);
    m[(q, q)] = Complex::new(m[(q, q)].re, 0.0);
    // Accumulate eigenvectors: V := V · J (same column update).
    for i in 0..v.rows() {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = vip.scale(c) + viq * e_m.scale(s);
        v[(i, q)] = -vip.scale(s) + viq * e_m.scale(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// ‖A·V − V·diag(λ)‖_F
    fn residual(a: &CMatrix, e: &EigenDecomposition) -> f64 {
        let av = a.mul(&e.vectors).unwrap();
        let mut lam = CMatrix::zeros(e.values.len(), e.values.len());
        for (i, &l) in e.values.iter().enumerate() {
            lam[(i, i)] = c(l, 0.0);
        }
        let vl = e.vectors.mul(&lam).unwrap();
        let mut s = 0.0;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                s += (av[(i, j)] - vl[(i, j)]).norm_sqr();
            }
        }
        s.sqrt()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = c(1.0, 0.0);
        a[(1, 1)] = c(5.0, 0.0);
        a[(2, 2)] = c(3.0, 0.0);
        let e = hermitian_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2_complex() {
        // [[2, i], [-i, 2]] has eigenvalues 3 and 1.
        let a = CMatrix::from_rows(2, 2, &[c(2.0, 0.0), c(0.0, 1.0), c(0.0, -1.0), c(2.0, 0.0)])
            .unwrap();
        let e = hermitian_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!(residual(&a, &e) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = CMatrix::from_rows(
            3,
            3,
            &[
                c(4.0, 0.0),
                c(1.0, 2.0),
                c(0.5, -1.0),
                c(1.0, -2.0),
                c(3.0, 0.0),
                c(0.0, 1.5),
                c(0.5, 1.0),
                c(0.0, -1.5),
                c(5.0, 0.0),
            ],
        )
        .unwrap();
        let e = hermitian_eigen(&a).unwrap();
        let vhv = e.vectors.hermitian_transpose().mul(&e.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vhv[(i, j)] - c(expect, 0.0)).norm() < 1e-10);
            }
        }
        assert!(residual(&a, &e) < 1e-9);
    }

    #[test]
    fn reconstructs_input() {
        let a = CMatrix::from_rows(2, 2, &[c(1.0, 0.0), c(0.3, 0.4), c(0.3, -0.4), c(2.0, 0.0)])
            .unwrap();
        let e = hermitian_eigen(&a).unwrap();
        // A = V Λ Vᴴ
        let mut lam = CMatrix::zeros(2, 2);
        for (i, &l) in e.values.iter().enumerate() {
            lam[(i, i)] = c(l, 0.0);
        }
        let rec = e
            .vectors
            .mul(&lam)
            .unwrap()
            .mul(&e.vectors.hermitian_transpose())
            .unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((rec[(i, j)] - a[(i, j)]).norm() < 1e-10);
            }
        }
    }

    #[test]
    fn rank_one_outer_product() {
        // x·xᴴ has one eigenvalue ‖x‖² and the rest zero.
        let x = [c(1.0, 1.0), c(2.0, -1.0), c(0.0, 3.0), c(-1.0, 0.5)];
        let a = CMatrix::outer(&x, &x);
        let e = hermitian_eigen(&a).unwrap();
        let norm2: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        assert!((e.values[0] - norm2).abs() < 1e-9);
        for &v in &e.values[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn noise_subspace_is_orthogonal_to_signal() {
        let x = [c(1.0, 0.2), c(0.5, -0.7), c(2.0, 0.0)];
        let a = CMatrix::outer(&x, &x);
        let e = hermitian_eigen(&a).unwrap();
        let noise = e.noise_subspace(1);
        assert_eq!((noise.rows(), noise.cols()), (3, 2));
        // a(θ)=x must be orthogonal to the noise subspace.
        for j in 0..noise.cols() {
            let dot: Complex = (0..3).map(|i| x[i].conj() * noise[(i, j)]).sum();
            assert!(dot.norm() < 1e-9);
        }
    }

    #[test]
    fn rejects_non_square_and_non_hermitian() {
        assert!(matches!(
            hermitian_eigen(&CMatrix::zeros(2, 3)),
            Err(DspError::NotSquare { .. })
        ));
        let bad = CMatrix::from_rows(2, 2, &[c(1.0, 0.0), c(1.0, 0.0), c(9.0, 0.0), c(1.0, 0.0)])
            .unwrap();
        assert!(matches!(
            hermitian_eigen(&bad),
            Err(DspError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = CMatrix::identity(2);
        a[(0, 0)] = c(f64::NAN, 0.0);
        assert!(hermitian_eigen(&a).is_err());
    }

    #[test]
    fn empty_matrix_ok() {
        let e = hermitian_eigen(&CMatrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }
}
