//! Fast Fourier transforms.
//!
//! Two algorithms are provided behind the single entry points [`fft`] and
//! [`ifft`]:
//!
//! * an in-place, iterative radix-2 Cooley–Tukey transform for
//!   power-of-two lengths;
//! * Bluestein's chirp-z algorithm for every other length, built on top of
//!   the radix-2 kernel, so arbitrary-length transforms cost
//!   `O(n log n)` as well.
//!
//! The convention is the unnormalised forward DFT
//! `X[k] = Σ_t x[t]·e^{-2πi·kt/n}` with the inverse carrying the `1/n`
//! factor, matching Eq. (16) of the M2AI paper.

use crate::Complex;

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Computes the forward DFT of `input`, for any length.
///
/// Power-of-two lengths use the radix-2 kernel; other lengths use
/// Bluestein's algorithm. An empty input yields an empty output.
///
/// # Example
///
/// ```
/// use m2ai_dsp::{Complex, fft::{fft, ifft}};
/// let x: Vec<Complex> = (0..10).map(|t| Complex::new(t as f64, 0.0)).collect();
/// let back = ifft(&fft(&x));
/// for (a, b) in x.iter().zip(&back) {
///     assert!((*a - *b).norm() < 1e-9);
/// }
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n <= 1 {
        return input.to_vec();
    }
    if is_pow2(n) {
        let mut buf = input.to_vec();
        fft_pow2_in_place(&mut buf, false);
        buf
    } else {
        bluestein(input, false)
    }
}

/// Computes the inverse DFT of `input` (including the `1/n` scaling).
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n <= 1 {
        return input.to_vec();
    }
    let mut out = if is_pow2(n) {
        let mut buf = input.to_vec();
        fft_pow2_in_place(&mut buf, true);
        buf
    } else {
        bluestein(input, true)
    };
    let scale = 1.0 / n as f64;
    for z in &mut out {
        *z = z.scale(scale);
    }
    out
}

/// Computes the forward DFT of `buf`, reusing its storage.
///
/// Bitwise identical to [`fft`]; exists so hot paths can keep one
/// buffer alive across calls. Power-of-two lengths transform fully in
/// place; other lengths fall back to the (allocating) Bluestein chirp
/// transform and replace the buffer's contents.
pub fn fft_in_buffer(buf: &mut Vec<Complex>) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if is_pow2(n) {
        fft_pow2_in_place(buf, false);
    } else {
        *buf = bluestein(buf, false);
    }
}

/// Computes the forward DFT of a real-valued signal.
///
/// Convenience wrapper that promotes to complex; returns all `n` bins.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let x: Vec<Complex> = input.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft(&x)
}

/// In-place radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_pow2_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(
        is_pow2(n),
        "fft_pow2_in_place requires a power-of-two length"
    );
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein's chirp-z transform for arbitrary lengths.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[k] = e^{sign * i * π * k^2 / n}
    let mut chirp = Vec::with_capacity(n);
    for k in 0..n {
        // k^2 mod 2n avoids precision loss for large k.
        let k2 = (k as u64 * k as u64) % (2 * n as u64);
        chirp.push(Complex::cis(
            sign * std::f64::consts::PI * k2 as f64 / n as f64,
        ));
    }
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_pow2_in_place(&mut a, false);
    fft_pow2_in_place(&mut b, false);
    for k in 0..m {
        a[k] *= b[k];
    }
    fft_pow2_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].scale(scale) * chirp[k]).collect()
}

/// Shifts the zero-frequency bin to the centre of the spectrum.
///
/// Useful when plotting two-sided spectra.
pub fn fftshift<T: Clone>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::cis(-2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64)
                    })
                    .sum()
            })
            .collect()
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft_pow2() {
        let x: Vec<Complex> = (0..16)
            .map(|t| Complex::new((t as f64).sin(), (t as f64 * 0.3).cos()))
            .collect();
        assert!(max_err(&fft(&x), &naive_dft(&x)) < 1e-9);
    }

    #[test]
    fn matches_naive_dft_non_pow2() {
        for n in [3usize, 5, 6, 7, 12, 15, 50, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|t| Complex::new((t as f64 * 1.7).sin(), (t as f64 * 0.9).cos()))
                .collect();
            assert!(
                max_err(&fft(&x), &naive_dft(&x)) < 1e-8,
                "length {n} mismatch"
            );
        }
    }

    #[test]
    fn roundtrip_all_lengths() {
        for n in 1..=33 {
            let x: Vec<Complex> = (0..n)
                .map(|t| Complex::new(t as f64, (n - t) as f64))
                .collect();
            let back = ifft(&fft(&x));
            assert!(max_err(&x, &back) < 1e-8, "length {n} roundtrip");
        }
    }

    #[test]
    fn tone_lands_in_single_bin() {
        let n = 128;
        let f = 9;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * (f * t) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, z) in spec.iter().enumerate() {
            if k == f {
                assert!((z.norm() - n as f64).abs() < 1e-8);
            } else {
                assert!(z.norm() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        // Eq. (16) context: the transform is unitary up to 1/n.
        let n = 48;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::new((t as f64 * 0.11).cos(), (t as f64 * 0.07).sin()))
            .collect();
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn linearity() {
        let n = 20;
        let a: Vec<Complex> = (0..n).map(|t| Complex::new(t as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..n).map(|t| Complex::new(0.2, t as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fs = fft(&sum);
        let expect: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fs, &expect) < 1e-9);
    }

    #[test]
    fn real_input_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..32).map(|t| (t as f64 * 0.37).sin()).collect();
        let spec = fft_real(&x);
        let n = spec.len();
        for k in 1..n {
            assert!((spec[k] - spec[n - k].conj()).norm() < 1e-9);
        }
    }

    #[test]
    fn fftshift_centres_dc() {
        let v = vec![0, 1, 2, 3, 4, 5];
        assert_eq!(fftshift(&v), vec![3, 4, 5, 0, 1, 2]);
        let odd = vec![0, 1, 2, 3, 4];
        assert_eq!(fftshift(&odd), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft(&[]).is_empty());
        let one = [Complex::new(7.0, -1.0)];
        assert_eq!(fft(&one), one.to_vec());
        assert_eq!(ifft(&one), one.to_vec());
    }
}
