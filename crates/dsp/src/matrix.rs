//! Dense complex matrices (row-major), sized for antenna-array work.
//!
//! MUSIC on a 4-element array only ever touches tiny matrices, so this is
//! a simple implementation with no blocking or SIMD; clarity and
//! correctness win. What *does* matter at frame rate is allocation
//! churn, so the hot accumulation paths have in-place variants
//! ([`CMatrix::add_in_place`], [`CMatrix::scale_in_place`],
//! [`CMatrix::resize_to`], [`CMatrix::copy_from`]) that let callers
//! reuse one matrix across thousands of windows.

use crate::{Complex, DspError};

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use m2ai_dsp::{CMatrix, Complex};
/// let eye = CMatrix::identity(3);
/// let v = CMatrix::from_fn(3, 1, |i, _| Complex::new(i as f64, 0.0));
/// let w = eye.mul(&v).unwrap();
/// assert_eq!(w[(2, 0)], Complex::new(2.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex]) -> Result<Self, DspError> {
        if data.len() != rows * cols {
            return Err(DspError::DimensionMismatch(rows * cols, data.len()));
        }
        Ok(CMatrix {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Builds a column vector from a slice.
    pub fn col_vector(data: &[Complex]) -> Self {
        CMatrix {
            rows: data.len(),
            cols: 1,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Extracts row `i` as a vector of complex values.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> Vec<Complex> {
        assert!(i < self.rows, "row index out of bounds");
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// Extracts column `j` as a vector of complex values.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<Complex> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Conjugate (Hermitian) transpose `Aᴴ`.
    pub fn hermitian_transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose `Aᵀ` (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::DimensionMismatch`] if inner dimensions differ.
    pub fn mul(&self, rhs: &CMatrix) -> Result<CMatrix, DspError> {
        if self.cols != rhs.rows {
            return Err(DspError::DimensionMismatch(self.cols, rhs.rows));
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &CMatrix) -> Result<CMatrix, DspError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(DspError::DimensionMismatch(
                self.rows * self.cols,
                rhs.rows * rhs.cols,
            ));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a + *b)
            .collect();
        Ok(CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * k).collect(),
        }
    }

    /// Scales every entry in place — same arithmetic as
    /// [`CMatrix::scale`], no allocation.
    pub fn scale_in_place(&mut self, k: Complex) {
        for z in &mut self.data {
            *z *= k;
        }
    }

    /// Adds `rhs` into `self` element-wise (`self += rhs`) — same
    /// arithmetic as [`CMatrix::add`], no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::DimensionMismatch`] on shape mismatch.
    pub fn add_in_place(&mut self, rhs: &CMatrix) -> Result<(), DspError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(DspError::DimensionMismatch(
                self.rows * self.cols,
                rhs.rows * rhs.cols,
            ));
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
        Ok(())
    }

    /// Reshapes `self` to `rows × cols` and zeroes every entry,
    /// reusing the existing storage when it is large enough.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex::ZERO);
    }

    /// Makes `self` an exact copy of `other`, reusing storage.
    pub fn copy_from(&mut self, other: &CMatrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Outer product `x · yᴴ` of two vectors (as column matrices).
    pub fn outer(x: &[Complex], y: &[Complex]) -> CMatrix {
        CMatrix::from_fn(x.len(), y.len(), |i, j| x[i] * y[j].conj())
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Sum of the squared magnitudes of all off-diagonal entries.
    ///
    /// The Jacobi eigensolver drives this quantity to zero.
    pub fn off_diagonal_energy(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    s += self[(i, j)].norm_sqr();
                }
            }
        }
        s
    }

    /// `true` if `‖A - Aᴴ‖ ≤ tol · ‖A‖` (Hermitian within tolerance).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let scale = self.frobenius_norm().max(1e-300);
        for i in 0..self.rows {
            for j in i..self.cols {
                if (self[(i, j)] - self[(j, i)].conj()).norm() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// Trace (sum of diagonal entries). Requires a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotSquare`] for non-square input.
    pub fn trace(&self) -> Result<Complex, DspError> {
        if !self.is_square() {
            return Err(DspError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for CMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>24}", self[(i, j)].to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = CMatrix::from_fn(3, 3, |i, j| c((i + j) as f64, (i * j) as f64));
        let i3 = CMatrix::identity(3);
        assert_eq!(a.mul(&i3).unwrap(), a);
        assert_eq!(i3.mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_dimension_check() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert_eq!(a.mul(&b), Err(DspError::DimensionMismatch(3, 2)));
    }

    #[test]
    fn hermitian_transpose_involution() {
        let a = CMatrix::from_fn(2, 4, |i, j| c(i as f64, j as f64));
        assert_eq!(a.hermitian_transpose().hermitian_transpose(), a);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let x = [c(1.0, 1.0), c(2.0, 0.0)];
        let y = [c(0.0, 1.0), c(1.0, 0.0), c(1.0, 1.0)];
        let o = CMatrix::outer(&x, &y);
        assert_eq!((o.rows(), o.cols()), (2, 3));
        assert_eq!(o[(0, 0)], x[0] * y[0].conj());
        assert_eq!(o[(1, 2)], x[1] * y[2].conj());
    }

    #[test]
    fn outer_product_is_hermitian_when_self() {
        let x = [c(1.0, 2.0), c(-0.5, 0.3), c(0.1, -0.9)];
        let o = CMatrix::outer(&x, &x);
        assert!(o.is_hermitian(1e-12));
    }

    #[test]
    fn trace_and_norm() {
        let a = CMatrix::from_rows(2, 2, &[c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0), c(4.0, 0.0)])
            .unwrap();
        assert_eq!(a.trace().unwrap(), c(5.0, 0.0));
        assert!((a.frobenius_norm() - (30.0f64).sqrt()).abs() < 1e-12);
        let rect = CMatrix::zeros(2, 3);
        assert!(rect.trace().is_err());
    }

    #[test]
    fn row_col_extraction() {
        let a = CMatrix::from_fn(3, 2, |i, j| c(i as f64, j as f64));
        assert_eq!(a.row(1), vec![c(1.0, 0.0), c(1.0, 1.0)]);
        assert_eq!(a.col(1), vec![c(0.0, 1.0), c(1.0, 1.0), c(2.0, 1.0)]);
    }

    #[test]
    fn from_rows_rejects_bad_length() {
        assert!(CMatrix::from_rows(2, 2, &[Complex::ZERO; 3]).is_err());
    }

    #[test]
    fn off_diagonal_energy_zero_for_diagonal() {
        let mut d = CMatrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = c(i as f64 + 1.0, 0.0);
        }
        assert_eq!(d.off_diagonal_energy(), 0.0);
    }

    #[test]
    fn display_has_rows() {
        let a = CMatrix::identity(2);
        let s = a.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
