//! Periodogram power-spectral-density estimation (Eq. 13–16).
//!
//! The periodogram estimator `φ_p(ω) = (1/N)|Σ_t y(t)·e^{-jωt}|²` is
//! computed with the FFT at the canonical frequency samples
//! `ω_k = 2πk/N` (Eq. 15). Welch's method (segment averaging with
//! overlap) is provided to trade resolution for variance, and a
//! band-power helper summarises the per-antenna power that forms the
//! paper's `n × N` periodogram frame.

use crate::fft::fft_in_buffer;
use crate::window::Window;
use crate::{Complex, DspError};
use std::cell::RefCell;

/// Per-thread scratch for [`periodogram_into`]: the FFT work buffer and
/// a one-entry taper cache (window coefficients plus their power
/// normaliser, keyed by `(window, n)`). Periodograms are computed at a
/// handful of fixed lengths per pipeline, so a last-used cache hits
/// almost always; the cached values are recomputed by the very same
/// calls on a miss, keeping results bitwise identical.
#[derive(Default)]
struct PeriodogramScratch {
    taper: Option<(Window, usize, Vec<f64>, f64)>,
    buf: Vec<Complex>,
}

thread_local! {
    static PERIODOGRAM_SCRATCH: RefCell<PeriodogramScratch> =
        RefCell::new(PeriodogramScratch::default());
}

/// A one-sided summary of the PSD of a complex record.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// Normalised frequencies `ω_k/2π = k/N` for each bin.
    pub freqs: Vec<f64>,
    /// Power density at each bin (linear scale).
    pub power: Vec<f64>,
}

impl Psd {
    /// Total power: `Σ power / N`, equal to the mean squared magnitude
    /// of the record by Parseval's theorem.
    pub fn total_power(&self) -> f64 {
        if self.power.is_empty() {
            return 0.0;
        }
        self.power.iter().sum::<f64>() / self.power.len() as f64
    }

    /// Index and value of the strongest bin.
    ///
    /// Returns `None` for an empty spectrum.
    pub fn dominant(&self) -> Option<(usize, f64)> {
        self.power
            .iter()
            .cloned()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite power"))
    }
}

/// Computes the raw (single-record) periodogram of a complex sequence.
///
/// With `Window::Rect` this is exactly Eq. (14) evaluated at the
/// frequency samples of Eq. (15); other windows apply the taper and a
/// power-preserving normalisation.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn periodogram(data: &[Complex], window: Window) -> Result<Psd, DspError> {
    let mut out = Psd {
        freqs: Vec::new(),
        power: Vec::new(),
    };
    periodogram_into(data, window, &mut out)?;
    Ok(out)
}

/// In-place variant of [`periodogram`]: writes into `out`, reusing its
/// `freqs`/`power` storage and a per-thread FFT buffer and taper cache,
/// so steady-state callers allocate nothing (power-of-two lengths) per
/// record. Bitwise identical to [`periodogram`]. On error, `out` is
/// untouched.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn periodogram_into(data: &[Complex], window: Window, out: &mut Psd) -> Result<(), DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = data.len();
    PERIODOGRAM_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let scratch = &mut *scratch;
        let hit = matches!(&scratch.taper, Some((w, len, _, _)) if *w == window && *len == n);
        if !hit {
            let coeffs = window.coefficients(n);
            let norm = window.power(n).max(1e-300);
            scratch.taper = Some((window, n, coeffs, norm));
        }
        let (_, _, coeffs, norm) = scratch.taper.as_ref().expect("taper just cached");
        scratch.buf.clear();
        scratch
            .buf
            .extend(data.iter().zip(coeffs).map(|(z, &wi)| z.scale(wi)));
        fft_in_buffer(&mut scratch.buf);
        out.power.clear();
        out.power
            .extend(scratch.buf.iter().map(|z| z.norm_sqr() / norm));
        out.freqs.clear();
        out.freqs.extend((0..n).map(|k| k as f64 / n as f64));
    });
    Ok(())
}

/// Computes the periodogram of a real-valued sequence.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn periodogram_real(data: &[f64], window: Window) -> Result<Psd, DspError> {
    let complex: Vec<Complex> = data.iter().map(|&v| Complex::new(v, 0.0)).collect();
    periodogram(&complex, window)
}

/// Welch's averaged periodogram.
///
/// Splits `data` into segments of `segment_len` with `overlap` samples
/// shared between consecutive segments, computes a windowed periodogram
/// per segment and averages.
///
/// # Errors
///
/// * [`DspError::EmptyInput`] if `data` is empty;
/// * [`DspError::InvalidParameter`] if `segment_len == 0`,
///   `segment_len > data.len()`, or `overlap >= segment_len`.
pub fn welch(
    data: &[Complex],
    segment_len: usize,
    overlap: usize,
    window: Window,
) -> Result<Psd, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if segment_len == 0 || segment_len > data.len() {
        return Err(DspError::InvalidParameter(
            "segment_len must be in 1..=data.len()",
        ));
    }
    if overlap >= segment_len {
        return Err(DspError::InvalidParameter("overlap must be < segment_len"));
    }
    let hop = segment_len - overlap;
    let mut acc = vec![0.0f64; segment_len];
    let mut psd = Psd {
        freqs: Vec::new(),
        power: Vec::new(),
    };
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= data.len() {
        periodogram_into(&data[start..start + segment_len], window, &mut psd)?;
        for (a, p) in acc.iter_mut().zip(&psd.power) {
            *a += *p;
        }
        count += 1;
        start += hop;
    }
    let freqs: Vec<f64> = (0..segment_len)
        .map(|k| k as f64 / segment_len as f64)
        .collect();
    let power = acc.iter().map(|a| a / count as f64).collect();
    Ok(Psd { freqs, power })
}

/// Mean power of a complex record: `(1/N)·Σ|y(t)|²`.
///
/// This is the per-antenna scalar the paper's periodogram frame
/// (`n_tags × n_antennas`, Fig. 5(d)) stores; by Parseval it equals the
/// average of the periodogram bins.
pub fn mean_power(data: &[Complex]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().map(|z| z.norm_sqr()).sum::<f64>() / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, cycles: usize, amp: f64) -> Vec<Complex> {
        (0..n)
            .map(|t| {
                Complex::from_polar(
                    amp,
                    2.0 * std::f64::consts::PI * (cycles * t) as f64 / n as f64,
                )
            })
            .collect()
    }

    #[test]
    fn tone_dominates_correct_bin() {
        let x = tone(64, 7, 2.0);
        let psd = periodogram(&x, Window::Rect).unwrap();
        assert_eq!(psd.dominant().unwrap().0, 7);
    }

    #[test]
    fn parseval_total_power() {
        let x = tone(32, 3, 1.5);
        let psd = periodogram(&x, Window::Rect).unwrap();
        let time_power = mean_power(&x);
        assert!((psd.total_power() - time_power).abs() < 1e-9);
    }

    #[test]
    fn windowing_preserves_tone_power_estimate_order() {
        // A Hann-windowed tone still dominates its bin neighbourhood.
        let x = tone(128, 20, 1.0);
        let psd = periodogram(&x, Window::Hann).unwrap();
        let (k, _) = psd.dominant().unwrap();
        assert!((k as i64 - 20).unsigned_abs() <= 1);
    }

    #[test]
    fn welch_reduces_variance() {
        // White-ish noise via LCG; Welch average should be flatter than
        // the raw periodogram (smaller relative spread).
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let data: Vec<Complex> = (0..512).map(|_| Complex::new(next(), next())).collect();
        let raw = periodogram(&data, Window::Rect).unwrap();
        let avg = welch(&data, 64, 32, Window::Rect).unwrap();
        let spread = |p: &[f64]| {
            let m = p.iter().sum::<f64>() / p.len() as f64;
            p.iter().map(|v| (v - m).powi(2)).sum::<f64>().sqrt() / m
        };
        assert!(spread(&avg.power) < spread(&raw.power));
    }

    #[test]
    fn welch_parameter_validation() {
        let data = vec![Complex::ONE; 16];
        assert!(welch(&data, 0, 0, Window::Rect).is_err());
        assert!(welch(&data, 32, 0, Window::Rect).is_err());
        assert!(welch(&data, 8, 8, Window::Rect).is_err());
        assert!(welch(&[], 4, 0, Window::Rect).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(periodogram(&[], Window::Rect), Err(DspError::EmptyInput));
        assert!(periodogram_real(&[], Window::Rect).is_err());
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn real_signal_periodogram_symmetric() {
        let x: Vec<f64> = (0..64).map(|t| (t as f64 * 0.4).sin()).collect();
        let psd = periodogram_real(&x, Window::Rect).unwrap();
        let n = psd.power.len();
        for k in 1..n {
            assert!((psd.power[k] - psd.power[n - k]).abs() < 1e-9);
        }
    }

    #[test]
    fn dominant_none_for_empty() {
        let psd = Psd {
            freqs: vec![],
            power: vec![],
        };
        assert!(psd.dominant().is_none());
        assert_eq!(psd.total_power(), 0.0);
    }
}
