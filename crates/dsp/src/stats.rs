//! Descriptive statistics, including circular statistics for phases.

use std::f64::consts::PI;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (by copy + sort); `0.0` for an empty slice.
///
/// This is the estimator the paper's phase calibration (Eq. 1) applies to
/// the recent per-channel phase history.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Quantile via linear interpolation, `q ∈ [0, 1]`; `0.0` when empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Circular mean of angles (radians), in `(-π, π]`; `0.0` when empty.
pub fn circular_mean(phases: &[f64]) -> f64 {
    if phases.is_empty() {
        return 0.0;
    }
    let (s, c) = phases
        .iter()
        .fold((0.0, 0.0), |(s, c), &p| (s + p.sin(), c + p.cos()));
    s.atan2(c)
}

/// Circular "median": the sample angle minimising the summed circular
/// distance to all others. `0.0` when empty.
///
/// More robust than [`circular_mean`] against the π-flips the Impinj
/// receive chain injects.
pub fn circular_median(phases: &[f64]) -> f64 {
    if phases.is_empty() {
        return 0.0;
    }
    let dist = |a: f64, b: f64| {
        let d = (a - b).rem_euclid(2.0 * PI);
        d.min(2.0 * PI - d)
    };
    let mut best = phases[0];
    let mut best_cost = f64::INFINITY;
    for &cand in phases {
        let cost: f64 = phases.iter().map(|&p| dist(cand, p)).sum();
        if cost < best_cost {
            best_cost = cost;
            best = cand;
        }
    }
    best
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns `0.0` for degenerate inputs (length < 2, zero variance or
/// mismatched lengths).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Ordinary least squares fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept)`; `(0, mean(y))` for degenerate inputs.
/// Used to verify the linear phase-vs-frequency relation of Fig. 3.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    if xs.len() != ys.len() || xs.len() < 2 {
        return (0.0, mean(ys));
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx <= 0.0 {
        return (0.0, my);
    }
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert!((mean(&xs) - 22.0).abs() < 1e-12);
        assert_eq!(median(&xs), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn median_robust_to_outliers() {
        let clean = [1.0, 1.1, 0.9, 1.05, 0.95];
        let dirty = [1.0, 1.1, 0.9, 1.05, 50.0];
        assert!((median(&clean) - median(&dirty)).abs() < 0.2);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert!((quantile(&xs, 0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_domain() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn circular_mean_wraps() {
        // Angles straddling the wrap point average near the wrap, not π.
        let phases = [0.1, -0.1 + 2.0 * PI];
        let m = circular_mean(&phases);
        assert!(m.abs() < 1e-9, "got {m}");
    }

    #[test]
    fn circular_median_picks_cluster() {
        let phases = [0.1, 0.12, 0.09, 3.0];
        let m = circular_median(&phases);
        assert!((m - 0.1).abs() < 0.05, "got {m}");
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x - 2.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys);
        assert!((slope - 3.5).abs() < 1e-9);
        assert!((intercept + 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(circular_mean(&[]), 0.0);
        assert_eq!(circular_median(&[]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), 0.0);
        let (s, i) = linear_fit(&[], &[]);
        assert_eq!((s, i), (0.0, 0.0));
    }
}
