//! Sliding-window maintenance of the spatially smoothed correlation.
//!
//! The batch estimator ([`crate::music::spatially_smoothed_correlation`])
//! recomputes, for every window, the average of all subarray outer
//! products over all snapshots:
//!
//! ```text
//! R = (1/(T·S)) · Σ_{t<T} Σ_{s<S} w_{t,s} · w_{t,s}ᴴ ,
//! ```
//!
//! where `w_{t,s}` is the `l`-element subarray of snapshot `t` starting
//! at element `s`, and `S = N − l + 1`. `R` is *linear* in the
//! per-snapshot contributions, so a sliding window can maintain the
//! unnormalised accumulator `A = Σ Σ w wᴴ` with rank-1 updates — `S`
//! outer-product additions when a snapshot enters the window,
//! subtractions when one retires — and renormalise on demand. That turns
//! the per-window cost from `O(T·S·l²)` rebuilds into `O(ΔT·S·l²)` for
//! the snapshots that actually changed.
//!
//! Forward–backward averaging is *not* folded in here: the downstream
//! consumer ([`crate::music::pseudospectrum_from_correlation`] and its
//! GEMM-lowered sibling) applies FB to whatever correlation it is
//! handed, so the streamed `R` feeds the identical FB → loading → eigen
//! prefix as the batch path.
//!
//! ## Drift
//!
//! In exact arithmetic an add/retire sequence reproduces the batch `R`
//! for the surviving window. In `f64`, retiring a snapshot does not
//! bitwise-cancel the rounding of its earlier addition, so the
//! accumulator drifts by `O(ε·Σ‖w‖²)` per update — bounded, but not
//! zero. Callers that need exactness periodically [`Self::clear`] and
//! re-add the live window (the streaming extractor's *refresh cadence*),
//! which resets accumulated drift to the batch value.

use crate::{CMatrix, Complex, DspError};

/// Incrementally maintained, unnormalised smoothed-correlation state for
/// one sliding window of array snapshots.
///
/// `Clone` is cheap-ish (one `l × l` matrix) and deliberate: session
/// checkpoints carry extractor state by value.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingCovariance {
    snap_len: usize,
    sub_len: usize,
    n_sub: usize,
    /// `Σ_t Σ_s w_{t,s} w_{t,s}ᴴ` over the live window (unnormalised).
    acc: CMatrix,
    /// Number of live snapshots `T`.
    count: usize,
}

impl SlidingCovariance {
    /// Creates empty state for length-`snap_len` snapshots, optionally
    /// spatially smoothed with subarrays of `smoothing_subarray`
    /// elements (the same parameter as
    /// [`crate::music::MusicConfig::smoothing_subarray`]).
    ///
    /// # Errors
    ///
    /// * [`DspError::EmptyInput`] if `snap_len` is zero;
    /// * [`DspError::InvalidParameter`] if the subarray length is
    ///   outside `2..=snap_len` (matching the batch estimator).
    pub fn new(snap_len: usize, smoothing_subarray: Option<usize>) -> Result<Self, DspError> {
        if snap_len == 0 {
            return Err(DspError::EmptyInput);
        }
        if let Some(l) = smoothing_subarray {
            if l < 2 || l > snap_len {
                return Err(DspError::InvalidParameter(
                    "subarray_len must be in 2..=snapshot_len",
                ));
            }
        }
        let sub_len = smoothing_subarray.unwrap_or(snap_len);
        Ok(SlidingCovariance {
            snap_len,
            sub_len,
            n_sub: snap_len - sub_len + 1,
            acc: CMatrix::zeros(sub_len, sub_len),
            count: 0,
        })
    }

    /// Snapshot length this state was built for.
    pub fn snap_len(&self) -> usize {
        self.snap_len
    }

    /// Size of the emitted correlation matrix (`l × l`).
    pub fn sub_len(&self) -> usize {
        self.sub_len
    }

    /// Number of snapshots currently folded into the window.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no snapshots are folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds (`sign = +1`) or subtracts (`sign = -1`) every subarray
    /// outer product of `snap` into the accumulator.
    fn rank1(&mut self, snap: &[Complex], sign: f64) {
        let l = self.sub_len;
        for start in 0..self.n_sub {
            let w = &snap[start..start + l];
            for i in 0..l {
                for j in 0..l {
                    self.acc[(i, j)] += (w[i] * w[j].conj()).scale(sign);
                }
            }
        }
    }

    /// Folds one snapshot into the window.
    ///
    /// # Errors
    ///
    /// [`DspError::DimensionMismatch`] if `snap.len() != snap_len`.
    pub fn add(&mut self, snap: &[Complex]) -> Result<(), DspError> {
        if snap.len() != self.snap_len {
            return Err(DspError::DimensionMismatch(self.snap_len, snap.len()));
        }
        self.rank1(snap, 1.0);
        self.count += 1;
        Ok(())
    }

    /// Retires a previously [`Self::add`]ed snapshot from the window.
    ///
    /// The caller is responsible for passing the same values it added —
    /// this subtracts the outer products, it does not search.
    ///
    /// # Errors
    ///
    /// * [`DspError::DimensionMismatch`] if `snap.len() != snap_len`;
    /// * [`DspError::EmptyInput`] if the window is already empty.
    pub fn retire(&mut self, snap: &[Complex]) -> Result<(), DspError> {
        if snap.len() != self.snap_len {
            return Err(DspError::DimensionMismatch(self.snap_len, snap.len()));
        }
        if self.count == 0 {
            return Err(DspError::EmptyInput);
        }
        self.rank1(snap, -1.0);
        self.count -= 1;
        Ok(())
    }

    /// Empties the window (used before an exact rebuild at a refresh
    /// point; zeroes accumulated drift).
    pub fn clear(&mut self) {
        self.acc.resize_to(self.sub_len, self.sub_len);
        self.count = 0;
    }

    /// Writes the normalised correlation `R = A/(T·S)` into `out`.
    ///
    /// Equal in exact arithmetic to the batch estimator on the live
    /// window's snapshots; in `f64` it differs by the normalisation
    /// order (one combined scale here versus scale-per-subarray-pass in
    /// the batch path) plus any add/retire drift — both covered by the
    /// caller's tolerance band and zeroed at refresh points.
    ///
    /// # Errors
    ///
    /// [`DspError::EmptyInput`] when the window is empty.
    pub fn correlation_into(&self, out: &mut CMatrix) -> Result<(), DspError> {
        if self.count == 0 {
            return Err(DspError::EmptyInput);
        }
        out.copy_from(&self.acc);
        let scale = 1.0 / (self.count as f64 * self.n_sub as f64);
        out.scale_in_place(Complex::new(scale, 0.0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::music::{correlation_matrix, spatially_smoothed_correlation};

    fn snapshot(seed: u64, n: usize) -> Vec<Complex> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    fn max_abs_diff(a: &CMatrix, b: &CMatrix) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_batch_smoothed_correlation_after_slide() {
        let n = 4;
        let all: Vec<Vec<Complex>> = (0..12).map(|t| snapshot(t, n)).collect();
        let mut cov = SlidingCovariance::new(n, Some(3)).unwrap();
        let mut out = CMatrix::zeros(0, 0);
        // Slide a width-5 window across; compare against the batch
        // estimator on the same live snapshots at every position.
        for t in 0..all.len() {
            cov.add(&all[t]).unwrap();
            if t >= 5 {
                cov.retire(&all[t - 5]).unwrap();
            }
            let lo = t.saturating_sub(4);
            let live = &all[lo..=t];
            assert_eq!(cov.len(), live.len());
            cov.correlation_into(&mut out).unwrap();
            let batch = spatially_smoothed_correlation(live, 3).unwrap();
            assert!(
                max_abs_diff(&out, &batch) < 1e-12,
                "window ending at {t} drifted"
            );
        }
    }

    #[test]
    fn matches_batch_plain_correlation_without_smoothing() {
        let n = 3;
        let all: Vec<Vec<Complex>> = (0..6).map(|t| snapshot(100 + t, n)).collect();
        let mut cov = SlidingCovariance::new(n, None).unwrap();
        for s in &all {
            cov.add(s).unwrap();
        }
        let mut out = CMatrix::zeros(0, 0);
        cov.correlation_into(&mut out).unwrap();
        let batch = correlation_matrix(&all).unwrap();
        assert!(max_abs_diff(&out, &batch) < 1e-12);
        assert_eq!(out.rows(), n);
    }

    #[test]
    fn clear_and_rebuild_resets_drift_exactly() {
        let n = 4;
        let all: Vec<Vec<Complex>> = (0..8).map(|t| snapshot(7 * t + 1, n)).collect();
        let mut cov = SlidingCovariance::new(n, Some(3)).unwrap();
        // Churn: add everything, retire the first half.
        for s in &all {
            cov.add(s).unwrap();
        }
        for s in &all[..4] {
            cov.retire(s).unwrap();
        }
        // Rebuild the same live window from scratch.
        cov.clear();
        assert!(cov.is_empty());
        for s in &all[4..] {
            cov.add(s).unwrap();
        }
        let mut out = CMatrix::zeros(0, 0);
        cov.correlation_into(&mut out).unwrap();
        // After a rebuild, the result must be *bitwise* reproducible
        // by a fresh accumulator over the same snapshots.
        let mut fresh = SlidingCovariance::new(n, Some(3)).unwrap();
        for s in &all[4..] {
            fresh.add(s).unwrap();
        }
        let mut out2 = CMatrix::zeros(0, 0);
        fresh.correlation_into(&mut out2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn input_validation() {
        assert!(SlidingCovariance::new(0, None).is_err());
        assert!(SlidingCovariance::new(4, Some(1)).is_err());
        assert!(SlidingCovariance::new(4, Some(5)).is_err());
        let mut cov = SlidingCovariance::new(4, Some(3)).unwrap();
        assert_eq!(cov.sub_len(), 3);
        assert_eq!(cov.snap_len(), 4);
        assert!(cov.add(&snapshot(1, 3)).is_err());
        assert!(cov.retire(&snapshot(1, 4)).is_err(), "empty window");
        let mut out = CMatrix::zeros(0, 0);
        assert_eq!(cov.correlation_into(&mut out), Err(DspError::EmptyInput));
    }
}
