//! Phase wrapping, unwrapping and ambiguity helpers.
//!
//! RFID readers report phase modulo 2π — and the Impinj signal chain adds
//! a further π ambiguity (Section V of the paper). These helpers fold,
//! unfold and compare phases consistently.

use std::f64::consts::PI;

/// Wraps a phase to `(-π, π]`.
///
/// ```
/// use m2ai_dsp::phase::wrap;
/// assert!((wrap(3.0 * std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
/// assert!((wrap(-0.1) + 0.1).abs() < 1e-12);
/// ```
pub fn wrap(phi: f64) -> f64 {
    let mut p = phi % (2.0 * PI);
    if p <= -PI {
        p += 2.0 * PI;
    } else if p > PI {
        p -= 2.0 * PI;
    }
    p
}

/// Wraps a phase to `[0, 2π)` — the convention of LLRP phase reports.
pub fn wrap_positive(phi: f64) -> f64 {
    let p = phi.rem_euclid(2.0 * PI);
    if p >= 2.0 * PI {
        0.0
    } else {
        p
    }
}

/// Shortest signed angular distance `a − b`, in `(-π, π]`.
pub fn difference(a: f64, b: f64) -> f64 {
    wrap(a - b)
}

/// Unwraps a sequence of wrapped phases into a continuous trajectory.
///
/// Consecutive jumps larger than π are interpreted as wraps.
///
/// ```
/// use m2ai_dsp::phase::{unwrap, wrap_positive};
/// let truth: Vec<f64> = (0..50).map(|t| 0.4 * t as f64).collect();
/// let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_positive(p)).collect();
/// let un = unwrap(&wrapped);
/// for (a, b) in truth.iter().zip(&un) {
///     assert!(((a - b) - (truth[0] - un[0])).abs() < 1e-9);
/// }
/// ```
pub fn unwrap(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    for (i, &p) in phases.iter().enumerate() {
        if i > 0 {
            let prev = phases[i - 1];
            let d = p - prev;
            if d > PI {
                offset -= 2.0 * PI;
            } else if d < -PI {
                offset += 2.0 * PI;
            }
        }
        out.push(p + offset);
    }
    out
}

/// Folds a phase into `[0, π)`, discarding the π ambiguity the Impinj
/// receive chain introduces (reported phase may be `φ` or `φ + π`).
///
/// Two reports of the same physical phase always fold to the same value.
pub fn fold_pi_ambiguity(phi: f64) -> f64 {
    let p = phi.rem_euclid(PI);
    if p >= PI {
        0.0
    } else {
        p
    }
}

/// Distance between two phases under the π ambiguity, in `[0, π/2]`.
pub fn ambiguous_distance(a: f64, b: f64) -> f64 {
    let d = (fold_pi_ambiguity(a) - fold_pi_ambiguity(b)).abs();
    d.min(PI - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_range() {
        for k in -10..=10 {
            let phi = 0.3 + k as f64 * 2.0 * PI;
            assert!((wrap(phi) - 0.3).abs() < 1e-9);
        }
        assert!(wrap(PI) <= PI && wrap(PI) > -PI);
        assert!(wrap(-PI) <= PI && wrap(-PI) > -PI);
    }

    #[test]
    fn wrap_positive_range() {
        for k in -5..=5 {
            let phi = 1.0 + k as f64 * 2.0 * PI;
            let w = wrap_positive(phi);
            assert!((0.0..2.0 * PI).contains(&w));
            assert!((w - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn difference_is_shortest_path() {
        assert!((difference(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-9);
        assert!((difference(2.0 * PI - 0.1, 0.1) + 0.2).abs() < 1e-9);
    }

    #[test]
    fn unwrap_recovers_linear_ramp() {
        let truth: Vec<f64> = (0..100).map(|t| -0.7 * t as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_positive(p)).collect();
        let un = unwrap(&wrapped);
        // Same shape up to a constant offset.
        let offset = un[0] - truth[0];
        for (a, b) in truth.iter().zip(&un) {
            assert!((b - a - offset).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_empty_and_single() {
        assert!(unwrap(&[]).is_empty());
        assert_eq!(unwrap(&[1.5]), vec![1.5]);
    }

    #[test]
    fn pi_fold_collapses_ambiguity() {
        for phi in [0.3, 1.0, 2.5, 3.0] {
            let a = fold_pi_ambiguity(phi);
            let b = fold_pi_ambiguity(phi + PI);
            assert!((a - b).abs() < 1e-9, "phi={phi}");
        }
    }

    #[test]
    fn ambiguous_distance_bounds() {
        assert!(ambiguous_distance(0.0, PI / 2.0) <= PI / 2.0 + 1e-12);
        assert!((ambiguous_distance(0.2, 0.2 + PI)).abs() < 1e-9);
        assert!((ambiguous_distance(0.0, 0.4) - 0.4).abs() < 1e-9);
    }
}
