//! Double-precision complex numbers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// This is the scalar type used by every spectral estimator in the crate.
///
/// # Example
///
/// ```
/// use m2ai_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// let c = a * b;
/// assert!((c.norm() - a.norm() * 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r * e^{iθ}`.
    ///
    /// ```
    /// use m2ai_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::PI);
    /// assert!((z.re + 2.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2` (cheaper than [`Complex::norm`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value if `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.norm();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-inverse
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(3.0, 0.7);
        assert!((z.norm() - 3.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        let w = z * z.inv();
        assert!((w - Complex::ONE).norm() < EPS);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(1.5, 2.5);
        assert!((z * z.conj()).im.abs() < EPS);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Complex::I * Complex::I;
        assert!((m + Complex::ONE).norm() < EPS);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-4.0, 3.0);
        let s = z.sqrt();
        assert!((s * s - z).norm() < 1e-10);
    }

    #[test]
    fn exp_of_i_pi() {
        let z = (Complex::I * std::f64::consts::PI).exp();
        assert!((z + Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn division_matches_multiplication() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        let q = a / b;
        assert!((q * b - a).norm() < EPS);
    }
}
