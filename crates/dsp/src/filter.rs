//! Small FIR smoothing filters used to condition spectra before
//! learning.

use crate::DspError;

/// A normalised Gaussian smoothing kernel of standard deviation
/// `sigma` (in samples), truncated at ±3σ.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `sigma` is not positive.
pub fn gaussian_kernel(sigma: f64) -> Result<Vec<f64>, DspError> {
    if sigma <= 0.0 || sigma.is_nan() {
        return Err(DspError::InvalidParameter("sigma must be positive"));
    }
    let half = (3.0 * sigma).ceil() as usize;
    let mut k: Vec<f64> = (0..=2 * half)
        .map(|i| {
            let x = i as f64 - half as f64;
            (-x * x / (2.0 * sigma * sigma)).exp()
        })
        .collect();
    let sum: f64 = k.iter().sum();
    k.iter_mut().for_each(|v| *v /= sum);
    Ok(k)
}

/// Circular (wrap-around) convolution of `data` with `kernel`.
///
/// Appropriate for angle spectra, where bin 0 and bin N−1 are
/// neighbours in the underlying geometry.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty, or
/// [`DspError::InvalidParameter`] if the kernel is longer than the data.
pub fn convolve_circular(data: &[f64], kernel: &[f64]) -> Result<Vec<f64>, DspError> {
    if data.is_empty() || kernel.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if kernel.len() > data.len() {
        return Err(DspError::InvalidParameter("kernel longer than data"));
    }
    let n = data.len();
    let half = kernel.len() / 2;
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &w) in kernel.iter().enumerate() {
            let idx = (i + j + n - half) % n;
            acc += w * data[idx];
        }
        *o = acc;
    }
    Ok(out)
}

/// Centered moving average of window `w` (odd, clamped to data length),
/// with edge truncation (no wrap).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for empty data or
/// [`DspError::InvalidParameter`] for an even or zero window.
pub fn moving_average(data: &[f64], w: usize) -> Result<Vec<f64>, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if w == 0 || w.is_multiple_of(2) {
        return Err(DspError::InvalidParameter("window must be odd and > 0"));
    }
    let half = w / 2;
    let n = data.len();
    let out = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_kernel_normalised_and_symmetric() {
        let k = gaussian_kernel(2.0).unwrap();
        assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for i in 0..k.len() {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-12);
        }
        let mid = k.len() / 2;
        assert!(k.iter().all(|&v| v <= k[mid]));
    }

    #[test]
    fn gaussian_kernel_rejects_bad_sigma() {
        assert!(gaussian_kernel(0.0).is_err());
        assert!(gaussian_kernel(-1.0).is_err());
    }

    #[test]
    fn circular_convolution_preserves_mass() {
        let data = vec![0.0, 0.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let k = gaussian_kernel(0.8).unwrap();
        let out = convolve_circular(&data, &k).unwrap();
        assert!((out.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        // Peak stays at the same index.
        let argmax = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 2);
    }

    #[test]
    fn circular_convolution_wraps() {
        let data = vec![10.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let k = vec![0.25, 0.5, 0.25];
        let out = convolve_circular(&data, &k).unwrap();
        assert!((out[0] - 5.0).abs() < 1e-12);
        assert!((out[5] - 2.5).abs() < 1e-12, "must wrap: {out:?}");
        assert!((out[1] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn convolution_input_validation() {
        assert!(convolve_circular(&[], &[1.0]).is_err());
        assert!(convolve_circular(&[1.0], &[]).is_err());
        assert!(convolve_circular(&[1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn moving_average_flattens_noise() {
        let data: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = moving_average(&data, 5).unwrap();
        let max_abs = out[2..38]
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(max_abs < 0.25, "interior should flatten: {max_abs}");
    }

    #[test]
    fn moving_average_validation() {
        assert!(moving_average(&[], 3).is_err());
        assert!(moving_average(&[1.0], 2).is_err());
        assert!(moving_average(&[1.0], 0).is_err());
        // Identity for window 1.
        assert_eq!(moving_average(&[1.0, 2.0], 1).unwrap(), vec![1.0, 2.0]);
    }
}
