//! Taper windows for spectral estimation.

/// A taper window applied before computing a periodogram.
///
/// The periodogram of a finite record leaks power across bins; tapering
/// trades main-lobe width for side-lobe suppression. [`Window::Rect`]
/// reproduces the raw periodogram of Eq. (14) in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Window {
    /// No taper (all ones).
    #[default]
    Rect,
    /// Hann window, ~31 dB first side lobe.
    Hann,
    /// Hamming window, ~41 dB first side lobe.
    Hamming,
    /// Blackman window, ~58 dB first side lobe.
    Blackman,
}

impl Window {
    /// Evaluates the window coefficients for a record of length `n`.
    ///
    /// Lengths 0 and 1 are handled gracefully (empty / `[1.0]`).
    ///
    /// ```
    /// use m2ai_dsp::window::Window;
    /// let w = Window::Hann.coefficients(8);
    /// assert_eq!(w.len(), 8);
    /// assert!(w[0].abs() < 1e-12); // Hann is zero at the edges
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / m;
                let two_pi_x = 2.0 * std::f64::consts::PI * x;
                match self {
                    Window::Rect => 1.0,
                    Window::Hann => 0.5 - 0.5 * two_pi_x.cos(),
                    Window::Hamming => 0.54 - 0.46 * two_pi_x.cos(),
                    Window::Blackman => 0.42 - 0.5 * two_pi_x.cos() + 0.08 * (2.0 * two_pi_x).cos(),
                }
            })
            .collect()
    }

    /// Sum of squared coefficients, used to normalise PSD estimates so
    /// that windowing preserves average power.
    pub fn power(self, n: usize) -> f64 {
        self.coefficients(n).iter().map(|w| w * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_all_ones() {
        assert!(Window::Rect.coefficients(5).iter().all(|&w| w == 1.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(17);
            for i in 0..c.len() {
                assert!(
                    (c[i] - c[c.len() - 1 - i]).abs() < 1e-12,
                    "{w:?} asymmetric"
                );
            }
        }
    }

    #[test]
    fn windows_peak_at_centre() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(33);
            let mid = c[16];
            assert!(c.iter().all(|&v| v <= mid + 1e-12), "{w:?} not peaked");
            assert!((mid - 1.0).abs() < 1e-9, "{w:?} centre not unity");
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn power_matches_manual_sum() {
        let n = 24;
        let c = Window::Hamming.coefficients(n);
        let manual: f64 = c.iter().map(|w| w * w).sum();
        assert!((Window::Hamming.power(n) - manual).abs() < 1e-12);
        assert!((Window::Rect.power(n) - n as f64).abs() < 1e-12);
    }
}
