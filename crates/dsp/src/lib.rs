//! # m2ai-dsp — signal processing substrate for M2AI
//!
//! This crate implements, from first principles, every piece of signal
//! processing the M2AI pipeline (ICDCS 2018) relies on:
//!
//! * [`Complex`] arithmetic and [`phase`] wrapping/unwrapping helpers;
//! * a fast Fourier transform ([`fft`]) supporting arbitrary lengths
//!   (iterative radix-2 plus Bluestein's algorithm);
//! * windowed [`periodogram`] power-spectral-density estimation (Eq. 14–16
//!   of the paper) including Welch averaging;
//! * dense complex [`matrix`] algebra and a cyclic-Jacobi Hermitian
//!   [`eigen`]decomposition;
//! * the MUSIC pseudospectrum estimator ([`music`], Eq. 12) with
//!   forward–backward averaging, spatial smoothing and MDL/AIC source
//!   counting;
//! * descriptive [`stats`] (means, medians, circular statistics);
//! * [`stream`]ing sliding-window covariance maintenance (rank-1
//!   add/retire of forward–backward snapshot outer products) feeding a
//!   GEMM-lowered pseudospectrum scan
//!   ([`music::pseudospectrum_from_correlation_gemm`]).
//!
//! The crate uses `f64` throughout for the exact batch path and leans
//! only on workspace crates (`m2ai-kernels` for the packed `f32` scan,
//! `m2ai-obs` for instrumentation) — no external dependencies.
//!
//! # Example
//!
//! ```
//! use m2ai_dsp::{Complex, fft::fft, music::{MusicConfig, pseudospectrum}};
//!
//! // FFT of a pure tone lands all energy in one bin.
//! let n = 64;
//! let tone: Vec<Complex> = (0..n)
//!     .map(|t| Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 4.0 * t as f64 / n as f64))
//!     .collect();
//! let spec = fft(&tone);
//! let peak = spec.iter().enumerate().max_by(|a, b| {
//!     a.1.norm().partial_cmp(&b.1.norm()).unwrap()
//! }).unwrap().0;
//! assert_eq!(peak, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
pub mod eigen;
pub mod esprit;
pub mod fft;
pub mod filter;
pub mod matrix;
pub mod music;
pub mod periodogram;
pub mod phase;
pub mod stats;
pub mod stream;
pub mod window;

pub use complex::Complex;
pub use matrix::CMatrix;

/// Crate-wide error type.
///
/// All fallible public functions in this crate return `Result<_, DspError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// The input slice was empty where data was required.
    EmptyInput,
    /// Two inputs had incompatible dimensions; holds `(expected, got)`.
    DimensionMismatch(usize, usize),
    /// A matrix operation required a square matrix.
    NotSquare {
        /// number of rows
        rows: usize,
        /// number of columns
        cols: usize,
    },
    /// An iterative algorithm failed to converge within its budget.
    NoConvergence {
        /// the iteration budget that was exhausted
        iterations: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for DspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input must not be empty"),
            DspError::DimensionMismatch(expected, got) => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            DspError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            DspError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            DspError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            DspError::EmptyInput,
            DspError::DimensionMismatch(3, 4),
            DspError::NotSquare { rows: 2, cols: 3 },
            DspError::NoConvergence { iterations: 100 },
            DspError::InvalidParameter("alpha"),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
