//! ESPRIT: search-free angle-of-arrival estimation.
//!
//! MUSIC (Eq. 12) scans a 180-point grid; ESPRIT (Estimation of Signal
//! Parameters via Rotational Invariance Techniques) exploits the shift
//! invariance of a ULA to read the arrival angles directly off the
//! eigenvalues of a small matrix — no grid, sub-degree resolution.
//! Provided as an alternative estimator for applications that need
//! angles rather than full spectra (and as a cross-check of the MUSIC
//! implementation in tests).

use crate::eigen::hermitian_eigen;
use crate::music::{correlation_matrix, MusicConfig};
use crate::{CMatrix, Complex, DspError};

/// Inverts a small complex matrix by Gauss–Jordan with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`DspError::NotSquare`] or
/// [`DspError::InvalidParameter`] (singular).
pub fn invert_small(a: &CMatrix) -> Result<CMatrix, DspError> {
    if !a.is_square() {
        return Err(DspError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut inv = CMatrix::identity(n);
    for col in 0..n {
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[(r, col)].norm() > m[(pivot, col)].norm() {
                pivot = r;
            }
        }
        if m[(pivot, col)].norm() < 1e-12 {
            return Err(DspError::InvalidParameter("matrix is singular"));
        }
        if pivot != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot, j)];
                m[(pivot, j)] = tmp;
                let tmp = inv[(col, j)];
                inv[(col, j)] = inv[(pivot, j)];
                inv[(pivot, j)] = tmp;
            }
        }
        let d = m[(col, col)].inv();
        for j in 0..n {
            m[(col, j)] *= d;
            inv[(col, j)] *= d;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[(r, col)];
            if f == Complex::ZERO {
                continue;
            }
            for j in 0..n {
                let mc = m[(col, j)];
                let ic = inv[(col, j)];
                m[(r, j)] -= f * mc;
                inv[(r, j)] -= f * ic;
            }
        }
    }
    Ok(inv)
}

/// Eigenvalues of a small (n ≤ 3) complex matrix, via closed forms.
///
/// # Errors
///
/// Returns [`DspError::NotSquare`] for non-square input or
/// [`DspError::InvalidParameter`] for n > 3 or empty input.
pub fn small_eigenvalues(a: &CMatrix) -> Result<Vec<Complex>, DspError> {
    if !a.is_square() {
        return Err(DspError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    match a.rows() {
        0 => Err(DspError::InvalidParameter("empty matrix")),
        1 => Ok(vec![a[(0, 0)]]),
        2 => {
            // λ² − tr·λ + det = 0
            let tr = a[(0, 0)] + a[(1, 1)];
            let det = a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)];
            let disc = (tr * tr - det.scale(4.0)).sqrt();
            Ok(vec![(tr + disc).scale(0.5), (tr - disc).scale(0.5)])
        }
        3 => {
            // Characteristic polynomial λ³ − c2 λ² + c1 λ − c0 = 0 with
            // c2 = tr, c1 = Σ principal 2×2 minors, c0 = det.
            let m = |i: usize, j: usize| a[(i, j)];
            let c2 = m(0, 0) + m(1, 1) + m(2, 2);
            let minor =
                |i: usize, j: usize, k: usize, l: usize| m(i, i) * m(j, j) - m(k, l) * m(l, k);
            let c1 = minor(0, 1, 0, 1) + minor(0, 2, 0, 2) + minor(1, 2, 1, 2);
            let c0 = m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1))
                - m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0))
                + m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
            // Depressed cubic t³ + pt + q with λ = t + c2/3.
            let shift = c2.scale(1.0 / 3.0);
            let p = c1 - c2 * c2.scale(1.0 / 3.0);
            let q = c0.scale(-1.0) + c1 * shift - shift * shift * shift.scale(2.0);
            // Solve via Cardano with complex arithmetic:
            // t = u − p/(3u), u³ = (−q + √(q² + 4p³/27)) / 2.
            let inner = (q * q + (p * p * p).scale(4.0 / 27.0)).sqrt();
            let mut u3 = (q.scale(-1.0) + inner).scale(0.5);
            if u3.norm() < 1e-18 {
                u3 = (q.scale(-1.0) - inner).scale(0.5);
            }
            let roots = if u3.norm() < 1e-18 {
                // p and q both ~0: triple root at the shift.
                vec![Complex::ZERO; 3]
            } else {
                let r = u3.norm().cbrt();
                let theta = u3.arg() / 3.0;
                (0..3)
                    .map(|k| {
                        let u = Complex::from_polar(
                            r,
                            theta + 2.0 * std::f64::consts::PI * k as f64 / 3.0,
                        );
                        u - p.scale(1.0 / 3.0) * u.inv()
                    })
                    .collect()
            };
            Ok(roots.into_iter().map(|t| t + shift).collect())
        }
        n => {
            let _ = n;
            Err(DspError::InvalidParameter(
                "small_eigenvalues supports n <= 3",
            ))
        }
    }
}

/// Estimates arrival angles (degrees) of `n_sources` signals with
/// ESPRIT.
///
/// `config` supplies the array geometry exactly as for MUSIC; the
/// grid fields are ignored. Works for `n_sources ≤ min(3, N−1)`.
///
/// # Errors
///
/// Propagates snapshot/eigendecomposition errors;
/// [`DspError::InvalidParameter`] for unsupported source counts.
pub fn esprit_angles(
    snapshots: &[Vec<Complex>],
    config: &MusicConfig,
    n_sources: usize,
) -> Result<Vec<f64>, DspError> {
    config.validate()?;
    let n = config.n_antennas;
    if n_sources == 0 || n_sources > 3 || n_sources >= n {
        return Err(DspError::InvalidParameter(
            "n_sources must be in 1..=min(3, n_antennas-1)",
        ));
    }
    let r = correlation_matrix(snapshots)?;
    let eig = hermitian_eigen(&r)?;
    // Signal subspace: first n_sources eigenvectors.
    let us = CMatrix::from_fn(n, n_sources, |i, j| eig.vectors[(i, j)]);
    // Shifted subarrays.
    let u1 = CMatrix::from_fn(n - 1, n_sources, |i, j| us[(i, j)]);
    let u2 = CMatrix::from_fn(n - 1, n_sources, |i, j| us[(i + 1, j)]);
    // Ψ = (U1ᴴU1)⁻¹ U1ᴴ U2.
    let u1h = u1.hermitian_transpose();
    let gram = u1h.mul(&u1)?;
    let psi = invert_small(&gram)?.mul(&u1h.mul(&u2)?)?;
    let lambdas = small_eigenvalues(&psi)?;
    // Steering convention: element k+1 lags by ψ = factor·cosθ, so
    // U2 = U1·diag(e^{-jψ}) and cosθ = −arg(λ)/factor.
    let mult = if config.round_trip { 2.0 } else { 1.0 };
    let factor = 2.0 * std::f64::consts::PI * mult * config.spacing_wavelengths;
    Ok(lambdas
        .into_iter()
        .map(|l| {
            let cos_theta = (-l.arg() / factor).clamp(-1.0, 1.0);
            cos_theta.acos().to_degrees()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::music::{steering_vector, SourceCount};

    fn cfg(n: usize) -> MusicConfig {
        MusicConfig {
            n_antennas: n,
            spacing_wavelengths: 0.25,
            round_trip: false,
            n_angles: 180,
            forward_backward: false,
            smoothing_subarray: None,
            source_count: SourceCount::Fixed(1),
            diagonal_loading: 0.0,
        }
    }

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn snapshots(config: &MusicConfig, angles: &[f64], n: usize, noise: f64) -> Vec<Vec<Complex>> {
        let mut state = 42u64;
        (0..n)
            .map(|_| {
                let phases: Vec<f64> = angles
                    .iter()
                    .map(|_| splitmix(&mut state) * std::f64::consts::TAU)
                    .collect();
                (0..config.n_antennas)
                    .map(|k| {
                        let mut z = Complex::ZERO;
                        for (i, &a) in angles.iter().enumerate() {
                            z += steering_vector(config, a)[k] * Complex::cis(phases[i]);
                        }
                        z + Complex::new(
                            noise * (splitmix(&mut state) - 0.5),
                            noise * (splitmix(&mut state) - 0.5),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn invert_small_roundtrip() {
        let a = CMatrix::from_rows(
            2,
            2,
            &[
                Complex::new(2.0, 1.0),
                Complex::new(0.0, -1.0),
                Complex::new(1.0, 0.0),
                Complex::new(3.0, 0.5),
            ],
        )
        .unwrap();
        let inv = invert_small(&a).unwrap();
        let prod = a.mul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { Complex::ONE } else { Complex::ZERO };
                assert!((prod[(i, j)] - want).norm() < 1e-10);
            }
        }
    }

    #[test]
    fn invert_rejects_singular() {
        let a = CMatrix::from_rows(
            2,
            2,
            &[Complex::ONE, Complex::ONE, Complex::ONE, Complex::ONE],
        )
        .unwrap();
        assert!(invert_small(&a).is_err());
    }

    #[test]
    fn eigenvalues_of_diagonal() {
        let mut d = CMatrix::zeros(3, 3);
        d[(0, 0)] = Complex::new(1.0, 2.0);
        d[(1, 1)] = Complex::new(-3.0, 0.0);
        d[(2, 2)] = Complex::new(0.5, -0.5);
        let mut eig = small_eigenvalues(&d).unwrap();
        eig.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        assert!((eig[0] - Complex::new(-3.0, 0.0)).norm() < 1e-8);
        assert!((eig[1] - Complex::new(0.5, -0.5)).norm() < 1e-8);
        assert!((eig[2] - Complex::new(1.0, 2.0)).norm() < 1e-8);
    }

    #[test]
    fn eigenvalues_satisfy_characteristic_poly() {
        let a = CMatrix::from_fn(3, 3, |i, j| {
            Complex::new((i * 3 + j) as f64 * 0.3 - 1.0, (i as f64 - j as f64) * 0.4)
        });
        for lam in small_eigenvalues(&a).unwrap() {
            // det(A − λI) ≈ 0 via direct 3×3 determinant.
            let b = CMatrix::from_fn(3, 3, |i, j| {
                a[(i, j)] - if i == j { lam } else { Complex::ZERO }
            });
            let det = b[(0, 0)] * (b[(1, 1)] * b[(2, 2)] - b[(1, 2)] * b[(2, 1)])
                - b[(0, 1)] * (b[(1, 0)] * b[(2, 2)] - b[(1, 2)] * b[(2, 0)])
                + b[(0, 2)] * (b[(1, 0)] * b[(2, 1)] - b[(1, 1)] * b[(2, 0)]);
            assert!(det.norm() < 1e-6, "det {det} for λ {lam}");
        }
    }

    #[test]
    fn single_source_angle_recovered() {
        let c = cfg(4);
        for truth in [35.0, 90.0, 140.0] {
            let snaps = snapshots(&c, &[truth], 64, 0.02);
            let angles = esprit_angles(&snaps, &c, 1).unwrap();
            assert!(
                (angles[0] - truth).abs() < 1.0,
                "want {truth}, got {angles:?}"
            );
        }
    }

    #[test]
    fn two_sources_recovered() {
        let c = cfg(6);
        let snaps = snapshots(&c, &[55.0, 120.0], 256, 0.02);
        let mut angles = esprit_angles(&snaps, &c, 2).unwrap();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((angles[0] - 55.0).abs() < 2.0, "{angles:?}");
        assert!((angles[1] - 120.0).abs() < 2.0, "{angles:?}");
    }

    #[test]
    fn agrees_with_music() {
        let c = cfg(5);
        let truth = 72.0;
        let snaps = snapshots(&c, &[truth], 64, 0.05);
        let esprit = esprit_angles(&snaps, &c, 1).unwrap()[0];
        let spec = crate::music::pseudospectrum(&snaps, &c).unwrap();
        let music = spec.peaks(1, 5.0)[0].0;
        assert!(
            (esprit - music).abs() < 2.0,
            "esprit {esprit} music {music}"
        );
    }

    #[test]
    fn parameter_validation() {
        let c = cfg(4);
        let snaps = snapshots(&c, &[90.0], 8, 0.0);
        assert!(esprit_angles(&snaps, &c, 0).is_err());
        assert!(esprit_angles(&snaps, &c, 4).is_err());
        assert!(small_eigenvalues(&CMatrix::zeros(4, 4)).is_err());
        assert!(small_eigenvalues(&CMatrix::zeros(2, 3)).is_err());
    }
}
