//! MUSIC (MUltiple SIgnal Classification) pseudospectrum estimation.
//!
//! Implements the angle-of-arrival estimator of Section III-C of the
//! paper: the spatial correlation matrix of array snapshots (Eq. 10) is
//! eigendecomposed, the eigenvectors split into signal and noise
//! subspaces (Eq. 11), and the pseudospectrum evaluated over a grid of
//! arrival angles (Eq. 12). Peaks of the pseudospectrum locate the
//! propagation paths.
//!
//! Extensions needed for RFID backscatter practice are included:
//!
//! * *round-trip phase*: a backscatter link accrues phase over the
//!   two-way distance, doubling the effective element spacing;
//! * *forward–backward averaging* and *subarray spatial smoothing*, which
//!   restore correlation-matrix rank when multipath components are
//!   mutually coherent (they are — they originate from one tag);
//! * *MDL / AIC* information-theoretic source counting.

use crate::eigen::hermitian_eigen;
use crate::{CMatrix, Complex, DspError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// How many signal sources to assume when splitting subspaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceCount {
    /// Use exactly this many sources (clamped to `n_antennas - 1`).
    Fixed(usize),
    /// Estimate with the Minimum Description Length criterion.
    Mdl,
    /// Estimate with the Akaike Information Criterion.
    Aic,
}

/// Configuration for the MUSIC estimator.
///
/// `spacing_wavelengths` is the physical element spacing divided by the
/// carrier wavelength (the paper uses λ/8 ⇒ `0.125`); with
/// `round_trip = true` (backscatter) the *effective* spacing doubles,
/// yielding the λ/4 separation discussed in Section V.
#[derive(Debug, Clone, PartialEq)]
pub struct MusicConfig {
    /// Number of array elements (antennas).
    pub n_antennas: usize,
    /// Element spacing in carrier wavelengths (d/λ).
    pub spacing_wavelengths: f64,
    /// If `true`, phase accrues over the round trip (backscatter links).
    pub round_trip: bool,
    /// Number of grid points spanning 0°..180° (the paper uses 180).
    pub n_angles: usize,
    /// Apply forward–backward averaging to the correlation matrix.
    pub forward_backward: bool,
    /// Optional subarray length for spatial smoothing (must be in
    /// `2..=n_antennas`); `None` disables smoothing.
    pub smoothing_subarray: Option<usize>,
    /// Source-count selection strategy.
    pub source_count: SourceCount,
    /// Diagonal loading added to the correlation matrix for numerical
    /// robustness (relative to its trace).
    pub diagonal_loading: f64,
}

impl MusicConfig {
    /// Configuration matching the paper's prototype: 4 antennas at λ/8
    /// spacing, backscatter round trip, 180 angle bins, FB averaging,
    /// 3-element smoothing, MDL source count.
    pub fn paper_default() -> Self {
        MusicConfig {
            n_antennas: 4,
            spacing_wavelengths: 0.125,
            round_trip: true,
            n_angles: 180,
            forward_backward: true,
            smoothing_subarray: Some(3),
            source_count: SourceCount::Mdl,
            diagonal_loading: 1e-6,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when any field is out of
    /// its documented domain.
    pub fn validate(&self) -> Result<(), DspError> {
        if self.n_antennas < 2 {
            return Err(DspError::InvalidParameter("n_antennas must be >= 2"));
        }
        if self.spacing_wavelengths <= 0.0 || self.spacing_wavelengths.is_nan() {
            return Err(DspError::InvalidParameter(
                "spacing_wavelengths must be positive",
            ));
        }
        if self.n_angles < 2 {
            return Err(DspError::InvalidParameter("n_angles must be >= 2"));
        }
        if let Some(l) = self.smoothing_subarray {
            if l < 2 || l > self.n_antennas {
                return Err(DspError::InvalidParameter(
                    "smoothing_subarray must be in 2..=n_antennas",
                ));
            }
        }
        Ok(())
    }

    /// Effective per-element phase advance at broadside factor, i.e. the
    /// coefficient `2π·d_eff/λ` with `d_eff = 2d` for round-trip links.
    fn phase_factor(&self) -> f64 {
        let mult = if self.round_trip { 2.0 } else { 1.0 };
        2.0 * std::f64::consts::PI * mult * self.spacing_wavelengths
    }
}

impl Default for MusicConfig {
    fn default() -> Self {
        MusicConfig::paper_default()
    }
}

/// A sampled MUSIC pseudospectrum over arrival angle.
#[derive(Debug, Clone, PartialEq)]
pub struct MusicSpectrum {
    /// Angle grid in degrees (ascending over `[0, 180)`).
    pub angles_deg: Vec<f64>,
    /// Pseudospectrum power at each grid angle (linear scale).
    pub power: Vec<f64>,
    /// Number of sources assumed for the subspace split.
    pub source_count: usize,
}

impl MusicSpectrum {
    /// Finds local maxima, strongest first, separated by at least
    /// `min_separation_deg`.
    ///
    /// Returns `(angle_deg, power)` pairs.
    pub fn peaks(&self, max_peaks: usize, min_separation_deg: f64) -> Vec<(f64, f64)> {
        let n = self.power.len();
        let mut candidates: Vec<(f64, f64)> = (0..n)
            .filter(|&i| {
                let left = if i == 0 { f64::MIN } else { self.power[i - 1] };
                let right = if i + 1 == n {
                    f64::MIN
                } else {
                    self.power[i + 1]
                };
                self.power[i] >= left && self.power[i] > right
            })
            .map(|i| (self.angles_deg[i], self.power[i]))
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite powers"));
        let mut picked: Vec<(f64, f64)> = Vec::new();
        for (ang, pow) in candidates {
            if picked.len() >= max_peaks {
                break;
            }
            if picked
                .iter()
                .all(|&(a, _)| (a - ang).abs() >= min_separation_deg)
            {
                picked.push((ang, pow));
            }
        }
        picked
    }

    /// Normalises the power so the maximum is 1 (useful as a NN input).
    pub fn normalized(&self) -> MusicSpectrum {
        let max = self.power.iter().cloned().fold(f64::MIN, f64::max);
        let scale = if max > 0.0 { 1.0 / max } else { 0.0 };
        MusicSpectrum {
            angles_deg: self.angles_deg.clone(),
            power: self.power.iter().map(|p| p * scale).collect(),
            source_count: self.source_count,
        }
    }
}

/// Array steering vector `a(θ)` (Eq. 8) for an `n`-element ULA.
///
/// `theta_deg` is measured from endfire as in Fig. 4(c), so broadside is
/// 90°. The phase advance per element is `2π·d_eff·cosθ/λ`.
pub fn steering_vector(config: &MusicConfig, theta_deg: f64) -> Vec<Complex> {
    let psi = config.phase_factor() * theta_deg.to_radians().cos();
    (0..config.n_antennas)
        .map(|k| Complex::cis(-(k as f64) * psi))
        .collect()
}

/// The fields of [`MusicConfig`] that [`steering_vector`] depends on —
/// the cache key of [`SteeringTable`]. Spacing is keyed by its bit
/// pattern so distinct `f64` values never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SteeringKey {
    n_antennas: usize,
    n_angles: usize,
    spacing_bits: u64,
    round_trip: bool,
}

impl SteeringKey {
    fn of(config: &MusicConfig) -> Self {
        SteeringKey {
            n_antennas: config.n_antennas,
            n_angles: config.n_angles,
            spacing_bits: config.spacing_wavelengths.to_bits(),
            round_trip: config.round_trip,
        }
    }
}

type SteeringMap = HashMap<SteeringKey, Arc<Vec<Vec<Complex>>>>;

/// Process-wide cache of steering tables, shared across threads. The
/// number of distinct keys is bounded by the distinct array geometries
/// in play (a handful per process), so the map never needs eviction.
static STEERING_CACHE: OnceLock<Mutex<SteeringMap>> = OnceLock::new();

/// Hit/miss counters for the steering-table cache, resolved once per
/// process.
fn steering_cache_counters() -> &'static (m2ai_obs::Counter, m2ai_obs::Counter) {
    static C: OnceLock<(m2ai_obs::Counter, m2ai_obs::Counter)> = OnceLock::new();
    C.get_or_init(|| {
        let help = "steering-table cache lookups by result";
        (
            m2ai_obs::counter("m2ai_dsp_steering_cache_total", help, &[("result", "hit")]),
            m2ai_obs::counter("m2ai_dsp_steering_cache_total", help, &[("result", "miss")]),
        )
    })
}

/// Precomputed steering vectors over the estimator's angle grid.
///
/// [`pseudospectrum_from_correlation`] evaluates `a(θ)` at the same
/// `n_angles` grid points for every frame; this table computes them
/// once per array geometry and shares them (via `Arc`) across all
/// threads of the process.
///
/// **Invariance guarantee:** each entry is produced by calling
/// [`steering_vector`] itself at `θ = 180°·g/n_angles`, so `vector(g)`
/// is *bitwise identical* to the direct computation — caching can never
/// change a pseudospectrum.
#[derive(Debug, Clone)]
pub struct SteeringTable {
    vectors: Arc<Vec<Vec<Complex>>>,
}

impl SteeringTable {
    /// Fetches (or builds, on first use per geometry) the table for
    /// `config`'s grid.
    pub fn for_config(config: &MusicConfig) -> Self {
        let cache = STEERING_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("steering cache poisoned");
        let key = SteeringKey::of(config);
        let (hits, misses) = steering_cache_counters();
        if let Some(vectors) = map.get(&key) {
            hits.inc();
            return SteeringTable {
                vectors: vectors.clone(),
            };
        }
        misses.inc();
        let vectors = Arc::new(
            (0..config.n_angles)
                .map(|g| {
                    let theta = 180.0 * g as f64 / config.n_angles as f64;
                    steering_vector(config, theta)
                })
                .collect::<Vec<_>>(),
        );
        map.insert(key, vectors.clone());
        SteeringTable { vectors }
    }

    /// The steering vector of grid point `g` (angle `180°·g/n_angles`).
    pub fn vector(&self, g: usize) -> &[Complex] {
        &self.vectors[g]
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` if the grid is empty (never the case for a validated
    /// [`MusicConfig`]).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// Sample correlation matrix `R = (1/T)·Σ x xᴴ` (Eq. 10) of snapshots.
///
/// Each snapshot is one length-`N` observation across the array.
///
/// # Errors
///
/// * [`DspError::EmptyInput`] with no snapshots;
/// * [`DspError::DimensionMismatch`] if snapshots have differing lengths.
pub fn correlation_matrix(snapshots: &[Vec<Complex>]) -> Result<CMatrix, DspError> {
    let mut r = CMatrix::zeros(0, 0);
    correlation_matrix_into(snapshots, &mut r)?;
    Ok(r)
}

/// In-place variant of [`correlation_matrix`]: writes `R` into `out`,
/// reusing its storage across calls. Bitwise identical to the
/// allocating variant. On error, `out`'s contents are unspecified.
///
/// # Errors
///
/// See [`correlation_matrix`].
pub fn correlation_matrix_into(
    snapshots: &[Vec<Complex>],
    out: &mut CMatrix,
) -> Result<(), DspError> {
    let first = snapshots.first().ok_or(DspError::EmptyInput)?;
    let n = first.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    out.resize_to(n, n);
    for snap in snapshots {
        if snap.len() != n {
            return Err(DspError::DimensionMismatch(n, snap.len()));
        }
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] += snap[i] * snap[j].conj();
            }
        }
    }
    out.scale_in_place(Complex::new(1.0 / snapshots.len() as f64, 0.0));
    Ok(())
}

/// Sample correlation of the length-`len` window starting at `start` of
/// every snapshot, written into `out` — the same arithmetic (accumulate
/// every snapshot's outer product, then scale by `1/T`) and iteration
/// order as [`correlation_matrix`] on materialised sub-snapshots,
/// without allocating them.
///
/// Panics (like the slicing it replaces) if any snapshot is shorter
/// than `start + len`. `snapshots` must be non-empty.
fn windowed_correlation_into(
    snapshots: &[Vec<Complex>],
    start: usize,
    len: usize,
    out: &mut CMatrix,
) {
    out.resize_to(len, len);
    for snap in snapshots {
        let w = &snap[start..start + len];
        for i in 0..len {
            for j in 0..len {
                out[(i, j)] += w[i] * w[j].conj();
            }
        }
    }
    out.scale_in_place(Complex::new(1.0 / snapshots.len() as f64, 0.0));
}

/// Forward–backward averaging: `R_fb = (R + J·R*·J)/2` with `J` the
/// exchange matrix. Decorrelates up to two coherent sources.
pub fn forward_backward_average(r: &CMatrix) -> CMatrix {
    let mut out = CMatrix::zeros(0, 0);
    forward_backward_average_into(r, &mut out);
    out
}

/// In-place variant of [`forward_backward_average`]: writes `R_fb` into
/// `out`, reusing its storage. Bitwise identical to the allocating
/// variant. `out` must not alias `r`.
pub fn forward_backward_average_into(r: &CMatrix, out: &mut CMatrix) {
    let n = r.rows();
    out.resize_to(n, n);
    for i in 0..n {
        for j in 0..n {
            let flipped = r[(n - 1 - i, n - 1 - j)].conj();
            out[(i, j)] = (r[(i, j)] + flipped).scale(0.5);
        }
    }
}

/// Subarray spatial smoothing of snapshots.
///
/// Splits each length-`N` snapshot into `N - l + 1` overlapping
/// subarrays of length `l` and averages their correlation matrices,
/// restoring rank under coherent multipath at the cost of aperture.
///
/// # Errors
///
/// Propagates [`correlation_matrix`] errors;
/// [`DspError::InvalidParameter`] if `l` is out of `2..=N`.
pub fn spatially_smoothed_correlation(
    snapshots: &[Vec<Complex>],
    subarray_len: usize,
) -> Result<CMatrix, DspError> {
    let first = snapshots.first().ok_or(DspError::EmptyInput)?;
    let n = first.len();
    if subarray_len < 2 || subarray_len > n {
        return Err(DspError::InvalidParameter(
            "subarray_len must be in 2..=snapshot_len",
        ));
    }
    let n_sub = n - subarray_len + 1;
    let mut acc = CMatrix::zeros(subarray_len, subarray_len);
    let mut r = CMatrix::zeros(0, 0);
    for start in 0..n_sub {
        windowed_correlation_into(snapshots, start, subarray_len, &mut r);
        acc.add_in_place(&r)?;
    }
    acc.scale_in_place(Complex::new(1.0 / n_sub as f64, 0.0));
    Ok(acc)
}

/// Estimates the number of sources from sorted eigenvalues via MDL.
///
/// `n_snapshots` is the number of observations that produced the
/// correlation matrix. The result is in `0..=n-1`.
pub fn estimate_sources_mdl(eigenvalues: &[f64], n_snapshots: usize) -> usize {
    information_criterion(eigenvalues, n_snapshots, true)
}

/// Estimates the number of sources via AIC (tends to overestimate).
pub fn estimate_sources_aic(eigenvalues: &[f64], n_snapshots: usize) -> usize {
    information_criterion(eigenvalues, n_snapshots, false)
}

fn information_criterion(eigenvalues: &[f64], n_snapshots: usize, mdl: bool) -> usize {
    let n = eigenvalues.len();
    if n < 2 {
        return 0;
    }
    let t = n_snapshots.max(1) as f64;
    let floor = 1e-12 * eigenvalues.first().copied().unwrap_or(1.0).max(1e-300);
    let lam: Vec<f64> = eigenvalues.iter().map(|&l| l.max(floor)).collect();
    let mut best_k = 0usize;
    let mut best_score = f64::INFINITY;
    for k in 0..n {
        let tail = &lam[k..];
        let m = tail.len() as f64;
        let geo = tail.iter().map(|l| l.ln()).sum::<f64>() / m;
        let arith = tail.iter().sum::<f64>() / m;
        let log_ratio = geo - arith.ln(); // ln(gmean/amean) ≤ 0
        let fit = -t * m * log_ratio;
        let penalty_terms = k as f64 * (2.0 * n as f64 - k as f64);
        let penalty = if mdl {
            0.5 * penalty_terms * t.ln()
        } else {
            penalty_terms
        };
        let score = fit + penalty;
        if score < best_score {
            best_score = score;
            best_k = k;
        }
    }
    best_k
}

/// Computes the MUSIC pseudospectrum (Eq. 12) from raw array snapshots.
///
/// Applies (in order) spatial smoothing, forward–backward averaging,
/// diagonal loading, eigendecomposition, source counting and the grid
/// scan `P(θ) = 1 / (aᴴ(θ)·E_n·E_nᴴ·a(θ))`.
///
/// # Errors
///
/// Propagates configuration and numerical errors from the stages above.
pub fn pseudospectrum(
    snapshots: &[Vec<Complex>],
    config: &MusicConfig,
) -> Result<MusicSpectrum, DspError> {
    config.validate()?;
    let r = match config.smoothing_subarray {
        Some(l) => spatially_smoothed_correlation(snapshots, l)?,
        None => correlation_matrix(snapshots)?,
    };
    pseudospectrum_from_correlation(&r, snapshots.len(), config)
}

/// The subspace split shared by the exact and GEMM-lowered grid scans:
/// everything in [`pseudospectrum_from_correlation`] up to source
/// counting. The full eigensystem is handed back (rather than a
/// materialised noise matrix) so the GEMM path can pack its split-real
/// operand straight from the eigenvector columns without an
/// intermediate allocation; the exact path derives the noise matrix
/// exactly as before.
struct NoiseSubspace {
    /// Full eigensystem of the loaded, FB-averaged correlation.
    eig: crate::eigen::EigenDecomposition,
    /// Effective array size (rows of the correlation matrix).
    n: usize,
    /// Assumed number of sources.
    source_count: usize,
}

/// Forward–backward averaging, diagonal loading, eigendecomposition and
/// source counting — the exact-`f64` prefix of the pseudospectrum,
/// factored out so the GEMM-lowered scan shares it bitwise with the
/// per-angle loop (only the grid scan itself differs between the two).
fn noise_subspace_of(
    r: &CMatrix,
    n_snapshots: usize,
    config: &MusicConfig,
) -> Result<NoiseSubspace, DspError> {
    config.validate()?;
    let mut work = CMatrix::zeros(0, 0);
    if config.forward_backward {
        forward_backward_average_into(r, &mut work);
    } else {
        work.copy_from(r);
    }
    let mut r = work;
    let n = r.rows();
    // Diagonal loading keeps the eigensolver healthy on rank-deficient R.
    let load = config.diagonal_loading * (r.trace()?.re / n as f64).max(1e-300);
    for i in 0..n {
        r[(i, i)] += Complex::new(load, 0.0);
    }
    let eig = hermitian_eigen(&r)?;
    let m = match config.source_count {
        SourceCount::Fixed(m) => m.min(n.saturating_sub(1)),
        SourceCount::Mdl => estimate_sources_mdl(&eig.values, n_snapshots).clamp(1, n - 1),
        SourceCount::Aic => estimate_sources_aic(&eig.values, n_snapshots).clamp(1, n - 1),
    };
    Ok(NoiseSubspace {
        eig,
        n,
        source_count: m,
    })
}

/// Computes the MUSIC pseudospectrum from a pre-computed correlation
/// matrix (size may be the smoothed subarray size).
///
/// # Errors
///
/// See [`pseudospectrum`].
pub fn pseudospectrum_from_correlation(
    r: &CMatrix,
    n_snapshots: usize,
    config: &MusicConfig,
) -> Result<MusicSpectrum, DspError> {
    let sub = noise_subspace_of(r, n_snapshots, config)?;
    let (n, m) = (sub.n, sub.source_count);
    let noise = sub.eig.noise_subspace(m);

    // Build a subarray-sized view of the steering config; its steering
    // vectors come from the shared precomputed table (bitwise identical
    // to direct computation — see [`SteeringTable`]).
    let sub_cfg = MusicConfig {
        n_antennas: n,
        ..config.clone()
    };
    let table = SteeringTable::for_config(&sub_cfg);
    // Hoist the noise-subspace access out of the per-angle loop: pack
    // E_nᴴ row-major (`nh[j*n + i] = conj(E_n[i, j])`) once, so the grid
    // scan reads it sequentially instead of re-conjugating and striding
    // through the matrix `n_angles` times. The dot product below folds
    // from `Complex::ZERO` in ascending `i`, exactly like the
    // `Iterator::sum` it replaces — bitwise identical.
    let mut nh = vec![Complex::ZERO; noise.cols() * n];
    for j in 0..noise.cols() {
        for i in 0..n {
            nh[j * n + i] = noise[(i, j)].conj();
        }
    }
    let mut angles = Vec::with_capacity(config.n_angles);
    let mut power = Vec::with_capacity(config.n_angles);
    for g in 0..config.n_angles {
        let theta = 180.0 * g as f64 / config.n_angles as f64;
        let a = table.vector(g);
        // ‖E_nᴴ a‖²
        let mut denom = 0.0;
        for row in nh.chunks_exact(n) {
            let mut dot = Complex::ZERO;
            for (h, av) in row.iter().zip(a) {
                dot += *h * *av;
            }
            denom += dot.norm_sqr();
        }
        angles.push(theta);
        power.push(1.0 / denom.max(1e-12));
    }
    Ok(MusicSpectrum {
        angles_deg: angles,
        power,
        source_count: m,
    })
}

type PackedSteeringMap = HashMap<SteeringKey, Arc<Vec<f32>>>;

/// Process-wide cache of split-real packed steering matrices for the
/// GEMM-lowered scan, keyed like [`STEERING_CACHE`]. The packed matrix
/// is stored *transposed* (`2n × n_angles`, `f32`): row `i < n` holds
/// `Re a_g[i]` across the angle grid, row `n + i` holds `Im a_g[i]`.
/// With the angle grid as the wide contiguous dimension, the GEMM's
/// inner loops run 180-wide vectorised blocks instead of 180 skinny
/// rows — on 4-antenna subspaces that orientation is ~10× faster.
/// Derived from the shared [`SteeringTable`] (one rounding per entry).
static PACKED_STEERING_CACHE: OnceLock<Mutex<PackedSteeringMap>> = OnceLock::new();

/// Fetches (or builds, once per geometry) the packed transposed
/// steering matrix for `config`'s grid.
fn packed_steering(config: &MusicConfig) -> Arc<Vec<f32>> {
    let cache = PACKED_STEERING_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("packed steering cache poisoned");
    let key = SteeringKey::of(config);
    if let Some(packed) = map.get(&key) {
        return packed.clone();
    }
    let table = SteeringTable::for_config(config);
    let n = config.n_antennas;
    let n_angles = config.n_angles;
    let mut packed = vec![0.0f32; 2 * n * n_angles];
    for g in 0..n_angles {
        let a = table.vector(g);
        for (i, z) in a.iter().enumerate() {
            packed[i * n_angles + g] = z.re as f32;
            packed[(n + i) * n_angles + g] = z.im as f32;
        }
    }
    let packed = Arc::new(packed);
    map.insert(key, packed.clone());
    packed
}

/// GEMM-lowered variant of [`pseudospectrum_from_correlation`]: the
/// forward–backward average, diagonal loading, eigendecomposition and
/// source counting are the *same `f64` code path* (so `source_count`
/// always matches the exact scan), but the 180-bin grid scan is
/// evaluated as two packed `f32` GEMMs on `m2ai-kernels` instead of the
/// per-angle projection loop.
///
/// With `S` the packed steering matrix stored transposed (`2n ×
/// n_angles`: the top `n` rows are `Re a_g[i]`, the bottom `n` rows
/// `Im a_g[i]`) and `E` the noise subspace, the projection
/// `G[g, j] = Σ_i a_g[i]·conj(E[i, j])` splits into
///
/// ```text
/// (Re G)ᵀ = [ Re E ; Im E]ᵀ · S      (Im G)ᵀ = [-Im E ; Re E]ᵀ · S
/// ```
///
/// i.e. `c × n_angles` products whose *wide* dimension is the 180-bin
/// angle grid — the orientation the `f32` kernels vectorise
/// (tall-skinny `n_angles × c` outputs would run the scalar column
/// tail on every row). Both products run as ONE fused GEMM: the
/// real-part rows and imaginary-part rows are stacked into a single
/// `2c × 2n` operand, so one `2c × n_angles` product computes both
/// halves, and the denominator `‖column g‖²` is simply the column's
/// sum of squares over all `2c` rows, accumulated in `f64`. The only
/// precision loss versus the exact scan is the `f32` rounding of the
/// steering/noise operands and products, which perturbs each power
/// bin by a relative `O(ε_f32)` — the drift band documented (and
/// property-tested) by the streaming extractor that calls this.
///
/// Operand and output buffers come from `scratch` ([`KernelScratch`]
/// hands out zeroed buffers, which `gemm_nn`'s accumulate-into-C
/// contract requires).
///
/// # Errors
///
/// See [`pseudospectrum`].
pub fn pseudospectrum_from_correlation_gemm(
    r: &CMatrix,
    n_snapshots: usize,
    config: &MusicConfig,
    scratch: &mut m2ai_kernels::KernelScratch,
) -> Result<MusicSpectrum, DspError> {
    let mut power = Vec::new();
    let m = pseudospectrum_power_gemm_into(r, n_snapshots, config, scratch, &mut power)?;
    let n_angles = config.n_angles;
    let angles = (0..n_angles)
        .map(|g| 180.0 * g as f64 / n_angles as f64)
        .collect();
    Ok(MusicSpectrum {
        angles_deg: angles,
        power,
        source_count: m,
    })
}

/// Allocation-lean core of [`pseudospectrum_from_correlation_gemm`]:
/// writes the per-bin linear power into `power` (cleared and resized to
/// `config.n_angles`) and returns the estimated source count. Callers
/// on the per-window streaming hot path reuse `power` across calls and
/// skip the `MusicSpectrum` (angle grid + power vector) allocations.
///
/// # Errors
///
/// See [`pseudospectrum`].
pub fn pseudospectrum_power_gemm_into(
    r: &CMatrix,
    n_snapshots: usize,
    config: &MusicConfig,
    scratch: &mut m2ai_kernels::KernelScratch,
    power: &mut Vec<f64>,
) -> Result<usize, DspError> {
    let sub = noise_subspace_of(r, n_snapshots, config)?;
    let (n, m) = (sub.n, sub.source_count);
    let vecs = &sub.eig.vectors;
    let c = n - m;
    let sub_cfg = MusicConfig {
        n_antennas: n,
        ..config.clone()
    };
    let steering = packed_steering(&sub_cfg);
    let n_angles = config.n_angles;
    let k = 2 * n;
    let rows = 2 * c;

    // Fused split-real operand (2c × 2n), packed straight from the
    // noise eigenvector columns: row `j < c` is `[Re E[·,j] | Im
    // E[·,j]]` (real part of the projection), row `c + j` is
    // `[-Im E[·,j] | Re E[·,j]]` (imaginary part). For a steering
    // column `[Re a ; Im a]` and conj(E) = Re E − i·Im E:
    //   Re(a·conj(e)) = Re a·Re E + Im a·Im E
    //   Im(a·conj(e)) = Im a·Re E − Re a·Im E
    let mut a = scratch.take(rows * k);
    for j in 0..c {
        for i in 0..n {
            let e = vecs[(i, m + j)];
            a[j * k + i] = e.re as f32;
            a[j * k + n + i] = e.im as f32;
            a[(c + j) * k + i] = (-e.im) as f32;
            a[(c + j) * k + n + i] = e.re as f32;
        }
    }
    let mut g = scratch.take(rows * n_angles);
    m2ai_kernels::gemm_nn(rows, n_angles, k, &a, &steering, &mut g);

    // ‖column‖² over all 2c rows covers Re² + Im² in one pass.
    power.clear();
    power.resize(n_angles, 0.0);
    for row in g.chunks_exact(n_angles) {
        for (d, &v) in power.iter_mut().zip(row) {
            *d += v as f64 * v as f64;
        }
    }
    for d in power.iter_mut() {
        *d = 1.0 / d.max(1e-12);
    }
    scratch.recycle(g);
    scratch.recycle(a);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds snapshots for uncorrelated unit sources at the given angles
    /// with per-snapshot random-ish phases (deterministic LCG).
    fn synth_snapshots(
        config: &MusicConfig,
        angles: &[f64],
        n_snaps: usize,
        noise: f64,
    ) -> Vec<Vec<Complex>> {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            // splitmix64: well-mixed, unlike a raw LCG whose consecutive
            // outputs are correlated enough to fake a third source.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        (0..n_snaps)
            .map(|_| {
                let phases: Vec<f64> = angles
                    .iter()
                    .map(|_| next() * std::f64::consts::PI)
                    .collect();
                (0..config.n_antennas)
                    .map(|k| {
                        let mut z = Complex::ZERO;
                        for (a_idx, &ang) in angles.iter().enumerate() {
                            let sv = steering_vector(config, ang);
                            z += sv[k] * Complex::cis(phases[a_idx]);
                        }
                        z + Complex::new(noise * next(), noise * next())
                    })
                    .collect()
            })
            .collect()
    }

    fn test_config(n: usize) -> MusicConfig {
        MusicConfig {
            n_antennas: n,
            spacing_wavelengths: 0.25,
            round_trip: false,
            n_angles: 360,
            forward_backward: true,
            smoothing_subarray: None,
            source_count: SourceCount::Fixed(1),
            diagonal_loading: 1e-9,
        }
    }

    #[test]
    fn single_source_peak_at_true_angle() {
        let cfg = test_config(4);
        for true_angle in [40.0, 90.0, 125.0] {
            let snaps = synth_snapshots(&cfg, &[true_angle], 64, 0.01);
            let spec = pseudospectrum(&snaps, &cfg).unwrap();
            let peaks = spec.peaks(1, 5.0);
            assert!(!peaks.is_empty());
            assert!(
                (peaks[0].0 - true_angle).abs() < 2.0,
                "expected {true_angle}, got {}",
                peaks[0].0
            );
        }
    }

    #[test]
    fn two_sources_resolved() {
        let mut cfg = test_config(6);
        cfg.source_count = SourceCount::Fixed(2);
        let snaps = synth_snapshots(&cfg, &[50.0, 120.0], 128, 0.02);
        let spec = pseudospectrum(&snaps, &cfg).unwrap();
        let peaks = spec.peaks(2, 10.0);
        assert_eq!(peaks.len(), 2);
        let mut got: Vec<f64> = peaks.iter().map(|p| p.0).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((got[0] - 50.0).abs() < 3.0, "got {got:?}");
        assert!((got[1] - 120.0).abs() < 3.0, "got {got:?}");
    }

    #[test]
    fn mdl_counts_sources() {
        let mut cfg = test_config(6);
        cfg.source_count = SourceCount::Mdl;
        let snaps = synth_snapshots(&cfg, &[45.0, 110.0], 256, 0.05);
        let r = correlation_matrix(&snaps).unwrap();
        let eig = hermitian_eigen(&r).unwrap();
        let m = estimate_sources_mdl(&eig.values, snaps.len());
        assert_eq!(m, 2, "eigenvalues {:?}", eig.values);
    }

    #[test]
    fn aic_at_least_mdl() {
        let lam = [10.0, 8.0, 0.1, 0.09, 0.11];
        let mdl = estimate_sources_mdl(&lam, 200);
        let aic = estimate_sources_aic(&lam, 200);
        assert!(aic >= mdl);
        assert_eq!(mdl, 2);
    }

    #[test]
    fn round_trip_doubles_phase_sensitivity() {
        let one_way = MusicConfig {
            round_trip: false,
            ..test_config(4)
        };
        let two_way = MusicConfig {
            round_trip: true,
            ..test_config(4)
        };
        let sv1 = steering_vector(&one_way, 40.0);
        let sv2 = steering_vector(&two_way, 40.0);
        let d1 = (sv1[1] / sv1[0]).arg();
        let d2 = (sv2[1] / sv2[0]).arg();
        // Phase advance doubles (mod 2π).
        let wrapped = crate::phase::wrap(2.0 * d1);
        assert!((crate::phase::wrap(d2 - wrapped)).abs() < 1e-9);
    }

    #[test]
    fn smoothing_resolves_coherent_paths() {
        // Two fully coherent paths (identical per-snapshot phase): plain
        // MUSIC fails (rank-1 R), FB + smoothing recovers both.
        let base = MusicConfig {
            n_antennas: 6,
            spacing_wavelengths: 0.25,
            round_trip: false,
            n_angles: 360,
            forward_backward: true,
            smoothing_subarray: Some(4),
            source_count: SourceCount::Fixed(2),
            diagonal_loading: 1e-9,
        };
        let angles = [60.0, 115.0];
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let snaps: Vec<Vec<Complex>> = (0..128)
            .map(|_| {
                let common = Complex::cis(next() * std::f64::consts::PI);
                (0..base.n_antennas)
                    .map(|k| {
                        let mut z = Complex::ZERO;
                        for &ang in &angles {
                            let sv = steering_vector(&base, ang);
                            // same `common` factor → coherent
                            z += sv[k] * common;
                        }
                        z + Complex::new(0.01 * next(), 0.01 * next())
                    })
                    .collect()
            })
            .collect();
        let spec = pseudospectrum(&snaps, &base).unwrap();
        let peaks = spec.peaks(2, 10.0);
        assert_eq!(peaks.len(), 2, "peaks {peaks:?}");
        let mut got: Vec<f64> = peaks.iter().map(|p| p.0).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((got[0] - 60.0).abs() < 6.0, "got {got:?}");
        assert!((got[1] - 115.0).abs() < 6.0, "got {got:?}");
    }

    #[test]
    fn normalized_peaks_at_one() {
        let cfg = test_config(4);
        let snaps = synth_snapshots(&cfg, &[75.0], 32, 0.01);
        let spec = pseudospectrum(&snaps, &cfg).unwrap().normalized();
        let max = spec.power.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(spec.power.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn config_validation() {
        let mut cfg = MusicConfig::paper_default();
        assert!(cfg.validate().is_ok());
        cfg.n_antennas = 1;
        assert!(cfg.validate().is_err());
        let mut cfg2 = MusicConfig::paper_default();
        cfg2.smoothing_subarray = Some(9);
        assert!(cfg2.validate().is_err());
        let mut cfg3 = MusicConfig::paper_default();
        cfg3.spacing_wavelengths = 0.0;
        assert!(cfg3.validate().is_err());
    }

    #[test]
    fn correlation_matrix_errors() {
        assert_eq!(correlation_matrix(&[]), Err(DspError::EmptyInput));
        let bad = vec![vec![Complex::ONE; 3], vec![Complex::ONE; 2]];
        assert!(correlation_matrix(&bad).is_err());
    }

    #[test]
    fn correlation_matrix_is_hermitian_psd() {
        let cfg = test_config(4);
        let snaps = synth_snapshots(&cfg, &[80.0], 16, 0.5);
        let r = correlation_matrix(&snaps).unwrap();
        assert!(r.is_hermitian(1e-10));
        let eig = hermitian_eigen(&r).unwrap();
        assert!(eig.values.iter().all(|&l| l > -1e-9));
    }

    #[test]
    fn forward_backward_preserves_hermitian() {
        let cfg = test_config(5);
        let snaps = synth_snapshots(&cfg, &[30.0, 140.0], 32, 0.1);
        let r = correlation_matrix(&snaps).unwrap();
        let fb = forward_backward_average(&r);
        assert!(fb.is_hermitian(1e-10));
        // Trace preserved.
        assert!((fb.trace().unwrap().re - r.trace().unwrap().re).abs() < 1e-9);
    }

    #[test]
    fn steering_table_matches_direct_computation_bitwise() {
        for cfg in [
            MusicConfig::paper_default(),
            test_config(3),
            MusicConfig {
                n_antennas: 2,
                spacing_wavelengths: 0.5,
                round_trip: true,
                n_angles: 91,
                ..MusicConfig::paper_default()
            },
        ] {
            let table = SteeringTable::for_config(&cfg);
            assert_eq!(table.len(), cfg.n_angles);
            assert!(!table.is_empty());
            for g in 0..cfg.n_angles {
                let theta = 180.0 * g as f64 / cfg.n_angles as f64;
                let direct = steering_vector(&cfg, theta);
                let cached = table.vector(g);
                assert_eq!(cached.len(), direct.len());
                for (c, d) in cached.iter().zip(&direct) {
                    assert_eq!(c.re.to_bits(), d.re.to_bits());
                    assert_eq!(c.im.to_bits(), d.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn steering_table_is_shared_per_geometry() {
        let cfg = test_config(5);
        let a = SteeringTable::for_config(&cfg);
        let b = SteeringTable::for_config(&cfg);
        assert!(
            Arc::ptr_eq(&a.vectors, &b.vectors),
            "same geometry must share"
        );
        let mut other = cfg.clone();
        other.spacing_wavelengths = 0.3;
        let c = SteeringTable::for_config(&other);
        assert!(!Arc::ptr_eq(&a.vectors, &c.vectors));
    }

    #[test]
    fn peaks_respect_separation() {
        let spec = MusicSpectrum {
            angles_deg: (0..10).map(|i| i as f64).collect(),
            power: vec![0.0, 5.0, 0.0, 4.9, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0],
            source_count: 2,
        };
        let peaks = spec.peaks(3, 3.0);
        // 5.0 at angle 1 wins; 4.9 at angle 3 suppressed (within 3°); 3.0 kept.
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].0, 1.0);
        assert_eq!(peaks[1].0, 7.0);
    }

    /// Relative agreement bound for the `f32` GEMM scan against the
    /// exact `f64` per-angle loop. The operands are unit-magnitude
    /// steering entries against orthonormal noise eigenvectors, so each
    /// power bin agrees to a small multiple of `f32` epsilon; 1e-3 gives
    /// generous slack over that.
    const GEMM_SCAN_REL_TOL: f64 = 1e-3;

    fn assert_gemm_scan_matches(snaps: &[Vec<Complex>], cfg: &MusicConfig) {
        let r = match cfg.smoothing_subarray {
            Some(l) => spatially_smoothed_correlation(snaps, l).unwrap(),
            None => correlation_matrix(snaps).unwrap(),
        };
        let exact = pseudospectrum_from_correlation(&r, snaps.len(), cfg).unwrap();
        let mut scratch = m2ai_kernels::KernelScratch::new();
        let fast =
            pseudospectrum_from_correlation_gemm(&r, snaps.len(), cfg, &mut scratch).unwrap();
        assert_eq!(fast.source_count, exact.source_count, "same f64 prefix");
        assert_eq!(fast.angles_deg, exact.angles_deg);
        for (g, (&pf, &pe)) in fast.power.iter().zip(&exact.power).enumerate() {
            let rel = (pf - pe).abs() / pe.abs().max(1e-300);
            assert!(
                rel < GEMM_SCAN_REL_TOL,
                "bin {g}: exact {pe}, gemm {pf}, rel {rel}"
            );
        }
    }

    #[test]
    fn gemm_scan_matches_exact_scan_on_both_backends() {
        let configs = [
            MusicConfig::paper_default(),
            MusicConfig {
                source_count: SourceCount::Aic,
                smoothing_subarray: None,
                ..MusicConfig::paper_default()
            },
            MusicConfig {
                n_antennas: 6,
                smoothing_subarray: Some(4),
                source_count: SourceCount::Fixed(2),
                ..test_config(6)
            },
        ];
        let initial = m2ai_kernels::backend();
        for backend in [
            m2ai_kernels::Backend::Reference,
            m2ai_kernels::Backend::Fast,
        ] {
            m2ai_kernels::set_backend(backend);
            for cfg in &configs {
                let snaps = synth_snapshots(cfg, &[55.0, 120.0], 48, 0.05);
                assert_gemm_scan_matches(&snaps, cfg);
            }
        }
        m2ai_kernels::set_backend(initial);
    }

    #[test]
    fn gemm_scan_scratch_reuse_is_deterministic() {
        let cfg = MusicConfig::paper_default();
        let snaps = synth_snapshots(&cfg, &[80.0], 32, 0.02);
        let r = spatially_smoothed_correlation(&snaps, 3).unwrap();
        let mut scratch = m2ai_kernels::KernelScratch::new();
        let first =
            pseudospectrum_from_correlation_gemm(&r, snaps.len(), &cfg, &mut scratch).unwrap();
        // Second run reuses recycled (dirtied, then re-zeroed) buffers.
        let second =
            pseudospectrum_from_correlation_gemm(&r, snaps.len(), &cfg, &mut scratch).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn gemm_scan_propagates_validation_errors() {
        let cfg = MusicConfig {
            n_antennas: 1,
            ..MusicConfig::paper_default()
        };
        let r = CMatrix::zeros(1, 1);
        let mut scratch = m2ai_kernels::KernelScratch::new();
        assert!(pseudospectrum_from_correlation_gemm(&r, 4, &cfg, &mut scratch).is_err());
    }
}
