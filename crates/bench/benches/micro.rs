//! Criterion micro-benchmarks: the per-stage costs behind the paper's
//! "realtime" claim (Section V). One antenna round is 100 ms, so every
//! per-frame stage must come in far below that.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::dataset::{learn_calibration, ExperimentConfig};
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_core::stream_extract::{StreamExtractor, StreamingExtract};
use m2ai_dsp::eigen::hermitian_eigen;
use m2ai_dsp::fft::fft;
use m2ai_dsp::music::{
    correlation_matrix, pseudospectrum, steering_vector, MusicConfig, SourceCount, SteeringTable,
};
use m2ai_dsp::Complex;
use m2ai_nn::Parameterized;
use m2ai_rfsim::geometry::Point2;
use m2ai_rfsim::reader::{Reader, ReaderConfig};
use m2ai_rfsim::room::Room;
use m2ai_rfsim::scene::SceneSnapshot;
use std::hint::black_box;

fn synth_snapshots(n_ant: usize, n_snaps: usize) -> Vec<Vec<Complex>> {
    (0..n_snaps)
        .map(|t| {
            (0..n_ant)
                .map(|k| Complex::cis(0.3 * t as f64 + 0.7 * k as f64))
                .collect()
        })
        .collect()
}

fn bench_dsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsp");
    for n in [256usize, 1024] {
        let x: Vec<Complex> = (0..n).map(|t| Complex::cis(0.1 * t as f64)).collect();
        g.bench_function(format!("fft_{n}"), |b| b.iter(|| fft(black_box(&x))));
    }
    let snaps = synth_snapshots(4, 16);
    let r = correlation_matrix(&snaps).unwrap();
    g.bench_function("hermitian_eigen_4x4", |b| {
        b.iter(|| hermitian_eigen(black_box(&r)).unwrap())
    });
    let cfg = MusicConfig {
        source_count: SourceCount::Fixed(2),
        ..MusicConfig::paper_default()
    };
    g.bench_function("music_pseudospectrum_180", |b| {
        b.iter(|| pseudospectrum(black_box(&snaps), &cfg).unwrap())
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("rfsim");
    let scene = SceneSnapshot::with_tags(vec![
        Point2::new(4.0, 4.0),
        Point2::new(5.5, 3.5),
        Point2::new(6.0, 4.5),
        Point2::new(4.5, 5.0),
        Point2::new(5.0, 4.2),
        Point2::new(6.5, 3.8),
    ]);
    g.bench_function("inventory_round_6tags_lab", |b| {
        let mut reader = Reader::new(Room::laboratory(), ReaderConfig::default(), 6);
        let mut t = 0.0;
        b.iter(|| {
            t += 0.1;
            black_box(reader.inventory_round(&scene, t))
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);

    // Pre-record 2 s of readings from the paper-default scene.
    let config = ExperimentConfig::paper_default();
    let room = config.room.build();
    let mut reader = Reader::new(
        room,
        ReaderConfig {
            n_antennas: 4,
            seed: config.seed,
            ..ReaderConfig::default()
        },
        6,
    );
    let scene = SceneSnapshot::with_tags(vec![
        Point2::new(5.5, 4.0),
        Point2::new(5.7, 4.2),
        Point2::new(5.9, 4.1),
        Point2::new(8.0, 4.3),
        Point2::new(8.2, 4.5),
        Point2::new(8.4, 4.2),
    ]);
    let readings = reader.run(|_| scene.clone(), 2.0);
    let layout = FrameLayout::new(6, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(6, 4), 0.4);
    g.bench_function("build_frame_6tags_joint", |b| {
        b.iter(|| builder.build_frame(black_box(&readings), 0.4))
    });

    let mut cal_config = config.clone();
    cal_config.samples_per_class = 1;
    g.bench_function("learn_calibration_21s", |b| {
        b.iter(|| learn_calibration(black_box(&cal_config)))
    });
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("extraction");
    g.sample_size(10);

    // Same paper-default 6-tag recording as `bench_pipeline`, but long
    // enough to cut 12 frames, so the serial-vs-parallel comparison runs
    // over a realistic whole-sample workload.
    let config = ExperimentConfig::paper_default();
    let room = config.room.build();
    let mut reader = Reader::new(
        room,
        ReaderConfig {
            n_antennas: 4,
            seed: config.seed,
            ..ReaderConfig::default()
        },
        6,
    );
    let scene = SceneSnapshot::with_tags(vec![
        Point2::new(5.5, 4.0),
        Point2::new(5.7, 4.2),
        Point2::new(5.9, 4.1),
        Point2::new(8.0, 4.3),
        Point2::new(8.2, 4.5),
        Point2::new(8.4, 4.2),
    ]);
    let readings = reader.run(|_| scene.clone(), 5.0);
    let layout = FrameLayout::new(6, 4, FeatureMode::Joint);
    for threads in [1usize, 4] {
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(6, 4), 0.4)
            .with_parallelism(threads);
        g.bench_function(format!("build_sample_12frames_{threads}threads"), |b| {
            b.iter(|| builder.build_sample(black_box(&readings), 0.0, 12))
        });
    }

    // Overlapping window advance (hop = one round, frame = four): the
    // batch path rebuilds each window from the sorted buffer; the
    // streaming path ingests the stream once and slides with rank-1
    // covariance updates + the GEMM pseudospectrum scan.
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(6, 4), 0.4);
    let mut sorted = readings.clone();
    sorted.sort_by(|a, b| {
        (a.time_s, a.tag.0, a.antenna, a.channel)
            .partial_cmp(&(b.time_s, b.tag.0, b.antenna, b.channel))
            .expect("reader times are finite")
    });
    sorted.dedup_by_key(|r| (r.time_s, r.tag.0, r.antenna, r.channel));
    let starts: Vec<f64> = (0..20).map(|k| k as f64 * 0.1).collect();
    g.bench_function("window_advance_batch_20hops", |b| {
        b.iter(|| {
            for &t0 in &starts {
                black_box(builder.build_frame_with_quality(black_box(&sorted), t0));
            }
        })
    });
    g.bench_function("window_advance_stream_20hops", |b| {
        b.iter(|| {
            let mut ex = StreamExtractor::try_new(&builder, StreamingExtract { refresh_every: 8 })
                .expect("joint layout at an aligned frame length supports streaming");
            for r in &sorted {
                ex.ingest(r);
            }
            for &t0 in &starts {
                black_box(ex.extract(t0));
            }
        })
    });

    // Steering-vector table hit vs recomputing the 180-angle grid
    // directly — the saving the cache buys on every pseudospectrum.
    let cfg = MusicConfig::paper_default();
    let n_angles = cfg.n_angles;
    g.bench_function("steering_grid_direct_180", |b| {
        b.iter(|| {
            for gbin in 0..n_angles {
                let theta = 180.0 * gbin as f64 / n_angles as f64;
                black_box(steering_vector(black_box(&cfg), theta));
            }
        })
    });
    g.bench_function("steering_grid_table_hit_180", |b| {
        b.iter(|| {
            let table = SteeringTable::for_config(black_box(&cfg));
            for gbin in 0..n_angles {
                black_box(table.vector(gbin));
            }
        })
    });
    g.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    let layout = FrameLayout::new(6, 4, FeatureMode::Joint);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    let frames = vec![vec![0.1f32; layout.frame_dim()]; 12];
    g.bench_function("inference_12frames", |b| {
        b.iter(|| model.predict(black_box(&frames)))
    });
    g.bench_function("train_step_1sample", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| {
                m.zero_grad();
                black_box(m.loss_and_backprop(&frames, 3))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dsp,
    bench_simulator,
    bench_pipeline,
    bench_extraction,
    bench_network
);
criterion_main!(benches);
