//! `cargo bench` figure regeneration (fast budget).
//!
//! Runs every experiment of the paper's evaluation at the `Fast`
//! budget: the same code paths as the full harness
//! (`cargo run --release -p m2ai-bench --bin experiments -- all`),
//! with smaller datasets and fewer epochs so a bench run stays in the
//! minutes range. Absolute accuracies are below the full-budget run;
//! orderings still show. Full-budget numbers are recorded in
//! EXPERIMENTS.md.

fn main() {
    // Respect `cargo bench -- --test` style filters minimally: any arg
    // selects a single figure.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = m2ai_bench::Budget::Fast;
    let chosen: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("fig") || *a == "all" || *a == "table1")
        .map(String::as_str)
        .collect();
    if chosen.is_empty() {
        m2ai_bench::run_all(budget);
    } else {
        for c in chosen {
            match c {
                "fig2" => m2ai_bench::fig2(budget),
                "fig3" => m2ai_bench::fig3(budget),
                "fig9" | "table1" => m2ai_bench::fig9_and_table1(budget),
                "fig10" => m2ai_bench::fig10(budget),
                "fig11" => m2ai_bench::fig11(budget),
                "fig12" => m2ai_bench::fig12(budget),
                "fig13" => m2ai_bench::fig13(budget),
                "fig14" => m2ai_bench::fig14(budget),
                "fig15" => m2ai_bench::fig15(budget),
                "fig16" => m2ai_bench::fig16(budget),
                "fig17" => m2ai_bench::fig17(budget),
                _ => m2ai_bench::run_all(budget),
            }
        }
    }
}
