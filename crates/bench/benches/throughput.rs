//! Criterion wrapper around the throughput workload: the same three
//! rates `experiments -- throughput` measures, under criterion's
//! statistics, plus the fast-vs-reference training pair that exposes
//! the GEMM-lowering speedup directly.
//!
//! The regression *gate* lives in `m2ai_bench::throughput::check` (run
//! via `experiments -- throughput --check`); this target exists for
//! interactive profiling of the same code paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use m2ai_bench::throughput;
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_kernels::{self as kernels, Backend};
use m2ai_nn::Parameterized;
use m2ai_rfsim::geometry::Point2;
use m2ai_rfsim::reader::{Reader, ReaderConfig};
use m2ai_rfsim::room::Room;
use m2ai_rfsim::scene::SceneSnapshot;
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);

    let mut reader = Reader::new(
        Room::laboratory(),
        ReaderConfig {
            n_antennas: 4,
            seed: 11,
            ..ReaderConfig::default()
        },
        6,
    );
    let scene = SceneSnapshot::with_tags(vec![
        Point2::new(5.5, 4.0),
        Point2::new(5.7, 4.2),
        Point2::new(5.9, 4.1),
        Point2::new(8.0, 4.3),
        Point2::new(8.2, 4.5),
        Point2::new(8.4, 4.2),
    ]);
    let readings = reader.run(|_| scene.clone(), 5.0);
    let layout = FrameLayout::new(6, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(6, 4), 0.4);
    let frames = builder.build_sample(&readings, 0.0, 12);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);

    g.bench_function("extract_sample_12frames", |b| {
        b.iter(|| builder.build_sample(black_box(&readings), 0.0, 12))
    });
    g.bench_function("predict_sample", |b| {
        b.iter(|| model.predict(black_box(&frames)))
    });
    for (label, backend) in [
        ("train_step_fast", Backend::Fast),
        ("train_step_reference", Backend::Reference),
    ] {
        g.bench_function(label, |b| {
            kernels::set_backend(backend);
            b.iter_batched(
                || model.clone(),
                |mut m| {
                    m.zero_grad();
                    black_box(m.loss_and_backprop(&frames, 3))
                },
                BatchSize::SmallInput,
            );
            kernels::set_backend(Backend::Fast);
        });
    }
    g.finish();

    // One full gate-style measurement so `cargo bench --bench
    // throughput` also prints the summary rates next to the stats.
    throughput::run();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
