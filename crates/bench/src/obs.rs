//! Observability smoke harness (`experiments obs`) and the
//! `--metrics-out` exporter shared by every subcommand.
//!
//! The smoke run drives a miniature read → extract → serve → train
//! workload purely to light up the pipeline's instrumentation, then
//! checks the registry against [`REQUIRED_METRICS`], validates both
//! exporters (JSON snapshot and Prometheus text) with the linters from
//! `m2ai-obs`, and fails loudly on any gap — the CI job that runs it
//! is the golden-schema gate for the metrics surface.

use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_core::online::HealthConfig;
use m2ai_core::serve::{ServeConfig, ServeEngine};
use m2ai_core::stream_extract::StreamingExtract;
use m2ai_obs::export::{
    prometheus_text, snapshot_json, validate_prometheus, validate_snapshot_json,
};
use m2ai_rfsim::fault::FaultPlan;
use m2ai_rfsim::geometry::Point2;
use m2ai_rfsim::reader::{Reader, ReaderConfig};
use m2ai_rfsim::room::Room;
use m2ai_rfsim::scene::SceneSnapshot;

use crate::header;

/// Metric families every export must carry after the smoke workload —
/// the golden schema of the instrumentation surface. Adding a metric
/// to the pipeline means adding it here (and to DESIGN.md).
pub const REQUIRED_METRICS: &[&str] = &[
    "m2ai_reader_reads_total",
    "m2ai_reader_faults_total",
    "m2ai_dsp_steering_cache_total",
    "m2ai_extract_stage_seconds",
    "m2ai_extract_stream_updates_total",
    "m2ai_extract_stream_refreshes_total",
    "m2ai_extract_stream_scan_seconds",
    "m2ai_par_tasks_total",
    "m2ai_motion_catalog_builds_total",
    "m2ai_kernels_backend_active",
    "m2ai_kernels_gemm_seconds",
    "m2ai_kernels_tile_tasks_total",
    "m2ai_kernels_quant_calib_absmax",
    "m2ai_nn_fit_epochs_total",
    "m2ai_nn_batches_skipped_total",
    "m2ai_nn_rollbacks_total",
    "m2ai_nn_forward_seconds",
    "m2ai_core_frame_coverage_ratio",
    "m2ai_core_fallback_patches_total",
    "m2ai_core_health_transitions_total",
    "m2ai_serve_queue_depth",
    "m2ai_serve_shed_total",
    "m2ai_serve_rejections_total",
    "m2ai_serve_batch_size",
    "m2ai_serve_tick_seconds",
    "m2ai_serve_prediction_seconds",
    "m2ai_serve_predictions_total",
    "m2ai_fabric_ingress_depth",
    "m2ai_fabric_ingress_shed_total",
    "m2ai_fabric_ingress_wait_seconds",
    "m2ai_fabric_sessions",
    "m2ai_fabric_predictions_total",
    "m2ai_fabric_tick_seconds",
    "m2ai_fabric_spill_total",
    "m2ai_fabric_rejections_total",
    "m2ai_fabric_heartbeats_total",
    "m2ai_fabric_restarts_total",
    "m2ai_fabric_checkpoints_total",
    "m2ai_fabric_checkpoint_seconds",
    "m2ai_fabric_quarantined_total",
    "m2ai_fabric_recovery_seconds",
    "m2ai_trace_spans_total",
    "m2ai_trace_dropped_total",
    "m2ai_flightrec_dumps_total",
    "m2ai_slo_burn_rate",
];

/// Counter families that must be *non-zero* after the smoke workload
/// (presence alone would also pass for a silently-dead instrument).
const NONZERO_COUNTERS: &[&str] = &[
    "m2ai_reader_reads_total",
    "m2ai_reader_faults_total",
    "m2ai_dsp_steering_cache_total",
    "m2ai_extract_stream_updates_total",
    "m2ai_extract_stream_refreshes_total",
    "m2ai_par_tasks_total",
    "m2ai_motion_catalog_builds_total",
    "m2ai_kernels_tile_tasks_total",
    "m2ai_nn_fit_epochs_total",
    "m2ai_core_health_transitions_total",
    "m2ai_serve_predictions_total",
    "m2ai_fabric_predictions_total",
    "m2ai_fabric_heartbeats_total",
    "m2ai_fabric_restarts_total",
    "m2ai_fabric_checkpoints_total",
    "m2ai_trace_spans_total",
    "m2ai_trace_dropped_total",
    "m2ai_flightrec_dumps_total",
];

/// Histogram families that must have observations after the smoke
/// workload.
const NONZERO_HISTOGRAMS: &[&str] = &[
    "m2ai_extract_stage_seconds",
    "m2ai_extract_stream_scan_seconds",
    "m2ai_kernels_gemm_seconds",
    "m2ai_kernels_quant_calib_absmax",
    "m2ai_nn_forward_seconds",
    "m2ai_core_frame_coverage_ratio",
    "m2ai_serve_batch_size",
    "m2ai_serve_tick_seconds",
    "m2ai_serve_prediction_seconds",
    "m2ai_fabric_tick_seconds",
    "m2ai_fabric_checkpoint_seconds",
    "m2ai_fabric_recovery_seconds",
    "m2ai_fabric_ingress_wait_seconds",
];

/// Drives a miniature end-to-end workload that touches every
/// instrumented stage: a faulty reader stream with a silence gap
/// through a serve engine (read/extract/serve metrics, health
/// transitions, steering cache), one tiny training run (nn fit
/// counters), one replay forward pass, and a scenario-catalogue build.
pub fn smoke_workload() {
    m2ai_kernels::set_backend(m2ai_kernels::Backend::Fast);
    let _ = m2ai_motion::activity::catalog(2);

    let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);

    // Faulty stream with a 3 s gap: Healthy → Degraded/Stale →
    // recovery, plus reader fault and steering-cache traffic.
    let mut eng = ServeEngine::new(
        model.clone(),
        builder,
        ServeConfig {
            history_len: 2,
            health: HealthConfig {
                stale_timeout_s: 1.0,
                ..Default::default()
            },
            // Streaming raw ingest with a short refresh cadence so the
            // stream add/retire counters, the refresh counter and the
            // GEMM-scan histogram all fire within the smoke window.
            streaming: Some(StreamingExtract { refresh_every: 2 }),
            ..ServeConfig::default()
        },
    );
    let id = eng.open_session().expect("fresh engine has capacity");
    // Intensity 0.25: faults fire (the fault counters must move) but
    // enough complete 4-antenna snapshot rounds survive that several
    // windows reach MUSIC — so the steering-table cache records hits,
    // not just the first-build miss.
    let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1)
        .with_fault_plan(FaultPlan::with_intensity(0.25, 7));
    let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
    let readings = reader.run(|_| scene.clone(), 7.0);
    let before: Vec<_> = readings
        .iter()
        .filter(|r| r.time_s < 2.0)
        .cloned()
        .collect();
    let after: Vec<_> = readings
        .iter()
        .filter(|r| r.time_s >= 5.0)
        .cloned()
        .collect();
    eng.push(id, &before).expect("session open");
    eng.drain();
    eng.push(id, &after).expect("session open");
    eng.drain();

    // A two-shard fabric over the same model: per-shard ingress /
    // session / prediction / tick families plus the fabric-wide
    // spill and rejection counters (registered on construction).
    // Tracing samples everything during the fabric segment so the
    // trace-span counter, the ingress-wait histogram and (via the
    // kill below) the flight-recorder dump counter all move.
    let prev_trace = m2ai_obs::trace::trace_config();
    m2ai_obs::trace::set_trace_config(m2ai_obs::trace::TraceConfig { sample_one_in_n: 1 });
    let fabric = m2ai_serve_fabric::ServeFabric::new(
        model.clone(),
        FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5),
        m2ai_serve_fabric::FabricConfig {
            shards: 2,
            vnodes: 16,
            ingress_capacity: 64,
            serve: ServeConfig {
                history_len: 2,
                ..ServeConfig::default()
            },
            supervision: Default::default(),
        },
    );
    let dim = layout.frame_dim();
    for s in 0..3u64 {
        let key = fabric.open_session().expect("fresh fabric has capacity");
        for t in 0..4usize {
            let frame: Vec<f32> = (0..dim)
                .map(|d| 0.1 + 0.01 * ((s as usize + t + d) % 7) as f32)
                .collect();
            let _ = fabric
                .push_frame(
                    key,
                    t as f64 * 0.5,
                    frame,
                    m2ai_core::online::HealthState::Healthy,
                )
                .expect("session open");
        }
    }
    fabric.flush();
    // Supervision families: an explicit checkpoint (checkpoint counter
    // + latency histogram), then a kill + supervised restart (restart
    // counter + recovery histogram; heartbeats tick throughout).
    fabric
        .checkpoint_now()
        .expect("live shards must checkpoint");
    fabric.kill_shard(0).expect("shard 0 is alive");
    let t0 = std::time::Instant::now();
    while !(fabric.restarts() >= 1 && fabric.shard_alive(0)) {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "smoke workload: supervisor never restarted the killed shard"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    fabric.flush();
    fabric.shutdown();
    // Overflow the span collector on purpose (tiny capacity, one
    // burst, restore) so the dropped-span counter is provably alive.
    m2ai_obs::trace::set_trace_capacity(2);
    for _ in 0..8 {
        let ctx = m2ai_obs::trace::begin_trace();
        ctx.child("smoke_overflow").end();
    }
    m2ai_obs::trace::flush_thread_spans();
    m2ai_obs::trace::set_trace_capacity(1 << 16);
    m2ai_obs::trace::set_trace_config(prev_trace);
    // One SLO evaluation over the serve latency histogram publishes
    // the burn-rate gauge.
    if let Some(m2ai_obs::MetricValue::Histogram(h)) =
        m2ai_obs::find("m2ai_serve_prediction_seconds", &[])
    {
        let mut slo = m2ai_obs::SloMonitor::new(m2ai_obs::SloSpec {
            name: "smoke",
            target_latency_s: 0.1,
            error_budget: 0.01,
        });
        let now = m2ai_obs::trace::clock_us();
        slo.observe(
            now.saturating_sub(1_000_000),
            m2ai_obs::HistogramSnapshot {
                buckets: vec![0; h.buckets.len()],
                count: 0,
                sum: 0.0,
                bounds: h.bounds.clone(),
            },
        );
        slo.observe(now, h);
        let _ = slo.evaluate(
            now,
            &[m2ai_obs::BurnWindow {
                window_us: 1_000_000,
                threshold: 10.0,
            }],
        );
    }

    // One-epoch fit on two synthetic samples + one replay forward:
    // the nn counters and the replay-path latency histogram.
    let dim = FrameLayout::new(1, 4, FeatureMode::Joint).frame_dim();
    let samples: Vec<(Vec<Vec<f32>>, usize)> = (0..2)
        .map(|i| (vec![vec![0.1 + 0.05 * i as f32; dim]; 2], i))
        .collect();
    let mut fit_model = model.clone();
    let _ = m2ai_nn::train::fit(
        &mut fit_model,
        &samples,
        &m2ai_nn::train::TrainConfig {
            epochs: 1,
            n_threads: 1,
            ..Default::default()
        },
    );
    let mut scratch = m2ai_kernels::KernelScratch::new();
    let _ = model.predict_proba_with(&samples[0].0, &mut scratch);

    // One tile-parallel GEMM past the worthwhile floor (tile-task
    // counter) and one calibration pass (quant range histograms).
    let (m, n, k) = (160, 128, 64);
    let a = vec![0.01f32; m * k];
    let b = vec![0.02f32; k * n];
    let mut c = vec![0.0f32; m * n];
    m2ai_kernels::tiled::gemm_nn_with_threads(m, n, k, &a, &b, &mut c, 2);
    let mut qmodel = model.clone();
    qmodel.prepare_quantized(samples.iter().map(|(frames, _)| frames.as_slice()));
}

/// Checks the live registry against the golden metric list. Returns
/// one human-readable line per gap.
pub fn registry_gaps() -> Vec<String> {
    let mut gaps = Vec::new();
    let snap = m2ai_obs::snapshot();
    for name in REQUIRED_METRICS {
        if !snap.iter().any(|m| m.name == *name) {
            gaps.push(format!("metric family {name} is not registered"));
        }
    }
    for name in NONZERO_COUNTERS {
        if m2ai_obs::counter_family_total(name) == 0 {
            gaps.push(format!("counter family {name} recorded nothing"));
        }
    }
    for name in NONZERO_HISTOGRAMS {
        let observed = snap.iter().any(|m| {
            m.name == *name
                && matches!(&m.value, m2ai_obs::MetricValue::Histogram(h) if h.count > 0)
        });
        if !observed {
            gaps.push(format!("histogram family {name} recorded nothing"));
        }
    }
    gaps
}

/// Writes the current registry to `path`: Prometheus text when the
/// path ends in `.prom` or `.txt`, the versioned JSON snapshot
/// otherwise.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn write_metrics(path: &str) {
    let body = if path.ends_with(".prom") || path.ends_with(".txt") {
        prometheus_text()
    } else {
        snapshot_json()
    };
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write metrics to {path}: {e}"));
    println!("wrote {path}");
}

/// The `experiments obs` smoke gate: runs the workload, validates the
/// registry against the golden list and both exporters against their
/// linters. Returns `true` when everything passes; prints one line per
/// failure otherwise.
pub fn check() -> bool {
    header("Obs", "observability smoke: golden schema + exporter lint");
    smoke_workload();
    let mut failures = registry_gaps();
    for err in validate_snapshot_json(&snapshot_json()) {
        failures.push(format!("json snapshot: {err}"));
    }
    for err in validate_prometheus(&prometheus_text()) {
        failures.push(format!("prometheus text: {err}"));
    }
    let families: std::collections::BTreeSet<&str> =
        m2ai_obs::snapshot().iter().map(|m| m.name).collect();
    println!(
        "registered families  {:>6} ({} required)",
        families.len(),
        REQUIRED_METRICS.len()
    );
    if failures.is_empty() {
        println!("obs smoke: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("obs smoke FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_satisfies_the_golden_schema() {
        smoke_workload();
        let gaps = registry_gaps();
        assert!(gaps.is_empty(), "golden schema gaps: {gaps:?}");
    }

    #[test]
    fn exporters_lint_clean_after_smoke() {
        smoke_workload();
        let json_errs = validate_snapshot_json(&snapshot_json());
        assert!(json_errs.is_empty(), "json: {json_errs:?}");
        let prom_errs = validate_prometheus(&prometheus_text());
        assert!(prom_errs.is_empty(), "prometheus: {prom_errs:?}");
    }

    #[test]
    fn both_exporters_carry_the_same_registry() {
        smoke_workload();
        let prom = prometheus_text();
        let json = snapshot_json();
        for name in REQUIRED_METRICS {
            assert!(json.contains(name), "{name} missing from JSON snapshot");
            assert!(prom.contains(name), "{name} missing from Prometheus text");
        }
    }
}
