//! Tracing gate (`experiments trace [--check]`) — the observability
//! PR's end-to-end contract, checked against the live fabric:
//!
//! 1. **Span-tree completeness under chaos**: a 2-shard fabric is
//!    driven through [`KILLS`] alternating shard kills at sampling
//!    1-in-1; every emitted prediction must carry a sampled trace whose
//!    emit span walks parent-by-parent to an ingress span recorded on
//!    the shard worker — one causally linked tree per frame even when
//!    the frame crossed a restart.
//! 2. **Shed / quarantine attribution**: a frozen shard's ingress
//!    sheds and a poisoned session's quarantine refusals must each
//!    terminate in an annotated span ([`SpanStatus::Shed`] /
//!    [`SpanStatus::Quarantined`]), one per observed event.
//! 3. **Flight-recorder postmortems**: every injected kill must leave
//!    a dump file validating against the `m2ai-flightrec-v1` schema.
//! 4. **Sampling-off bit-neutrality**: the same serve workload with
//!    tracing off and at sampling 1 must produce bitwise-identical
//!    predictions (trace identity aside — the only field allowed to
//!    differ).
//! 5. **Overhead**: at 1-in-[`OVERHEAD_SAMPLE_N`] head sampling the
//!    serve tick loop must stay within [`MAX_OVERHEAD`] of its
//!    tracing-off rate (best-of-[`OVERHEAD_PASSES`] on both sides, so
//!    scheduler noise cancels the way it does in the serve bench).
//!
//! Every check is absolute (no baseline JSON): the contract either
//! holds on this machine or it does not.

use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_core::online::HealthState;
use m2ai_core::serve::{ServeConfig, ServeEngine, ServePrediction};
use m2ai_nn::model::SequenceClassifier;
use m2ai_obs::trace::{self, SpanRecord, SpanStatus, TraceConfig};
use m2ai_serve_fabric::{
    FabricConfig, PushOutcome, ServeFabric, SessionKey, ShardThrottle, SupervisionConfig,
};
use std::time::{Duration, Instant};

use crate::header;

/// Streaming sessions in the chaos drive.
const SESSIONS: usize = 8;

/// Sliding window length in frames.
const HISTORY: usize = 12;

/// Shard kills injected during the chaos drive (the PR's contract).
const KILLS: usize = 4;

/// Frames pushed per session between kills.
const ROUND_FRAMES: usize = 6;

/// Head-sampling rate for the overhead check.
const OVERHEAD_SAMPLE_N: u32 = 64;

/// Maximum tolerated tick-loop slowdown at 1/64 sampling.
const MAX_OVERHEAD: f64 = 0.05;

/// Timed passes per side of the overhead comparison.
const OVERHEAD_PASSES: usize = 5;

struct Workload {
    model: SequenceClassifier,
    builder: FrameBuilder,
    dim: usize,
}

fn workload() -> Workload {
    let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    Workload {
        model,
        builder,
        dim: layout.frame_dim(),
    }
}

/// Aggressive supervision so kill recovery happens in milliseconds.
fn supervision() -> SupervisionConfig {
    SupervisionConfig {
        heartbeat_interval: Duration::from_millis(5),
        stall_deadline: Duration::from_millis(250),
        checkpoint_interval: Duration::from_millis(50),
        restart_backoff: Duration::from_millis(10),
        backoff_max: Duration::from_millis(100),
        restart_budget: 64,
        ..SupervisionConfig::default()
    }
}

fn fabric_config(shards: usize, ingress_capacity: usize) -> FabricConfig {
    FabricConfig {
        shards,
        vnodes: 32,
        ingress_capacity,
        serve: ServeConfig {
            max_sessions: SESSIONS.max(8),
            max_batch: 32,
            queue_capacity: 1024,
            history_len: HISTORY,
            ..ServeConfig::default()
        },
        supervision: supervision(),
    }
}

/// Deterministic synthetic frame (same xorshift family as the other
/// benches; the gate measures tracing, not extraction).
fn synth_frame(dim: usize, session: usize, step: usize) -> Vec<f32> {
    let mut state = (session as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((step as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        | 1;
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.5
        })
        .collect()
}

fn push_round(fabric: &ServeFabric, w: &Workload, keys: &[SessionKey], from: usize, count: usize) {
    for t in from..from + count {
        for (s, &key) in keys.iter().enumerate() {
            fabric
                .push_frame_with_deadline(
                    key,
                    t as f64 * 0.5,
                    synth_frame(w.dim, s, t),
                    HealthState::Healthy,
                    Duration::from_secs(30),
                )
                .expect("push must survive a recovery window");
        }
    }
}

fn await_cond(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "trace gate timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Walks `span`'s parent chain inside `spans`; returns the names seen,
/// root-last. Stops (and reports what it has) on a missing parent.
fn parent_chain<'a>(spans: &'a [SpanRecord], mut span: &'a SpanRecord) -> Vec<&'static str> {
    let mut names = vec![span.name];
    // Parent id 0 is the trace root (the fabric-edge context carries
    // span_id 0); anything else must resolve to a recorded span.
    while span.parent_id != 0 {
        match spans
            .iter()
            .find(|s| s.span_id == span.parent_id && s.trace_id == span.trace_id)
        {
            Some(parent) => {
                names.push(parent.name);
                span = parent;
            }
            None => break,
        }
    }
    names
}

/// Chaos drive: KILLS alternating shard kills at sampling 1. Returns
/// failures from span-tree completeness and flight-recorder checks.
fn check_chaos_spans(w: &Workload) -> Vec<String> {
    let mut failures = Vec::new();

    // Fresh collector, deterministic IDs, everything sampled, dumps
    // into a throwaway directory keyed by pid.
    let _ = trace::take_spans();
    trace::clear_exemplars();
    trace::seed_trace_ids(0x712a_ce00_1234_5678);
    trace::set_trace_config(TraceConfig { sample_one_in_n: 1 });
    let dump_dir = std::env::temp_dir().join(format!("m2ai-trace-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).expect("create flight-recorder dir");
    trace::set_flightrec_dir(Some(dump_dir.clone()));
    let dumps_before = count_dumps(&dump_dir);

    let fabric = ServeFabric::new(w.model.clone(), w.builder.clone(), fabric_config(2, 512));
    let keys: Vec<SessionKey> = (0..SESSIONS)
        .map(|_| fabric.open_session().expect("fabric sized for the gate"))
        .collect();
    push_round(&fabric, w, &keys, 0, HISTORY);
    let mut preds: Vec<ServePrediction> =
        fabric.flush().into_iter().map(|p| p.prediction).collect();
    let mut pushed = HISTORY;
    for round in 0..KILLS {
        push_round(&fabric, w, &keys, pushed, ROUND_FRAMES);
        pushed += ROUND_FRAMES;
        preds.extend(fabric.flush().into_iter().map(|p| p.prediction));
        fabric.checkpoint_now().expect("live shards checkpoint");
        let victim = round % 2;
        fabric.kill_shard(victim).expect("victim shard is alive");
        await_cond("shard restart", || fabric.shard_alive(victim));
    }
    push_round(&fabric, w, &keys, pushed, ROUND_FRAMES);
    pushed += ROUND_FRAMES;
    preds.extend(fabric.flush().into_iter().map(|p| p.prediction));
    fabric.shutdown();

    let spans = trace::take_spans();
    trace::set_flightrec_dir(None);
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });

    let expected = SESSIONS * (pushed - HISTORY + 1);
    println!(
        "chaos drive         {:>6} predictions over {KILLS} kills, {} spans",
        preds.len(),
        spans.len()
    );
    if preds.len() != expected {
        failures.push(format!(
            "chaos drive lost predictions: emitted {} of {expected}",
            preds.len()
        ));
    }

    // Every emitted prediction ends a complete span tree: its emit
    // span exists and parents back to an ingress span on some shard.
    let mut incomplete = 0usize;
    for p in &preds {
        if !p.trace.is_sampled() {
            failures.push(format!(
                "prediction for session {:?} at t={} carries no sampled trace",
                p.session, p.time_s
            ));
            continue;
        }
        let Some(emit) = spans
            .iter()
            .find(|s| s.span_id == p.trace.span_id && s.trace_id == p.trace.trace_id)
        else {
            incomplete += 1;
            continue;
        };
        let chain = parent_chain(&spans, emit);
        let ok = emit.name == "emit"
            && emit.status == SpanStatus::Ok
            && chain.contains(&"ingress")
            && spans
                .iter()
                .any(|s| s.trace_id == emit.trace_id && s.name == "ingress" && s.shard >= 0);
        if !ok {
            incomplete += 1;
        }
    }
    if incomplete > 0 {
        failures.push(format!(
            "{incomplete} of {} predictions lack a complete emit→ingress span tree",
            preds.len()
        ));
    }

    // One validating postmortem per injected kill.
    let dumps = count_dumps(&dump_dir).saturating_sub(dumps_before);
    println!("flightrec dumps     {dumps:>6} (>= {KILLS} required)");
    if dumps < KILLS {
        failures.push(format!(
            "only {dumps} flight-recorder dumps for {KILLS} injected kills"
        ));
    }
    if let Ok(entries) = std::fs::read_dir(&dump_dir) {
        for entry in entries.flatten() {
            let doc = std::fs::read_to_string(entry.path()).unwrap_or_default();
            for err in trace::validate_flightrec_json(&doc) {
                failures.push(format!("dump {:?}: {err}", entry.file_name()));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dump_dir);
    failures
}

fn count_dumps(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().starts_with("flightrec-"))
                .count()
        })
        .unwrap_or(0)
}

/// Shed + quarantine attribution: every refused data event terminates
/// in an annotated span.
fn check_attribution(w: &Workload) -> Vec<String> {
    let mut failures = Vec::new();
    let _ = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 1 });

    // Freeze the only shard: the bounded ingress fills and pushes shed
    // at the fabric edge, each one a Shed-status ingress span.
    let fabric = ServeFabric::new(w.model.clone(), w.builder.clone(), fabric_config(1, 4));
    let key = fabric.open_session().expect("capacity");
    // `set_throttle` blocks until the worker acknowledges the freeze,
    // so every push below meets a non-consuming ingress.
    fabric.set_throttle(0, ShardThrottle::Freeze);
    let mut sheds = 0usize;
    for t in 0..32 {
        match fabric
            .push_frame(
                key,
                t as f64 * 0.5,
                synth_frame(w.dim, 0, t),
                HealthState::Healthy,
            )
            .expect("session open")
        {
            PushOutcome::Shed => sheds += 1,
            PushOutcome::Enqueued => {}
        }
    }
    fabric.set_throttle(0, ShardThrottle::Run);
    fabric.shutdown();
    let spans = trace::take_spans();
    let shed_spans = spans
        .iter()
        .filter(|s| s.name == "ingress" && s.status == SpanStatus::Shed)
        .count();
    println!("sheds attributed    {shed_spans:>6} of {sheds} observed");
    if sheds == 0 {
        failures.push("freeze produced no sheds; the attribution check did not run".into());
    }
    if shed_spans < sheds {
        failures.push(format!(
            "{} sheds but only {shed_spans} Shed-status ingress spans",
            sheds
        ));
    }

    // Poison a session until quarantine, then push once more: the
    // refusal must be a Quarantined-status span.
    let fabric = ServeFabric::new(
        w.model.clone(),
        w.builder.clone(),
        FabricConfig {
            supervision: SupervisionConfig {
                poison_threshold: 2,
                ..supervision()
            },
            ..fabric_config(1, 512)
        },
    );
    let victim = fabric.open_session().expect("capacity");
    for t in 0..8 {
        // Wrong-dimension frames panic the engine inside the worker.
        let _ = fabric.push_frame(
            victim,
            t as f64 * 0.5,
            vec![0.0f32; w.dim + 1],
            HealthState::Healthy,
        );
        if fabric.quarantined() >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    await_cond("quarantine", || fabric.quarantined() >= 1);
    let _ = trace::take_spans();
    let refused = fabric.push_frame(
        victim,
        100.0,
        synth_frame(w.dim, 0, 0),
        HealthState::Healthy,
    );
    fabric.shutdown();
    let spans = trace::take_spans();
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });
    if !matches!(refused, Err(m2ai_serve_fabric::FabricError::Quarantined)) {
        failures.push(format!(
            "push to quarantined session returned {refused:?}, expected Err(Quarantined)"
        ));
    }
    let quarantine_spans = spans
        .iter()
        .filter(|s| s.name == "ingress" && s.status == SpanStatus::Quarantined)
        .count();
    println!("quarantine spans    {quarantine_spans:>6} (>= 1 required)");
    if quarantine_spans == 0 {
        failures.push("quarantine refusal left no Quarantined-status span".into());
    }
    failures
}

/// One deterministic serve drive; returns every prediction with the
/// trace identity blanked (the only field sampling may change).
fn serve_pass(w: &Workload, steps: usize) -> Vec<ServePrediction> {
    let mut eng = ServeEngine::new(
        w.model.clone(),
        w.builder.clone(),
        ServeConfig {
            max_sessions: SESSIONS,
            max_batch: SESSIONS,
            queue_capacity: HISTORY + steps,
            history_len: HISTORY,
            ..ServeConfig::default()
        },
    );
    let ids: Vec<_> = (0..SESSIONS)
        .map(|_| eng.open_session().expect("capacity"))
        .collect();
    for (s, &id) in ids.iter().enumerate() {
        for t in 0..HISTORY + steps {
            eng.push_frame(
                id,
                t as f64 * 0.5,
                synth_frame(w.dim, s, t),
                HealthState::Healthy,
            )
            .expect("queue capacity");
        }
    }
    let mut preds = eng.drain();
    for p in &mut preds {
        p.trace = Default::default();
    }
    preds
}

/// Sampling-off vs sampling-1 bit-neutrality on the serve engine.
fn check_bit_neutrality(w: &Workload) -> Vec<String> {
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });
    let off = serve_pass(w, 8);
    trace::set_trace_config(TraceConfig { sample_one_in_n: 1 });
    let on = serve_pass(w, 8);
    trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });
    let _ = trace::take_spans();
    println!(
        "bit-neutrality      {:>6} predictions compared",
        off.len().min(on.len())
    );
    if off == on {
        Vec::new()
    } else {
        vec!["sampling-on predictions differ from sampling-off (bit-neutrality broken)".into()]
    }
}

/// Tick-loop overhead at 1/OVERHEAD_SAMPLE_N sampling.
fn check_overhead(w: &Workload) -> Vec<String> {
    let steps = 48;
    let best_rate = |n: u32| -> f64 {
        trace::set_trace_config(TraceConfig { sample_one_in_n: n });
        let mut best = 0.0f64;
        serve_pass(w, steps); // warmup
        for _ in 0..OVERHEAD_PASSES {
            let t0 = Instant::now();
            let preds = serve_pass(w, steps);
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            best = best.max(preds.len() as f64 / secs);
        }
        trace::set_trace_config(TraceConfig { sample_one_in_n: 0 });
        let _ = trace::take_spans();
        best
    };
    let rate_off = best_rate(0);
    let rate_sampled = best_rate(OVERHEAD_SAMPLE_N);
    let overhead = rate_off / rate_sampled - 1.0;
    println!(
        "overhead @1/{OVERHEAD_SAMPLE_N}      {:>6.2}% (max {:.0}%)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    // NaN-safe: a NaN overhead must fail.
    if overhead.le(&MAX_OVERHEAD) {
        Vec::new()
    } else {
        vec![format!(
            "tracing overhead {:.2}% at 1/{OVERHEAD_SAMPLE_N} sampling exceeds {:.0}%",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        )]
    }
}

/// Silences panic reports from the engine panics injected on purpose
/// inside shard workers (same policy as the chaos bench).
fn quiet_shard_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let shard_thread = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("m2ai-shard-"));
        if !shard_thread {
            prev(info);
        }
    }));
}

/// The `experiments trace` gate. Returns `true` when every tracing
/// contract holds; prints one line per failure otherwise.
pub fn check() -> bool {
    header(
        "Trace",
        "tracing contracts: span trees under chaos, attribution, postmortems, overhead",
    );
    m2ai_kernels::set_backend(m2ai_kernels::Backend::Fast);
    quiet_shard_panics();
    let w = workload();
    let mut failures = Vec::new();
    failures.extend(check_chaos_spans(&w));
    failures.extend(check_attribution(&w));
    failures.extend(check_bit_neutrality(&w));
    failures.extend(check_overhead(&w));
    if failures.is_empty() {
        println!("trace gate: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("trace gate FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_chain_walks_to_the_root() {
        let mk = |span_id, parent_id, name| SpanRecord {
            trace_id: 7,
            span_id,
            parent_id,
            name,
            status: SpanStatus::Ok,
            start_us: 0,
            end_us: 1,
            shard: -1,
            session: -1,
            time_s: f64::NAN,
        };
        let spans = vec![mk(1, 0, "ingress"), mk(2, 1, "infer"), mk(3, 1, "emit")];
        assert_eq!(parent_chain(&spans, &spans[2]), vec!["emit", "ingress"]);
        assert_eq!(parent_chain(&spans, &spans[0]), vec!["ingress"]);
    }

    #[test]
    fn synthetic_frames_are_deterministic() {
        assert_eq!(synth_frame(8, 1, 2), synth_frame(8, 1, 2));
        assert_ne!(synth_frame(8, 1, 2), synth_frame(8, 2, 2));
    }
}
