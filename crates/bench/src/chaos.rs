//! Chaos harness and recovery gate for the self-healing serve fabric
//! (supervision PR): `experiments chaos [--check]`.
//!
//! Injects the three failure classes the supervisor exists for —
//! worker crashes, silent stalls, poison input — into a live, loaded
//! fabric, and measures the recovery story end to end:
//!
//! * **crash recovery** — repeated shard kills under steady traffic;
//!   each kill is preceded by a flush + checkpoint, so the gate can
//!   demand *exactly zero* lost predictions (the in-flight window is
//!   empty by construction) while timing kill → serving-again;
//! * **stall detection** — a worker whose heartbeat flatlines (the
//!   `Stall` throttle) must be abandoned and replaced within a small
//!   multiple of the configured deadline;
//! * **quarantine** — input that panics the engine must cost exactly
//!   one session (the poisoned one) and nothing else;
//! * **checkpoint overhead** — steady-state throughput with an
//!   aggressive periodic checkpoint sweep vs none; the ratio is the
//!   price of the safety net and must stay small.
//!
//! ## Gate philosophy
//!
//! Correctness gates (lost predictions, eviction, quarantine blast
//! radius) are exact and machine-free. Timing gates (recovery p99,
//! stall detection) use generous absolute ceilings — they catch a
//! supervisor that stopped working, not scheduler jitter — and the
//! relative checks against a baseline only apply between runs on the
//! same core count.

use crate::throughput::{json_f64, parse_metric};
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_core::online::HealthState;
use m2ai_core::serve::ServeConfig;
use m2ai_nn::model::SequenceClassifier;
use m2ai_serve_fabric::{
    FabricConfig, FabricError, ServeFabric, SessionKey, ShardThrottle, SupervisionConfig,
};
use std::time::{Duration, Instant};

use crate::header;

/// Streaming sessions during the crash-recovery phase.
const SESSIONS: usize = 24;

/// Sliding window length in frames.
const HISTORY: usize = 6;

/// Shard kills injected during the crash phase (alternating shards).
const KILLS: usize = 4;

/// Frames pushed per session between kills.
const ROUND_FRAMES: usize = 5;

/// Timed arrivals per checkpoint-overhead pass.
const OVERHEAD_ARRIVALS: usize = 2000;

/// Periodic checkpoint cadence in the overhead phase (aggressive on
/// purpose: the gate prices the worst case).
const OVERHEAD_CKPT_EVERY: Duration = Duration::from_millis(10);

/// Absolute ceiling on the p99 kill → serving-again wall time. The
/// real path is a few restart backoffs plus session restores; seconds
/// of headroom absorb saturated CI runners.
const MAX_RECOVERY_P99_MS: f64 = 2_000.0;

/// Absolute ceiling on flatline → replacement-worker wall time
/// (configured stall deadline is 250 ms).
const MAX_STALL_DETECT_MS: f64 = 5_000.0;

/// Absolute ceiling on the checkpoint-overhead throughput ratio
/// (no-checkpoint rate / checkpointing rate).
const MAX_CHECKPOINT_OVERHEAD: f64 = 2.0;

/// Max tolerated relative growth of the timing metrics vs a baseline
/// from the same core count.
const MAX_TIMING_GROWTH: f64 = 4.0;

/// One chaos measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Cores the runner exposed (`std::thread::available_parallelism`).
    pub cores: f64,
    /// Sessions streaming through the crash phase.
    pub sessions: f64,
    /// Shard kills injected.
    pub kills: f64,
    /// Median kill → serving-again wall time, ms.
    pub recovery_p50_ms: f64,
    /// Worst observed recovery wall time, ms.
    pub recovery_p99_ms: f64,
    /// Stall flatline → replacement worker wall time, ms.
    pub stall_detect_ms: f64,
    /// Supervisor restarts across the crash phase.
    pub restarts: f64,
    /// Predictions lost across every kill (must be exactly zero).
    pub lost_predictions: f64,
    /// In-flight ingress events lost (must be exactly zero).
    pub lost_inflight: f64,
    /// Sessions evicted by failed migrations (must be exactly zero).
    pub evicted: f64,
    /// Sessions quarantined in the poison phase (must be exactly one).
    pub quarantined: f64,
    /// Predictions lost by the poison victim's *neighbor* (zero).
    pub collateral_lost: f64,
    /// Steady-state predictions/sec with no periodic checkpoints.
    pub rate_no_checkpoint: f64,
    /// Same workload with a 10 ms periodic checkpoint sweep.
    pub rate_checkpoint: f64,
    /// `rate_no_checkpoint / rate_checkpoint`.
    pub checkpoint_overhead_ratio: f64,
    /// The fabric's own `m2ai_fabric_recovery_seconds` histogram,
    /// windowed over the crash phase, put its p99 in the overflow
    /// bucket (recovery beyond the last finite bound, ~12 s). The
    /// gate fails on a saturated fresh value.
    pub recovery_p99_saturated: bool,
}

impl ChaosReport {
    /// Renders the report as a small stable JSON document (hand-rolled;
    /// the workspace carries no serde). Key order is fixed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"m2ai-chaos-v1\",\n");
        for (key, v) in [
            ("cores", self.cores),
            ("sessions", self.sessions),
            ("kills", self.kills),
            ("recovery_p50_ms", self.recovery_p50_ms),
            ("recovery_p99_ms", self.recovery_p99_ms),
            ("stall_detect_ms", self.stall_detect_ms),
            ("restarts", self.restarts),
            ("lost_predictions", self.lost_predictions),
            ("lost_inflight", self.lost_inflight),
            ("evicted", self.evicted),
            ("quarantined", self.quarantined),
            ("collateral_lost", self.collateral_lost),
            ("rate_no_checkpoint", self.rate_no_checkpoint),
            ("rate_checkpoint", self.rate_checkpoint),
        ] {
            out.push_str(&format!("  \"{key}\": {},\n", json_f64(v)));
        }
        out.push_str(&format!(
            "  \"checkpoint_overhead_ratio\": {},\n",
            json_f64(self.checkpoint_overhead_ratio)
        ));
        out.push_str(&format!(
            "  \"recovery_p99_saturated\": {}\n",
            u8::from(self.recovery_p99_saturated)
        ));
        out.push('}');
        out.push('\n');
        out
    }

    /// Parses a report previously written by [`ChaosReport::to_json`].
    ///
    /// Returns `None` if any expected key is missing or non-numeric.
    pub fn from_json(json: &str) -> Option<ChaosReport> {
        Some(ChaosReport {
            cores: parse_metric(json, "cores")?,
            sessions: parse_metric(json, "sessions")?,
            kills: parse_metric(json, "kills")?,
            recovery_p50_ms: parse_metric(json, "recovery_p50_ms")?,
            recovery_p99_ms: parse_metric(json, "recovery_p99_ms")?,
            stall_detect_ms: parse_metric(json, "stall_detect_ms")?,
            restarts: parse_metric(json, "restarts")?,
            lost_predictions: parse_metric(json, "lost_predictions")?,
            lost_inflight: parse_metric(json, "lost_inflight")?,
            evicted: parse_metric(json, "evicted")?,
            quarantined: parse_metric(json, "quarantined")?,
            collateral_lost: parse_metric(json, "collateral_lost")?,
            rate_no_checkpoint: parse_metric(json, "rate_no_checkpoint")?,
            rate_checkpoint: parse_metric(json, "rate_checkpoint")?,
            checkpoint_overhead_ratio: parse_metric(json, "checkpoint_overhead_ratio")?,
            // Absent in pre-tagged baselines: treat as unsaturated.
            recovery_p99_saturated: parse_metric(json, "recovery_p99_saturated")
                .is_some_and(|v| v != 0.0),
        })
    }
}

/// The paper's 1-tag/4-antenna joint layout (small model keeps the
/// chaos phases fast; supervision behavior is model-size independent).
struct Workload {
    model: SequenceClassifier,
    builder: FrameBuilder,
    dim: usize,
}

fn workload() -> Workload {
    let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    Workload {
        model,
        builder,
        dim: layout.frame_dim(),
    }
}

/// Aggressive supervision knobs: failures are noticed in milliseconds
/// so the chaos run stays short.
fn chaos_supervision() -> SupervisionConfig {
    SupervisionConfig {
        heartbeat_interval: Duration::from_millis(5),
        stall_deadline: Duration::from_millis(250),
        checkpoint_interval: Duration::from_millis(50),
        restart_backoff: Duration::from_millis(10),
        backoff_max: Duration::from_millis(100),
        restart_budget: 64,
        ..SupervisionConfig::default()
    }
}

fn fabric_config(shards: usize, supervision: SupervisionConfig) -> FabricConfig {
    FabricConfig {
        shards,
        vnodes: 32,
        ingress_capacity: 512,
        serve: ServeConfig {
            max_sessions: SESSIONS.max(8),
            max_batch: 32,
            queue_capacity: 1024,
            history_len: HISTORY,
            ..ServeConfig::default()
        },
        supervision,
    }
}

/// Deterministic synthetic frame (xorshift-style; extraction is not
/// what this bench measures).
fn synth_frame(dim: usize, session: usize, step: usize) -> Vec<f32> {
    let mut state = (session as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((step as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        | 1;
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.5
        })
        .collect()
}

/// Pushes frames `[from, from + count)` to every session, riding
/// restarts via the deadline path.
fn push_round(fabric: &ServeFabric, w: &Workload, keys: &[SessionKey], from: usize, count: usize) {
    for t in from..from + count {
        for (s, &key) in keys.iter().enumerate() {
            fabric
                .push_frame_with_deadline(
                    key,
                    t as f64 * 0.5,
                    synth_frame(w.dim, s, t),
                    HealthState::Healthy,
                    Duration::from_secs(30),
                )
                .expect("push must survive a recovery window");
        }
    }
}

/// Spins until `cond` holds (panics after 30 s — the supervisor has
/// stopped supervising, which is exactly what this harness exists to
/// catch).
fn await_cond(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "chaos harness timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Crash phase: `KILLS` alternating shard kills under steady traffic.
/// Returns (recovery times ms, lost predictions, restarts, lost
/// in-flight, evicted).
fn measure_crashes(w: &Workload) -> (Vec<f64>, u64, u64, u64, u64) {
    let fabric = ServeFabric::new(
        w.model.clone(),
        w.builder.clone(),
        fabric_config(2, chaos_supervision()),
    );
    let keys: Vec<SessionKey> = (0..SESSIONS)
        .map(|_| fabric.open_session().expect("fabric sized for chaos"))
        .collect();

    push_round(&fabric, w, &keys, 0, HISTORY);
    let mut emitted = fabric.flush().len();
    let mut pushed = HISTORY;
    let mut recoveries_ms = Vec::with_capacity(KILLS);

    for round in 0..KILLS {
        push_round(&fabric, w, &keys, pushed, ROUND_FRAMES);
        pushed += ROUND_FRAMES;
        emitted += fabric.flush().len();
        // Drained + checkpointed: the in-flight window is empty, so
        // the kill may not cost a single prediction.
        fabric.checkpoint_now().expect("live shards checkpoint");
        let victim = round % 2;
        let t0 = Instant::now();
        fabric.kill_shard(victim).expect("victim shard is alive");
        await_cond("shard restart", || fabric.shard_alive(victim));
        recoveries_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    push_round(&fabric, w, &keys, pushed, ROUND_FRAMES);
    pushed += ROUND_FRAMES;
    emitted += fabric.flush().len();

    let stats = fabric.shutdown();
    let expected = SESSIONS * (pushed - HISTORY + 1);
    let lost = expected.saturating_sub(emitted) as u64;
    (
        recoveries_ms,
        lost,
        stats.restarts,
        stats.lost_inflight,
        stats.evicted,
    )
}

/// Stall phase: flatline one worker's heartbeat; time until the
/// supervisor has it replaced and serving again.
fn measure_stall(w: &Workload) -> f64 {
    let fabric = ServeFabric::new(
        w.model.clone(),
        w.builder.clone(),
        fabric_config(1, chaos_supervision()),
    );
    let key = fabric.open_session().expect("capacity");
    push_round(&fabric, w, &[key], 0, HISTORY);
    fabric.flush();
    fabric.checkpoint_now().expect("live shard checkpoints");

    fabric.set_throttle(0, ShardThrottle::Stall);
    let t0 = Instant::now();
    await_cond("stall replacement", || {
        fabric.restarts() >= 1 && fabric.shard_alive(0)
    });
    let detect_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The replacement must actually serve: one more round emits.
    push_round(&fabric, w, &[key], HISTORY, ROUND_FRAMES);
    let out = fabric.flush();
    assert_eq!(
        out.len(),
        ROUND_FRAMES,
        "replacement worker must resume the checkpointed window"
    );
    let stats = fabric.shutdown();
    assert!(stats.stalls >= 1, "the flatline must register as a stall");
    detect_ms
}

/// Poison phase: wrong-dimension frames panic the engine until the
/// session is quarantined. Returns (quarantined, neighbor predictions
/// lost).
fn measure_quarantine(w: &Workload) -> (u64, u64) {
    let fabric = ServeFabric::new(
        w.model.clone(),
        w.builder.clone(),
        fabric_config(
            1,
            SupervisionConfig {
                poison_threshold: 2,
                ..chaos_supervision()
            },
        ),
    );
    let clean = fabric.open_session().expect("capacity");
    let victim = fabric.open_session().expect("capacity");
    push_round(&fabric, w, &[clean], 0, HISTORY);
    let mut emitted = fabric.flush().len();
    fabric.checkpoint_now().expect("live shard checkpoints");

    let poison = vec![0.25f32; w.dim + 3];
    let t0 = Instant::now();
    while !fabric.is_quarantined(victim) {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "poison never tripped the quarantine threshold"
        );
        match fabric.push_frame(victim, 0.0, poison.clone(), HealthState::Healthy) {
            Ok(_) => std::thread::sleep(Duration::from_millis(5)),
            Err(FabricError::Quarantined) => break,
            Err(e) => panic!("unexpected push error while poisoning: {e}"),
        }
    }
    push_round(&fabric, w, &[clean], HISTORY, ROUND_FRAMES);
    emitted += fabric.flush().len();
    let stats = fabric.shutdown();
    let expected = HISTORY + ROUND_FRAMES - HISTORY + 1;
    let collateral_lost = expected.saturating_sub(emitted) as u64;
    (stats.quarantined, collateral_lost)
}

/// Steady-state rate (best of 3 timed passes) with the given
/// checkpoint cadence.
fn measure_rate(w: &Workload, checkpoint_interval: Duration) -> f64 {
    let fabric = ServeFabric::new(
        w.model.clone(),
        w.builder.clone(),
        fabric_config(
            2,
            SupervisionConfig {
                checkpoint_interval,
                ..chaos_supervision()
            },
        ),
    );
    let keys: Vec<SessionKey> = (0..SESSIONS)
        .map(|_| fabric.open_session().expect("fabric sized for chaos"))
        .collect();
    push_round(&fabric, w, &keys, 0, HISTORY);
    fabric.flush();
    let mut step = HISTORY;
    let mut best = 0.0f64;
    for pass in 0..4 {
        let start = Instant::now();
        let mut emitted = 0usize;
        for i in 0..OVERHEAD_ARRIVALS {
            let s = i % SESSIONS;
            if s == 0 {
                step += 1;
            }
            fabric
                .push_frame_with_deadline(
                    keys[s],
                    step as f64 * 0.5,
                    synth_frame(w.dim, s, step),
                    HealthState::Healthy,
                    Duration::from_secs(30),
                )
                .expect("session open");
            if i % 256 == 255 {
                emitted += fabric.poll().len();
            }
        }
        emitted += fabric.flush().len();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(emitted, OVERHEAD_ARRIVALS, "steady state must not shed");
        if pass > 0 {
            // Pass 0 is warmup.
            best = best.max(OVERHEAD_ARRIVALS as f64 / secs);
        }
    }
    if checkpoint_interval > Duration::ZERO {
        assert!(
            fabric.checkpointed_sessions() > 0,
            "the periodic sweep must actually have checkpointed"
        );
    }
    drop(fabric.shutdown());
    best
}

/// Current snapshot of the fabric's recovery-latency histogram
/// (`None` until a fabric has registered its instruments).
fn recovery_hist() -> Option<m2ai_obs::HistogramSnapshot> {
    match m2ai_obs::find("m2ai_fabric_recovery_seconds", &[]) {
        Some(m2ai_obs::MetricValue::Histogram(h)) => Some(h),
        _ => None,
    }
}

fn available_cores() -> f64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as f64)
        .unwrap_or(1.0)
}

/// Silences the panic-hook reports from engine panics *injected on
/// purpose* inside shard worker threads (they are caught and counted
/// by the supervision layer); every other thread's panics still print.
/// The hook stays installed for the rest of the process — fine for the
/// one-shot `experiments` binary this runs in.
fn quiet_shard_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let shard_thread = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("m2ai-shard-"));
        if !shard_thread {
            prev(info);
        }
    }));
}

/// Measures the report on the current machine (fast kernel backend).
pub fn run() -> ChaosReport {
    header(
        "Chaos",
        "self-healing fabric: kill/stall/poison recovery + checkpoint overhead",
    );
    m2ai_kernels::set_backend(m2ai_kernels::Backend::Fast);
    quiet_shard_panics();
    let w = workload();

    // Window the fabric's own recovery histogram over the crash phase
    // (the registry is process-global, so the delta isolates this run)
    // and pool it — a saturated p99 there means some recovery ran past
    // the last finite bucket, which the exact per-kill timings below
    // could only show as a blown ceiling.
    let recovery_hist_before = recovery_hist();
    let (mut recoveries_ms, lost, restarts, lost_inflight, evicted) = measure_crashes(&w);
    let mut recovery_window = m2ai_obs::HistogramDelta::new();
    if let Some(after) = recovery_hist() {
        recovery_window.accumulate(&match &recovery_hist_before {
            Some(before) => after.delta(before),
            None => after,
        });
    }
    recoveries_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite recoveries"));
    let q = |frac: f64| -> f64 {
        let idx = ((recoveries_ms.len() - 1) as f64 * frac).round() as usize;
        recoveries_ms[idx]
    };
    let stall_detect_ms = measure_stall(&w);
    let (quarantined, collateral_lost) = measure_quarantine(&w);
    let rate_no_checkpoint = measure_rate(&w, Duration::ZERO);
    let rate_checkpoint = measure_rate(&w, OVERHEAD_CKPT_EVERY);

    let report = ChaosReport {
        cores: available_cores(),
        sessions: SESSIONS as f64,
        kills: KILLS as f64,
        recovery_p50_ms: q(0.50),
        recovery_p99_ms: q(0.99),
        stall_detect_ms,
        restarts: restarts as f64,
        lost_predictions: lost as f64,
        lost_inflight: lost_inflight as f64,
        evicted: evicted as f64,
        quarantined: quarantined as f64,
        collateral_lost: collateral_lost as f64,
        rate_no_checkpoint,
        rate_checkpoint,
        checkpoint_overhead_ratio: rate_no_checkpoint / rate_checkpoint,
        recovery_p99_saturated: recovery_window.count() > 0
            && recovery_window.quantile(0.99).saturated,
    };
    println!("cores               {:>10.0}", report.cores);
    println!(
        "kills               {:>10.0} ({} restarts)",
        report.kills, report.restarts
    );
    println!("recovery p50        {:>10.1} ms", report.recovery_p50_ms);
    println!("recovery p99        {:>10.1} ms", report.recovery_p99_ms);
    println!("stall detect        {:>10.1} ms", report.stall_detect_ms);
    println!(
        "lost predictions    {:>10.0} (inflight {:.0}, evicted {:.0})",
        report.lost_predictions, report.lost_inflight, report.evicted
    );
    println!(
        "quarantined         {:>10.0} (collateral lost {:.0})",
        report.quarantined, report.collateral_lost
    );
    println!(
        "rate no-ckpt        {:>10.0} predictions/sec",
        report.rate_no_checkpoint
    );
    println!(
        "rate 10ms-ckpt      {:>10.0} predictions/sec",
        report.rate_checkpoint
    );
    println!(
        "ckpt overhead       {:>10.2}x",
        report.checkpoint_overhead_ratio
    );
    report
}

/// Pure regression gate: every failure is one human-readable line.
pub fn regressions(fresh: &ChaosReport, baseline: &ChaosReport) -> Vec<String> {
    let mut failures = Vec::new();
    // Exact correctness gates — machine-free, no tolerance.
    for (name, v, want) in [
        ("lost_predictions", fresh.lost_predictions, 0.0),
        ("lost_inflight", fresh.lost_inflight, 0.0),
        ("evicted", fresh.evicted, 0.0),
        ("collateral_lost", fresh.collateral_lost, 0.0),
        ("quarantined", fresh.quarantined, 1.0),
    ] {
        if v != want {
            failures.push(format!("{name} is {v:.0}, must be exactly {want:.0}"));
        }
    }
    if !fresh.restarts.ge(&fresh.kills) {
        failures.push(format!(
            "restarts {:.0} below the {:.0} injected kills",
            fresh.restarts, fresh.kills
        ));
    }
    if fresh.recovery_p99_saturated {
        failures.push(
            "recovery p99 saturated the m2ai_fabric_recovery_seconds histogram \
             (some recovery ran past the last finite bucket)"
                .to_string(),
        );
    }
    // Timing ceilings (NaN-safe: NaN must fail).
    if !fresh.recovery_p99_ms.le(&MAX_RECOVERY_P99_MS) {
        failures.push(format!(
            "recovery p99 {:.1} ms exceeds the {MAX_RECOVERY_P99_MS:.0} ms ceiling",
            fresh.recovery_p99_ms
        ));
    }
    if !fresh.stall_detect_ms.le(&MAX_STALL_DETECT_MS) {
        failures.push(format!(
            "stall detection {:.1} ms exceeds the {MAX_STALL_DETECT_MS:.0} ms ceiling",
            fresh.stall_detect_ms
        ));
    }
    if !fresh.checkpoint_overhead_ratio.le(&MAX_CHECKPOINT_OVERHEAD) {
        failures.push(format!(
            "checkpoint overhead {:.2}x exceeds the {MAX_CHECKPOINT_OVERHEAD:.1}x ceiling",
            fresh.checkpoint_overhead_ratio
        ));
    }
    // Relative checks only compare like with like.
    if fresh.cores != baseline.cores {
        println!(
            "chaos gate: baseline cores {:.0} != fresh cores {:.0}; skipping relative checks",
            baseline.cores, fresh.cores
        );
        return failures;
    }
    for (name, f, b) in [
        (
            "recovery_p99_ms",
            fresh.recovery_p99_ms,
            baseline.recovery_p99_ms,
        ),
        (
            "stall_detect_ms",
            fresh.stall_detect_ms,
            baseline.stall_detect_ms,
        ),
    ] {
        let ceiling = MAX_TIMING_GROWTH * b.max(1.0);
        if !f.le(&ceiling) {
            failures.push(format!(
                "{name}: {f:.1} ms grew more than {MAX_TIMING_GROWTH:.0}x over baseline {b:.1} ms"
            ));
        }
    }
    failures
}

/// Measures and writes the JSON baseline to `path`.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn run_and_write(path: &str) -> ChaosReport {
    let report = run();
    std::fs::write(path, report.to_json()).expect("write chaos report");
    println!("wrote {path}");
    report
}

/// Re-measures and gates against the baseline at `path`.
///
/// Returns `true` when no regression was detected; prints one line per
/// failure otherwise.
///
/// # Panics
///
/// Panics if `path` is missing or unparseable — the baseline is
/// checked in, so that is a repo defect, not a recovery regression.
pub fn check(path: &str) -> bool {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read chaos baseline {path}: {e}"));
    let baseline =
        ChaosReport::from_json(&json).unwrap_or_else(|| panic!("parse chaos baseline {path}"));
    let fresh = run();
    let failures = regressions(&fresh, &baseline);
    if failures.is_empty() {
        println!("chaos gate: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("chaos gate FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_report() -> ChaosReport {
        ChaosReport {
            cores: 4.0,
            sessions: SESSIONS as f64,
            kills: KILLS as f64,
            recovery_p50_ms: 15.0,
            recovery_p99_ms: 40.0,
            stall_detect_ms: 300.0,
            restarts: KILLS as f64 + 1.0,
            lost_predictions: 0.0,
            lost_inflight: 0.0,
            evicted: 0.0,
            quarantined: 1.0,
            collateral_lost: 0.0,
            rate_no_checkpoint: 5000.0,
            rate_checkpoint: 4500.0,
            checkpoint_overhead_ratio: 5000.0 / 4500.0,
            recovery_p99_saturated: false,
        }
    }

    #[test]
    fn gate_trips_on_saturated_recovery_histogram() {
        let base = clean_report();
        let mut sat = base.clone();
        sat.recovery_p99_saturated = true;
        assert!(regressions(&sat, &base)
            .iter()
            .any(|f| f.contains("saturated")));
        // A baseline written before the flag existed still parses.
        let legacy = base
            .to_json()
            .replace(",\n  \"recovery_p99_saturated\": 0", "");
        let back = ChaosReport::from_json(&legacy).expect("legacy parse");
        assert!(!back.recovery_p99_saturated);
    }

    #[test]
    fn json_roundtrips() {
        let r = clean_report();
        let back = ChaosReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn clean_report_passes_its_own_gate() {
        let r = clean_report();
        assert!(regressions(&r, &r).is_empty());
    }

    #[test]
    fn gate_trips_on_any_lost_prediction() {
        let base = clean_report();
        let mut lossy = base.clone();
        lossy.lost_predictions = 1.0;
        assert!(regressions(&lossy, &base)
            .iter()
            .any(|f| f.contains("lost_predictions")));
    }

    #[test]
    fn gate_trips_on_slow_recovery_and_nan() {
        let base = clean_report();
        let mut slow = base.clone();
        slow.recovery_p99_ms = MAX_RECOVERY_P99_MS + 1.0;
        assert!(regressions(&slow, &base)
            .iter()
            .any(|f| f.contains("recovery p99")));
        let mut nan = base.clone();
        nan.recovery_p99_ms = f64::NAN;
        assert!(!regressions(&nan, &base).is_empty());
    }

    #[test]
    fn gate_trips_on_checkpoint_overhead_blowup() {
        let base = clean_report();
        let mut heavy = base.clone();
        heavy.checkpoint_overhead_ratio = MAX_CHECKPOINT_OVERHEAD + 0.5;
        assert!(regressions(&heavy, &base)
            .iter()
            .any(|f| f.contains("checkpoint overhead")));
    }

    #[test]
    fn relative_timing_checks_skip_across_core_counts() {
        let base = clean_report();
        let mut other = base.clone();
        other.cores = 8.0;
        other.stall_detect_ms = MAX_TIMING_GROWTH * base.stall_detect_ms * 2.0;
        // Above the relative ceiling but below the absolute one: only
        // the same-core comparison may trip.
        assert!(other.stall_detect_ms < MAX_STALL_DETECT_MS);
        assert!(regressions(&other, &base).is_empty());
        let mut same = other.clone();
        same.cores = base.cores;
        assert!(regressions(&same, &base)
            .iter()
            .any(|f| f.contains("stall_detect_ms")));
    }
}
