//! Streaming-extraction benchmark and regression gate (streaming PR).
//!
//! Measures feature extraction over *overlapping* windows — the
//! raw-ingest serve shape, where a new window opens every round but
//! each window spans several rounds — two ways:
//!
//! - **batch**: rebuild every window from scratch with
//!   `FrameBuilder::build_frame_with_quality` over the full sorted
//!   stream, exactly what `SessionWindow` did before the streaming PR;
//! - **stream**: one `StreamExtractor` ingests the stream once and
//!   advances window by window with rank-1 covariance updates and the
//!   GEMM-lowered pseudospectrum scan.
//!
//! With hop = 1 round and frame = 4 rounds, ~3/4 of every batch
//! rebuild is recomputation the streaming path skips, so streaming
//! must be **≥ [`MIN_STREAM_SPEEDUP`]× faster** — that ratio is
//! measured on one machine within one run, so the gate is absolute and
//! holds across machines. The run also cross-checks accuracy: the
//! worst absolute element difference between streaming and batch
//! frames must stay inside [`MAX_ABS_DIFF`] (refresh windows are
//! bitwise-equal by construction; the band covers the incremental
//! windows in between). Relative-rate checks against the checked-in
//! `BENCH_extract.json` baseline only compare like with like — they
//! are skipped when the core counts differ, mirroring
//! `BENCH_throughput.json`.

use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::stream_extract::{StreamExtractor, StreamingExtract};
use m2ai_rfsim::geometry::Point2;
use m2ai_rfsim::reader::{Reader, ReaderConfig};
use m2ai_rfsim::reading::TagReading;
use m2ai_rfsim::room::Room;
use m2ai_rfsim::scene::SceneSnapshot;
use std::time::Instant;

use crate::header;
use crate::throughput::{json_f64, parse_metric};

/// Minimum streaming-over-batch frames/sec speedup (absolute: both
/// rates come from the same machine in the same run).
const MIN_STREAM_SPEEDUP: f64 = 3.0;

/// Maximum tolerated |streaming − batch| frame element difference.
const MAX_ABS_DIFF: f64 = 1e-3;

/// Maximum tolerated drop of the machine-internal speedup vs baseline
/// when core counts match.
const MAX_REGRESSION: f64 = 0.15;

/// Window length in seconds (4 rounds of 0.1 s — paper default).
const FRAME_S: f64 = 0.4;

/// Hop between overlapping window starts: one inventory round.
const HOP_S: f64 = 0.1;

/// Length of the recorded session in seconds. Serve sessions run tens
/// of seconds, and the batch path re-buckets the *entire* buffer for
/// every window, so a too-short recording would understate the very
/// cost streaming removes.
const SESSION_S: f64 = 25.0;

/// Overlapping windows advanced per measured iteration (hopping
/// [`HOP_S`] from t=0; the last window still ends well inside the
/// recording).
const N_WINDOWS: usize = 220;

/// Exact-recompute cadence under test (the serve-path default).
const REFRESH_EVERY: u32 = 8;

/// The streaming-vs-batch report persisted as `BENCH_extract.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractReport {
    /// Windows/sec rebuilding each window from the full buffer.
    pub frames_per_sec_batch: f64,
    /// Windows/sec advancing one `StreamExtractor` (including the
    /// one-time ingest of the stream).
    pub frames_per_sec_stream: f64,
    /// `frames_per_sec_stream / frames_per_sec_batch`.
    pub stream_speedup: f64,
    /// Worst |streaming − batch| element over all windows.
    pub max_abs_diff: f64,
    /// Logical cores on the measuring machine.
    pub cores: f64,
}

impl ExtractReport {
    /// Serialises to the flat JSON document stored as the baseline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"m2ai-extract-v1\",\n");
        out.push_str(&format!(
            "  \"frames_per_sec_batch\": {},\n",
            json_f64(self.frames_per_sec_batch)
        ));
        out.push_str(&format!(
            "  \"frames_per_sec_stream\": {},\n",
            json_f64(self.frames_per_sec_stream)
        ));
        out.push_str(&format!(
            "  \"stream_speedup\": {},\n",
            json_f64(self.stream_speedup)
        ));
        out.push_str(&format!(
            "  \"max_abs_diff\": {},\n",
            json_f64(self.max_abs_diff)
        ));
        out.push_str(&format!("  \"cores\": {}\n", json_f64(self.cores)));
        out.push_str("}\n");
        out
    }

    /// Parses a document produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Option<Self> {
        Some(ExtractReport {
            frames_per_sec_batch: parse_metric(json, "frames_per_sec_batch")?,
            frames_per_sec_stream: parse_metric(json, "frames_per_sec_stream")?,
            stream_speedup: parse_metric(json, "stream_speedup")?,
            max_abs_diff: parse_metric(json, "max_abs_diff")?,
            cores: parse_metric(json, "cores")?,
        })
    }
}

/// The fixed workload: a [`SESSION_S`]-second six-tag laboratory
/// recording (seed 11, same scene as the throughput bench),
/// paper-default joint layout, and
/// [`N_WINDOWS`] windows of [`FRAME_S`] hopping by [`HOP_S`] — every
/// consecutive pair of windows shares 3 of its 4 rounds.
struct Workload {
    builder: FrameBuilder,
    /// Sorted + deduplicated exactly like `SessionWindow::insert_sorted`
    /// does on push, so batch and stream see identical readings.
    readings: Vec<TagReading>,
    starts: Vec<f64>,
}

fn workload() -> Workload {
    let mut reader = Reader::new(
        Room::laboratory(),
        ReaderConfig {
            n_antennas: 4,
            seed: 11,
            ..ReaderConfig::default()
        },
        6,
    );
    let scene = SceneSnapshot::with_tags(vec![
        Point2::new(5.5, 4.0),
        Point2::new(5.7, 4.2),
        Point2::new(5.9, 4.1),
        Point2::new(8.0, 4.3),
        Point2::new(8.2, 4.5),
        Point2::new(8.4, 4.2),
    ]);
    let mut readings = reader.run(|_| scene.clone(), SESSION_S);
    readings.sort_by(|a, b| {
        (a.time_s, a.tag.0, a.antenna, a.channel)
            .partial_cmp(&(b.time_s, b.tag.0, b.antenna, b.channel))
            .expect("reader times are finite")
    });
    readings.dedup_by_key(|r| (r.time_s, r.tag.0, r.antenna, r.channel));
    let layout = FrameLayout::new(6, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(6, 4), FRAME_S);
    let starts: Vec<f64> = (0..N_WINDOWS).map(|k| k as f64 * HOP_S).collect();
    Workload {
        builder,
        readings,
        starts,
    }
}

/// Best-of-three rate in events/sec, mirroring the throughput bench.
fn rate(iters: usize, events_per_iter: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max((iters * events_per_iter) as f64 / secs);
    }
    best
}

fn available_cores() -> f64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as f64)
        .unwrap_or(1.0)
}

fn streaming_cfg() -> StreamingExtract {
    StreamingExtract {
        refresh_every: REFRESH_EVERY,
    }
}

/// One full streaming pass: ingest the stream once, then advance all
/// windows. Returns the emitted frames for the accuracy cross-check.
fn stream_pass(w: &Workload) -> Vec<Vec<f32>> {
    let mut ex = StreamExtractor::try_new(&w.builder, streaming_cfg())
        .expect("joint layout at an aligned frame length supports streaming");
    for r in &w.readings {
        ex.ingest(r);
    }
    w.starts
        .iter()
        .map(|&t0| std::hint::black_box(ex.extract(t0)).0)
        .collect()
}

/// Measures the report on the current machine.
pub fn run() -> ExtractReport {
    header(
        "Extract",
        "streaming vs batch extraction over overlapping windows",
    );
    let w = workload();

    let frames_per_sec_batch = rate(2, N_WINDOWS, || {
        for &t0 in &w.starts {
            std::hint::black_box(w.builder.build_frame_with_quality(&w.readings, t0));
        }
    });
    // Window the extractor's own scan histogram over the timed
    // streaming passes (delta isolates this run from anything else in
    // the process-global registry) and pool the passes, so the printed
    // per-scan latency is an aggregate, not one pass's luck.
    let scan_hist = || match m2ai_obs::find("m2ai_extract_stream_scan_seconds", &[]) {
        Some(m2ai_obs::MetricValue::Histogram(h)) => Some(h),
        _ => None,
    };
    let scan_before = scan_hist();
    let frames_per_sec_stream = rate(6, N_WINDOWS, || {
        std::hint::black_box(stream_pass(&w));
    });
    let mut scan_window = m2ai_obs::HistogramDelta::new();
    if let Some(after) = scan_hist() {
        scan_window.accumulate(&match &scan_before {
            Some(before) => after.delta(before),
            None => after,
        });
    }

    let streamed = stream_pass(&w);
    let mut max_abs_diff = 0.0f64;
    for (frame, &t0) in streamed.iter().zip(&w.starts) {
        let (batch, _) = w.builder.build_frame_with_quality(&w.readings, t0);
        for (s, b) in frame.iter().zip(&batch) {
            max_abs_diff = max_abs_diff.max((f64::from(*s) - f64::from(*b)).abs());
        }
    }

    let report = ExtractReport {
        frames_per_sec_batch,
        frames_per_sec_stream,
        stream_speedup: frames_per_sec_stream / frames_per_sec_batch,
        max_abs_diff,
        cores: available_cores(),
    };
    println!(
        "batch         {:>10.1} windows/sec",
        report.frames_per_sec_batch
    );
    println!(
        "stream        {:>10.1} windows/sec",
        report.frames_per_sec_stream
    );
    println!("speedup       {:>10.2}x", report.stream_speedup);
    println!("max |Δ|       {:>10.2e}", report.max_abs_diff);
    println!("cores         {:>10.0}", report.cores);
    if scan_window.count() > 0 {
        let p99 = scan_window.quantile(0.99);
        println!(
            "scan p99      {:>10.1} us ({} scans{})",
            p99.value * 1e6,
            scan_window.count(),
            if p99.saturated { ", SATURATED" } else { "" }
        );
    }
    report
}

/// Gate checks. All floors are NaN-safe (`!ge` fails on NaN); the
/// speedup and accuracy gates are absolute, only the raw-rate
/// comparison against the baseline requires matching core counts.
fn regressions(fresh: &ExtractReport, baseline: &ExtractReport) -> Vec<String> {
    let mut failures = Vec::new();
    if !fresh.stream_speedup.ge(&MIN_STREAM_SPEEDUP) {
        failures.push(format!(
            "stream_speedup {:.2}x is below the {MIN_STREAM_SPEEDUP}x floor",
            fresh.stream_speedup
        ));
    }
    if !MAX_ABS_DIFF.ge(&fresh.max_abs_diff) {
        failures.push(format!(
            "max_abs_diff {:.2e} exceeds the {MAX_ABS_DIFF:.0e} accuracy band",
            fresh.max_abs_diff
        ));
    }
    if fresh.cores != baseline.cores {
        println!(
            "extract gate: baseline cores {:.0} != fresh cores {:.0}; \
             skipping the relative speedup check (absolute gates still applied)",
            baseline.cores, fresh.cores
        );
        return failures;
    }
    let floor = (1.0 - MAX_REGRESSION) * baseline.stream_speedup;
    if !fresh.stream_speedup.ge(&floor) {
        failures.push(format!(
            "stream_speedup {:.2}x regressed more than {:.0}% from the baseline {:.2}x",
            fresh.stream_speedup,
            100.0 * MAX_REGRESSION,
            baseline.stream_speedup
        ));
    }
    failures
}

/// Measures and writes the JSON baseline to `path`.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn run_and_write(path: &str) -> ExtractReport {
    let report = run();
    std::fs::write(path, report.to_json()).expect("write extract report");
    println!("wrote {path}");
    report
}

/// Re-measures and gates against the baseline at `path`.
///
/// Returns `true` when every gate passes; prints one line per failure
/// otherwise.
///
/// # Panics
///
/// Panics if `path` is missing or unparseable — the baseline is
/// checked in, so that is a repo defect, not a perf regression.
pub fn check(path: &str) -> bool {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read extract baseline {path}: {e}"));
    let baseline =
        ExtractReport::from_json(&json).unwrap_or_else(|| panic!("parse extract baseline {path}"));
    let fresh = run();
    let failures = regressions(&fresh, &baseline);
    if failures.is_empty() {
        println!("extract gate: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("extract gate FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(speedup: f64, diff: f64) -> ExtractReport {
        ExtractReport {
            frames_per_sec_batch: 100.0,
            frames_per_sec_stream: 100.0 * speedup,
            stream_speedup: speedup,
            max_abs_diff: diff,
            cores: 1.0,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(4.25, 3.5e-4);
        let back = ExtractReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn healthy_report_passes() {
        let r = report(4.0, 1e-4);
        assert!(regressions(&r, &r).is_empty());
    }

    #[test]
    fn speedup_floor_is_absolute_across_core_counts() {
        let base = report(4.0, 1e-4);
        let mut bad = report(2.0, 1e-4);
        bad.cores = 8.0; // relative check skipped, floor still fires
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("floor"));
        // NaN must fail, not sneak past.
        bad.stream_speedup = f64::NAN;
        assert!(!regressions(&bad, &base).is_empty());
    }

    #[test]
    fn accuracy_band_is_enforced() {
        let base = report(4.0, 1e-4);
        let drifted = report(4.0, 5e-3);
        let failures = regressions(&drifted, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("max_abs_diff"));
        let nan = report(4.0, f64::NAN);
        assert!(!regressions(&nan, &base).is_empty());
    }

    #[test]
    fn relative_regression_needs_matching_cores() {
        let base = report(8.0, 1e-4);
        // 3.2x clears the absolute floor but lost 60% vs baseline.
        let bad = report(3.2, 1e-4);
        assert!(!regressions(&bad, &base).is_empty());
        let mut other_iron = bad.clone();
        other_iron.cores = 16.0;
        assert!(regressions(&other_iron, &base).is_empty());
    }

    #[test]
    fn measured_streaming_matches_batch_within_band() {
        // A miniature end-to-end cross-check of the bench's own
        // accuracy comparison (cheap: one pass, no timing loops).
        let w = workload();
        let streamed = stream_pass(&w);
        assert_eq!(streamed.len(), N_WINDOWS);
        let mut worst = 0.0f64;
        for (frame, &t0) in streamed.iter().zip(&w.starts) {
            let (batch, _) = w.builder.build_frame_with_quality(&w.readings, t0);
            assert_eq!(frame.len(), batch.len());
            for (s, b) in frame.iter().zip(&batch) {
                worst = worst.max((f64::from(*s) - f64::from(*b)).abs());
            }
        }
        assert!(worst <= MAX_ABS_DIFF, "worst |Δ| {worst:.2e} out of band");
    }
}
