//! Experiment harness regenerating every table and figure of the M2AI
//! paper's evaluation (Section VI).
//!
//! ```text
//! cargo run --release -p m2ai-bench --bin experiments -- all
//! cargo run --release -p m2ai-bench --bin experiments -- fig9 --fast
//! cargo run --release -p m2ai-bench --bin experiments -- serve --metrics-out m.json
//! ```

use m2ai_bench::{run_all, Budget};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Extract `--metrics-out <path>` (value form `--metrics-out=<path>`
    // also accepted) before positional parsing, so the path is never
    // mistaken for a subcommand.
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics-out" {
            if i + 1 >= args.len() {
                eprintln!("--metrics-out needs a path");
                std::process::exit(2);
            }
            metrics_out = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(path) = args[i].strip_prefix("--metrics-out=") {
            metrics_out = Some(path.to_string());
            args.remove(i);
        } else if args[i] == "--trace-out" {
            if i + 1 >= args.len() {
                eprintln!("--trace-out needs a path");
                std::process::exit(2);
            }
            trace_out = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(path) = args[i].strip_prefix("--trace-out=") {
            trace_out = Some(path.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    // `--trace-out` samples every trace for the whole run and exports
    // the collected spans as a Chrome trace_event JSON (loadable in
    // Perfetto / chrome://tracing) on exit.
    if trace_out.is_some() {
        m2ai_obs::trace::set_trace_config(m2ai_obs::trace::TraceConfig { sample_one_in_n: 1 });
    }
    let budget = if args.iter().any(|a| a == "--fast") {
        Budget::Fast
    } else {
        Budget::Full
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    for w in which {
        match w {
            "all" => run_all(budget),
            "fig2" => m2ai_bench::fig2(budget),
            "fig3" => m2ai_bench::fig3(budget),
            "fig9" | "table1" => m2ai_bench::fig9_and_table1(budget),
            "fig10" => m2ai_bench::fig10(budget),
            "fig11" => m2ai_bench::fig11(budget),
            "fig12" => m2ai_bench::fig12(budget),
            "fig13" => m2ai_bench::fig13(budget),
            "fig14" => m2ai_bench::fig14(budget),
            "fig15" => m2ai_bench::fig15(budget),
            "fig16" => m2ai_bench::fig16(budget),
            "fig17" => m2ai_bench::fig17(budget),
            "ablation-aoa" => m2ai_bench::ablation_aoa(budget),
            "ext-transfer" => m2ai_bench::ext_transfer(budget),
            "robustness" => {
                m2ai_bench::robustness::run_and_write(budget, "BENCH_robustness.json", 2026);
            }
            "throughput" => {
                if args.iter().any(|a| a == "--check") {
                    if !m2ai_bench::throughput::check("BENCH_throughput.json") {
                        std::process::exit(1);
                    }
                } else {
                    m2ai_bench::throughput::run_and_write("BENCH_throughput.json");
                }
            }
            "extract" => {
                if args.iter().any(|a| a == "--check") {
                    if !m2ai_bench::extract::check("BENCH_extract.json") {
                        std::process::exit(1);
                    }
                } else {
                    m2ai_bench::extract::run_and_write("BENCH_extract.json");
                }
            }
            "quant" => {
                if args.iter().any(|a| a == "--check") {
                    if !m2ai_bench::quant::check(budget, "BENCH_quant.json") {
                        std::process::exit(1);
                    }
                } else {
                    m2ai_bench::quant::run_and_write(budget, "BENCH_quant.json");
                }
            }
            "serve" => {
                if args.iter().any(|a| a == "--check") {
                    if !m2ai_bench::serve::check("BENCH_serve.json") {
                        std::process::exit(1);
                    }
                } else {
                    m2ai_bench::serve::run_and_write("BENCH_serve.json");
                }
            }
            "shard" => {
                if args.iter().any(|a| a == "--check") {
                    if !m2ai_bench::shard::check("BENCH_shard.json") {
                        std::process::exit(1);
                    }
                } else {
                    m2ai_bench::shard::run_and_write("BENCH_shard.json");
                }
            }
            "chaos" => {
                if args.iter().any(|a| a == "--check") {
                    if !m2ai_bench::chaos::check("BENCH_chaos.json") {
                        std::process::exit(1);
                    }
                } else {
                    m2ai_bench::chaos::run_and_write("BENCH_chaos.json");
                }
            }
            "obs" => {
                if !m2ai_bench::obs::check() {
                    if let Some(path) = &metrics_out {
                        m2ai_bench::obs::write_metrics(path);
                    }
                    std::process::exit(1);
                }
            }
            "trace" => {
                if !m2ai_bench::trace_gate::check() {
                    std::process::exit(1);
                }
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!(
                    "known: all fig2 fig3 fig9 table1 fig10..fig17 ablation-aoa ext-transfer robustness throughput extract quant serve shard chaos obs trace; flags --fast --check --metrics-out <path> --trace-out <path>"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &metrics_out {
        m2ai_bench::obs::write_metrics(path);
    }
    if let Some(path) = &trace_out {
        let spans = m2ai_obs::trace::take_spans();
        let body = m2ai_obs::trace::render_trace_events(&spans);
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write trace to {path}: {e}"));
        println!("wrote {path} ({} spans)", spans.len());
    }
}
