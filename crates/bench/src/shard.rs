//! Shard-fabric benchmark and regression gate (serve-fabric PR).
//!
//! Drives the `m2ai-serve-fabric` with a **Zipf-skewed open-loop load
//! generator** — realistic serving traffic is never uniform; a few hot
//! sessions dominate — and measures:
//!
//! * **scaling** — aggregate end-to-end predictions/sec (push → emit)
//!   at 1, 2 and 4 shards over the same skewed arrival trace;
//! * **overload** — a deterministic saturation phase (frozen-ingress
//!   burst + sustained over-capacity arrivals against small queues)
//!   recording shed counts and the p50/p99 *sojourn* latency of the
//!   predictions that survive (push instant → prediction received).
//!
//! ## Gate philosophy
//!
//! Shard scaling is the one quantity in this workspace that cannot be
//! made machine-dimensionless: it needs physical cores. The gate is
//! therefore **core-aware**: on a machine with ≥ 4 cores the 4-shard
//! aggregate must reach [`SCALING_EFFICIENCY`] × 4 ≥ 2.5× the 1-shard
//! rate (the near-linear floor the PR promises); with fewer cores the
//! floor degrades to the parallelism actually available, bottoming
//! out at [`MIN_SCALING_1CORE`] on a single-core runner — where 4
//! time-shared workers can only be *checked for not collapsing*
//! (a global serialization or contention thrash drags the ratio far
//! below it). The measured core count is recorded in the JSON so a
//! baseline from one machine class is never silently compared against
//! another: cross-core-count baselines skip the relative checks and
//! rely on the absolute floors.
//!
//! Overload latency *is* normalised machine-free: the p99 sojourn is
//! multiplied by the same run's 1-shard service rate, giving "how many
//! service times deep is the tail" — a pure function of the queue
//! bounds that must not regress.

use crate::throughput::{json_f64, parse_metric};
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_core::online::HealthState;
use m2ai_core::serve::ServeConfig;
use m2ai_nn::model::SequenceClassifier;
use m2ai_serve_fabric::{FabricConfig, PushOutcome, ServeFabric, SessionKey, ShardThrottle};
use std::time::Instant;

use crate::header;

/// Concurrent streaming sessions in the workload.
const SESSIONS: usize = 96;

/// Sliding window length in frames (the training `T`).
const HISTORY: usize = 12;

/// Zipf exponent of the session-popularity distribution (s = 1.0: the
/// hottest of 96 sessions draws ~19% of all arrivals).
const ZIPF_S: f64 = 1.0;

/// Timed arrivals per measurement pass.
const ARRIVALS: usize = 4000;

/// Shard counts swept for the scaling curve.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Arrivals driven during the sustained overload phase.
const OVERLOAD_ARRIVALS: usize = 3000;

/// Ingress-queue bound during overload (deliberately small).
const OVERLOAD_INGRESS: usize = 64;

/// Per-session engine queue bound during overload.
const OVERLOAD_QUEUE: usize = 16;

/// Minimum per-core scaling efficiency when cores cover the shards:
/// 4 shards on ≥ 4 cores must aggregate ≥ 0.625 × 4 = 2.5× the
/// 1-shard rate.
const SCALING_EFFICIENCY: f64 = 0.625;

/// Scaling floor on a single-core machine, where extra shards can
/// only time-share: the gate only rejects collapse (lock convoys,
/// accidental global serialization), not the absent parallelism.
const MIN_SCALING_1CORE: f64 = 0.55;

/// Max tolerated drop of a scaling ratio vs the baseline, applied
/// only when the fresh and baseline core counts match.
const MAX_SCALING_REGRESSION: f64 = 0.25;

/// Max tolerated growth of the service-normalised overload p99
/// sojourn vs the baseline (same-core-count runs only). Queue-depth
/// arithmetic bounds the true value; 150% headroom covers scheduler
/// noise on saturated runners.
const MAX_P99_GROWTH: f64 = 1.5;

/// One fabric measurement. Rates are end-to-end predictions/sec.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Cores the runner exposed (`std::thread::available_parallelism`).
    pub cores: f64,
    /// Concurrent sessions in the workload.
    pub sessions: f64,
    /// Timed arrivals per pass.
    pub arrivals: f64,
    /// Aggregate predictions/sec with one shard.
    pub preds_per_sec_1shard: f64,
    /// Aggregate predictions/sec with two shards.
    pub preds_per_sec_2shard: f64,
    /// Aggregate predictions/sec with four shards.
    pub preds_per_sec_4shard: f64,
    /// `preds_per_sec_2shard / preds_per_sec_1shard`.
    pub scaling_2: f64,
    /// `preds_per_sec_4shard / preds_per_sec_1shard`.
    pub scaling_4: f64,
    /// Arrivals shed (ingress + engine queues) during overload.
    pub overload_shed: f64,
    /// Predictions that survived the overload phase.
    pub overload_emitted: f64,
    /// Median push→receive sojourn of surviving predictions, ms.
    pub overload_p50_sojourn_ms: f64,
    /// 99th-percentile sojourn, ms.
    pub overload_p99_sojourn_ms: f64,
}

impl ShardReport {
    /// Renders the report as a small stable JSON document (hand-rolled;
    /// the workspace carries no serde). Key order is fixed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"m2ai-shard-v1\",\n");
        for (key, v) in [
            ("cores", self.cores),
            ("sessions", self.sessions),
            ("arrivals", self.arrivals),
            ("preds_per_sec_1shard", self.preds_per_sec_1shard),
            ("preds_per_sec_2shard", self.preds_per_sec_2shard),
            ("preds_per_sec_4shard", self.preds_per_sec_4shard),
            ("scaling_2", self.scaling_2),
            ("scaling_4", self.scaling_4),
            ("overload_shed", self.overload_shed),
            ("overload_emitted", self.overload_emitted),
            ("overload_p50_sojourn_ms", self.overload_p50_sojourn_ms),
        ] {
            out.push_str(&format!("  \"{key}\": {},\n", json_f64(v)));
        }
        out.push_str(&format!(
            "  \"overload_p99_sojourn_ms\": {}\n",
            json_f64(self.overload_p99_sojourn_ms)
        ));
        out.push('}');
        out.push('\n');
        out
    }

    /// Parses a report previously written by [`ShardReport::to_json`].
    ///
    /// Returns `None` if any expected key is missing or non-numeric.
    pub fn from_json(json: &str) -> Option<ShardReport> {
        Some(ShardReport {
            cores: parse_metric(json, "cores")?,
            sessions: parse_metric(json, "sessions")?,
            arrivals: parse_metric(json, "arrivals")?,
            preds_per_sec_1shard: parse_metric(json, "preds_per_sec_1shard")?,
            preds_per_sec_2shard: parse_metric(json, "preds_per_sec_2shard")?,
            preds_per_sec_4shard: parse_metric(json, "preds_per_sec_4shard")?,
            scaling_2: parse_metric(json, "scaling_2")?,
            scaling_4: parse_metric(json, "scaling_4")?,
            overload_shed: parse_metric(json, "overload_shed")?,
            overload_emitted: parse_metric(json, "overload_emitted")?,
            overload_p50_sojourn_ms: parse_metric(json, "overload_p50_sojourn_ms")?,
            overload_p99_sojourn_ms: parse_metric(json, "overload_p99_sojourn_ms")?,
        })
    }
}

/// splitmix64 step: the arrival stream's deterministic RNG.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn next_unit(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Zipf sampler over `0..n` via its inverse CDF.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Deterministic synthetic spectrum frame (same splitmix-style hash as
/// the serve bench; the load generator must not measure extraction).
fn synth_frame(dim: usize, session: usize, step: usize) -> Vec<f32> {
    let mut state = (session as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((step as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        | 1;
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.5
        })
        .collect()
}

/// The shared workload: the paper's 2-tag/4-antenna joint layout and
/// CNN+LSTM model.
struct Workload {
    model: SequenceClassifier,
    builder: FrameBuilder,
    dim: usize,
}

fn workload() -> Workload {
    let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 0.5);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    Workload {
        model,
        builder,
        dim: layout.frame_dim(),
    }
}

fn fabric_config(shards: usize, ingress: usize, queue: usize) -> FabricConfig {
    FabricConfig {
        shards,
        vnodes: 64,
        ingress_capacity: ingress,
        serve: ServeConfig {
            // Every shard can hold the full population: the scaling
            // sweep measures throughput, not admission.
            max_sessions: SESSIONS,
            max_batch: 64,
            queue_capacity: queue,
            history_len: HISTORY,
            ..ServeConfig::default()
        },
        supervision: Default::default(),
    }
}

/// Opens the session population and fills every window ring
/// (untimed). Returns the keys and the per-session step cursors.
fn open_and_fill(fabric: &ServeFabric, w: &Workload) -> (Vec<SessionKey>, Vec<usize>) {
    let keys: Vec<SessionKey> = (0..SESSIONS)
        .map(|_| fabric.open_session().expect("fabric sized for population"))
        .collect();
    for t in 0..HISTORY {
        for (s, &key) in keys.iter().enumerate() {
            // Closed-loop fill: retry shed pushes after letting the
            // shard drain (only matters for the tiny overload queues).
            loop {
                match fabric
                    .push_frame(
                        key,
                        t as f64 * 0.5,
                        synth_frame(w.dim, s, t),
                        HealthState::Healthy,
                    )
                    .expect("session open")
                {
                    PushOutcome::Enqueued => break,
                    PushOutcome::Shed => std::thread::yield_now(),
                }
            }
        }
    }
    fabric.flush();
    (keys, vec![HISTORY; SESSIONS])
}

/// Best-of-three aggregate rate at `shards` shards: push `ARRIVALS`
/// Zipf-skewed frames end to end and time until the last prediction is
/// collected. Shed-free by construction (queues sized for the trace),
/// so emitted == arrivals is asserted, doubling as a conservation
/// check.
fn measure_rate(w: &Workload, shards: usize) -> f64 {
    let fabric = ServeFabric::new(
        w.model.clone(),
        w.builder.clone(),
        fabric_config(shards, 4 * ARRIVALS.max(SESSIONS), ARRIVALS),
    );
    let (keys, mut step) = open_and_fill(&fabric, w);
    let zipf = Zipf::new(SESSIONS, ZIPF_S);
    let mut rng = 0x005E_ED0F_5A1D_u64 ^ shards as u64;
    let mut best = 0.0f64;
    for pass in 0..4 {
        let start = Instant::now();
        let mut emitted = 0usize;
        for i in 0..ARRIVALS {
            let s = zipf.sample(next_unit(&mut rng));
            let out = fabric
                .push_frame(
                    keys[s],
                    step[s] as f64 * 0.5,
                    synth_frame(w.dim, s, step[s]),
                    HealthState::Healthy,
                )
                .expect("session open");
            assert_eq!(out, PushOutcome::Enqueued, "scaling phase must not shed");
            step[s] += 1;
            if i % 256 == 255 {
                emitted += fabric.poll().len();
            }
        }
        emitted += fabric.flush().len();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(
            emitted, ARRIVALS,
            "every healthy arrival past the ring fill must emit"
        );
        if pass > 0 {
            // Pass 0 is warmup (page faults, branch history).
            best = best.max(ARRIVALS as f64 / secs);
        }
    }
    drop(fabric.shutdown());
    best
}

/// Overload phase at 4 shards with deliberately small queues: a
/// frozen-ingress burst makes shedding deterministic, then sustained
/// over-capacity arrivals measure the sojourn tail of survivors.
fn measure_overload(w: &Workload) -> (u64, usize, f64, f64) {
    let shards = 4;
    let fabric = ServeFabric::new(
        w.model.clone(),
        w.builder.clone(),
        fabric_config(shards, OVERLOAD_INGRESS, OVERLOAD_QUEUE),
    );
    let (keys, mut step) = open_and_fill(&fabric, w);
    let zipf = Zipf::new(SESSIONS, ZIPF_S);
    let mut rng = 0x00E4_10AD_5EED_u64;
    let epoch = Instant::now();
    let mut sojourns_ms: Vec<f64> = Vec::with_capacity(OVERLOAD_ARRIVALS);
    let mut shed = 0u64;
    let collect = |fabric: &ServeFabric, sojourns: &mut Vec<f64>| {
        let now_s = epoch.elapsed().as_secs_f64();
        for p in fabric.poll() {
            sojourns.push((now_s - p.prediction.time_s) * 1e3);
        }
    };
    // Phase 1: freeze every shard and push until the ingress queues
    // are provably saturated — sheds are guaranteed, not scheduled.
    for shard in 0..shards {
        fabric.set_throttle(shard, ShardThrottle::Freeze);
    }
    let burst = shards * OVERLOAD_INGRESS + 512;
    for _ in 0..burst {
        let s = zipf.sample(next_unit(&mut rng));
        let out = fabric
            .push_frame(
                keys[s],
                epoch.elapsed().as_secs_f64(),
                synth_frame(w.dim, s, step[s]),
                HealthState::Healthy,
            )
            .expect("session open");
        if out == PushOutcome::Shed {
            shed += 1;
        } else {
            step[s] += 1;
        }
    }
    assert!(shed > 0, "frozen ingress must shed past its bound");
    for shard in 0..shards {
        fabric.set_throttle(shard, ShardThrottle::Run);
    }
    // Phase 2: sustained arrivals as fast as the producer can push —
    // offered load exceeds the 4-shard service rate on any machine
    // because pushing is far cheaper than an LSTM step.
    for i in 0..OVERLOAD_ARRIVALS {
        let s = zipf.sample(next_unit(&mut rng));
        let out = fabric
            .push_frame(
                keys[s],
                epoch.elapsed().as_secs_f64(),
                synth_frame(w.dim, s, step[s]),
                HealthState::Healthy,
            )
            .expect("session open");
        if out == PushOutcome::Shed {
            shed += 1;
        } else {
            step[s] += 1;
        }
        if i % 128 == 127 {
            collect(&fabric, &mut sojourns_ms);
        }
    }
    let now_s = epoch.elapsed().as_secs_f64();
    for p in fabric.flush() {
        sojourns_ms.push((now_s - p.prediction.time_s) * 1e3);
    }
    collect(&fabric, &mut sojourns_ms);
    let stats = fabric.shutdown();
    let engine_shed: u64 = stats.shards.iter().map(|s| s.engine_shed).sum();
    shed += engine_shed;
    sojourns_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite sojourns"));
    let q = |frac: f64| -> f64 {
        if sojourns_ms.is_empty() {
            return f64::NAN;
        }
        let idx = ((sojourns_ms.len() - 1) as f64 * frac).round() as usize;
        sojourns_ms[idx]
    };
    (shed, sojourns_ms.len(), q(0.50), q(0.99))
}

fn available_cores() -> f64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as f64)
        .unwrap_or(1.0)
}

/// The core-aware scaling floor for `target` shards on `cores` cores.
fn scaling_floor(cores: f64, target: f64) -> f64 {
    let effective = cores.min(target);
    if effective >= 2.0 {
        SCALING_EFFICIENCY * effective
    } else {
        MIN_SCALING_1CORE
    }
}

/// Measures the report on the current machine (fast kernel backend).
pub fn run() -> ShardReport {
    header(
        "Shard",
        "sharded serve fabric: Zipf-skewed scaling + overload tail",
    );
    m2ai_kernels::set_backend(m2ai_kernels::Backend::Fast);
    let w = workload();
    let mut rates = [0.0f64; SHARD_COUNTS.len()];
    for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
        rates[i] = measure_rate(&w, shards);
        println!(
            "{shards} shard(s)          {:>10.0} predictions/sec (aggregate)",
            rates[i]
        );
    }
    let (shed, emitted, p50_ms, p99_ms) = measure_overload(&w);
    let report = ShardReport {
        cores: available_cores(),
        sessions: SESSIONS as f64,
        arrivals: ARRIVALS as f64,
        preds_per_sec_1shard: rates[0],
        preds_per_sec_2shard: rates[1],
        preds_per_sec_4shard: rates[2],
        scaling_2: rates[1] / rates[0],
        scaling_4: rates[2] / rates[0],
        overload_shed: shed as f64,
        overload_emitted: emitted as f64,
        overload_p50_sojourn_ms: p50_ms,
        overload_p99_sojourn_ms: p99_ms,
    };
    println!("cores               {:>10.0}", report.cores);
    println!("scaling 1→2         {:>10.2}x", report.scaling_2);
    println!("scaling 1→4         {:>10.2}x", report.scaling_4);
    println!(
        "overload shed       {:>10.0} of {} arrivals",
        report.overload_shed,
        burst_plus_sustained()
    );
    println!("overload emitted    {:>10.0}", report.overload_emitted);
    println!("overload p50        {:>10.2} ms sojourn", p50_ms);
    println!("overload p99        {:>10.2} ms sojourn", p99_ms);
    report
}

/// Total overload-phase arrivals (burst + sustained), for reporting.
fn burst_plus_sustained() -> usize {
    4 * OVERLOAD_INGRESS + 512 + OVERLOAD_ARRIVALS
}

/// Pure regression gate: every failure is one human-readable line.
pub fn regressions(fresh: &ShardReport, baseline: &ShardReport) -> Vec<String> {
    let mut failures = Vec::new();
    if fresh.preds_per_sec_1shard <= 0.0 || !fresh.preds_per_sec_1shard.is_finite() {
        failures.push("1-shard rate is non-positive; cannot normalise".to_string());
        return failures;
    }
    // Absolute core-aware scaling floors (NaN-safe: NaN must fail).
    for (name, scaling, target) in [
        ("scaling_2", fresh.scaling_2, 2.0),
        ("scaling_4", fresh.scaling_4, 4.0),
    ] {
        let floor = scaling_floor(fresh.cores, target);
        if !scaling.ge(&floor) {
            failures.push(format!(
                "{name} {scaling:.2}x is below the {floor:.2}x floor for {:.0} core(s)",
                fresh.cores
            ));
        }
    }
    // Overload semantics must hold on every machine.
    if !fresh.overload_shed.gt(&0.0) {
        failures.push("overload phase shed nothing: saturation never happened".to_string());
    }
    if !fresh.overload_emitted.gt(&0.0) {
        failures.push("overload phase emitted nothing: fabric stalled under load".to_string());
    }
    for (name, v) in [
        ("overload_p50_sojourn_ms", fresh.overload_p50_sojourn_ms),
        ("overload_p99_sojourn_ms", fresh.overload_p99_sojourn_ms),
    ] {
        if !v.is_finite() {
            failures.push(format!("{name} is not finite"));
        }
    }
    // Relative checks only compare like with like: a 1-core baseline
    // says nothing about a 4-core runner's scaling curve.
    if fresh.cores != baseline.cores {
        println!(
            "shard gate: baseline cores {:.0} != fresh cores {:.0}; skipping relative checks",
            baseline.cores, fresh.cores
        );
        return failures;
    }
    for (name, f, b) in [
        ("scaling_2", fresh.scaling_2, baseline.scaling_2),
        ("scaling_4", fresh.scaling_4, baseline.scaling_4),
    ] {
        let floor = (1.0 - MAX_SCALING_REGRESSION) * b;
        if !f.ge(&floor) {
            failures.push(format!(
                "{name}: {f:.2}x fell more than {:.0}% below baseline {b:.2}x",
                100.0 * MAX_SCALING_REGRESSION
            ));
        }
    }
    // Service-normalised overload tail: sojourn × 1-shard rate is
    // "how many service times deep the p99 sits" — machine-free.
    let norm_fresh = fresh.overload_p99_sojourn_ms * 1e-3 * fresh.preds_per_sec_1shard;
    let norm_base = baseline.overload_p99_sojourn_ms * 1e-3 * baseline.preds_per_sec_1shard;
    let ceiling = (1.0 + MAX_P99_GROWTH) * norm_base;
    if !norm_fresh.le(&ceiling) {
        failures.push(format!(
            "overload p99: service-normalised sojourn {norm_fresh:.1} grew more than \
             {:.0}% above baseline {norm_base:.1}",
            100.0 * MAX_P99_GROWTH
        ));
    }
    failures
}

/// Measures and writes the JSON baseline to `path`.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn run_and_write(path: &str) -> ShardReport {
    let report = run();
    std::fs::write(path, report.to_json()).expect("write shard report");
    println!("wrote {path}");
    report
}

/// Re-measures and gates against the baseline at `path`.
///
/// Returns `true` when no regression was detected; prints one line per
/// failure otherwise.
///
/// # Panics
///
/// Panics if `path` is missing or unparseable — the baseline is
/// checked in, so that is a repo defect, not a perf regression.
pub fn check(path: &str) -> bool {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read shard baseline {path}: {e}"));
    let baseline =
        ShardReport::from_json(&json).unwrap_or_else(|| panic!("parse shard baseline {path}"));
    let fresh = run();
    let failures = regressions(&fresh, &baseline);
    if failures.is_empty() {
        println!("shard gate: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("shard gate FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cores: f64, r1: f64, r2: f64, r4: f64, p99: f64) -> ShardReport {
        ShardReport {
            cores,
            sessions: SESSIONS as f64,
            arrivals: ARRIVALS as f64,
            preds_per_sec_1shard: r1,
            preds_per_sec_2shard: r2,
            preds_per_sec_4shard: r4,
            scaling_2: r2 / r1,
            scaling_4: r4 / r1,
            overload_shed: 100.0,
            overload_emitted: 900.0,
            overload_p50_sojourn_ms: 2.0,
            overload_p99_sojourn_ms: p99,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(4.0, 1000.0, 1800.0, 3200.0, 9.5);
        let back = ShardReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(SESSIONS, ZIPF_S);
        let mut rng = 7u64;
        let mut counts = vec![0usize; SESSIONS];
        for _ in 0..20_000 {
            let s = zipf.sample(next_unit(&mut rng));
            assert!(s < SESSIONS);
            counts[s] += 1;
        }
        assert!(
            counts[0] > 10 * counts[SESSIONS - 1].max(1),
            "head must dominate tail: {} vs {}",
            counts[0],
            counts[SESSIONS - 1]
        );
    }

    #[test]
    fn core_aware_floor_shapes() {
        assert!((scaling_floor(4.0, 4.0) - 2.5).abs() < 1e-12);
        assert!((scaling_floor(8.0, 4.0) - 2.5).abs() < 1e-12);
        assert!((scaling_floor(2.0, 4.0) - 1.25).abs() < 1e-12);
        assert!((scaling_floor(1.0, 4.0) - MIN_SCALING_1CORE).abs() < 1e-12);
        assert!((scaling_floor(4.0, 2.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn gate_trips_on_collapse_and_nan() {
        let base = report(4.0, 1000.0, 1800.0, 3200.0, 9.5);
        let collapsed = report(4.0, 1000.0, 900.0, 800.0, 9.5);
        assert!(regressions(&collapsed, &base)
            .iter()
            .any(|f| f.contains("scaling_4")));
        let mut nan = base.clone();
        nan.scaling_4 = f64::NAN;
        assert!(!regressions(&nan, &base).is_empty());
    }

    #[test]
    fn gate_trips_on_tail_blowup_same_cores_only() {
        let base = report(4.0, 1000.0, 1800.0, 3200.0, 9.5);
        let mut slow = base.clone();
        slow.overload_p99_sojourn_ms = 100.0;
        assert!(regressions(&slow, &base)
            .iter()
            .any(|f| f.contains("overload p99")));
        let mut other_cores = slow.clone();
        other_cores.cores = 8.0;
        assert!(!regressions(&other_cores, &base)
            .iter()
            .any(|f| f.contains("overload p99")));
    }
}
