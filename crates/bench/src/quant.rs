//! Int8 quantized-inference accuracy gate (tiled-GEMM PR).
//!
//! Trains the full M²AI pipeline once in f32, calibrates and freezes
//! the per-channel int8 weights (`Backend::QuantI8`), then scores the
//! frozen model on an *unseen* golden evaluation dataset under both
//! backends. The headline number is the top-1 accuracy delta between
//! f32 and int8 inference — the PR promises it stays within one
//! percentage point.
//!
//! Everything is seed-driven and deterministic — dataset generation,
//! training (bitwise under the fast backend), calibration and the int8
//! arithmetic itself — so the emitted `BENCH_quant.json` doubles as an
//! exact CI baseline: [`check`] re-measures and compares the parsed
//! values for equality, then enforces the 1 pp delta gate on the fresh
//! measurement.

use m2ai_core::dataset::generate_dataset;
use m2ai_kernels::{self as kernels, Backend};

use crate::throughput::{json_f64, parse_metric};
use crate::{base_config, base_options, header, Budget};

/// Maximum tolerated top-1 accuracy drop of int8 vs f32, in
/// percentage points (the PR's acceptance criterion).
pub const MAX_DELTA_PP: f64 = 1.0;

/// Calibration sequences fed to `prepare_quantized` (taken from the
/// head of the training bundle, i.e. the distribution the activations
/// actually come from).
const CALIB_SAMPLES: usize = 32;

/// One quantized-accuracy measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantReport {
    /// Top-1 accuracy of the frozen f32 model on the golden eval set.
    pub f32_top1: f64,
    /// Top-1 accuracy of the same model under `Backend::QuantI8`.
    pub quant_top1: f64,
    /// `(f32_top1 - quant_top1) * 100` — positive when int8 is worse.
    pub delta_pp: f64,
    /// Golden evaluation samples scored.
    pub eval_samples: f64,
}

impl QuantReport {
    /// Renders the report as a small stable JSON document (hand-rolled;
    /// the workspace carries no serde). Key order is fixed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"m2ai-quant-v1\",\n");
        out.push_str(&format!("  \"f32_top1\": {},\n", json_f64(self.f32_top1)));
        out.push_str(&format!(
            "  \"quant_top1\": {},\n",
            json_f64(self.quant_top1)
        ));
        out.push_str(&format!("  \"delta_pp\": {},\n", json_f64(self.delta_pp)));
        out.push_str(&format!(
            "  \"eval_samples\": {}\n",
            json_f64(self.eval_samples)
        ));
        out.push('}');
        out.push('\n');
        out
    }

    /// Parses a report previously written by [`QuantReport::to_json`].
    pub fn from_json(json: &str) -> Option<QuantReport> {
        Some(QuantReport {
            f32_top1: parse_metric(json, "f32_top1")?,
            quant_top1: parse_metric(json, "quant_top1")?,
            delta_pp: parse_metric(json, "delta_pp")?,
            eval_samples: parse_metric(json, "eval_samples")?,
        })
    }
}

/// Trains, calibrates and scores both backends. Restores the fast
/// backend before returning regardless of entry state.
pub fn run(budget: Budget) -> QuantReport {
    header(
        "Quant",
        "int8 inference accuracy vs f32, frozen clean-trained model",
    );
    kernels::set_backend(Backend::Fast);
    let cfg = base_config(budget);
    let bundle = generate_dataset(&cfg);
    let outcome = crate::train_m2ai(&bundle, &base_options(budget));
    println!(
        "clean training: {:5.1}% held-out accuracy",
        100.0 * outcome.test_accuracy
    );

    // Golden eval set: unseen recordings from the same deployment.
    let mut eval_cfg = cfg.clone();
    eval_cfg.seed = cfg.seed + 2000;
    let golden = generate_dataset(&eval_cfg);

    let mut model = outcome.model;
    let f32_top1 = m2ai_nn::train::evaluate(&model, &golden.samples);

    // Calibrate activation ranges on training-distribution sequences,
    // then freeze the int8 weights and score under QuantI8.
    model.prepare_quantized(
        bundle
            .samples
            .iter()
            .take(CALIB_SAMPLES)
            .map(|(frames, _)| frames.as_slice()),
    );
    kernels::set_backend(Backend::QuantI8);
    let quant_top1 = m2ai_nn::train::evaluate(&model, &golden.samples);
    kernels::set_backend(Backend::Fast);

    let report = QuantReport {
        f32_top1,
        quant_top1,
        delta_pp: (f32_top1 - quant_top1) * 100.0,
        eval_samples: golden.samples.len() as f64,
    };
    println!(
        "golden eval   f32 {:5.1}%   int8 {:5.1}%   delta {:+.2} pp ({} samples)",
        100.0 * report.f32_top1,
        100.0 * report.quant_top1,
        report.delta_pp,
        report.eval_samples
    );
    report
}

/// Pure gate: every failure is one human-readable line.
///
/// The delta gate is absolute (and NaN-safe). The baseline comparison
/// is exact: the whole pipeline is deterministic f32/int8 arithmetic,
/// so any drift in the measured accuracies is a semantic change to
/// kernels, calibration or training — exactly what the gate exists to
/// catch.
pub fn regressions(fresh: &QuantReport, baseline: &QuantReport) -> Vec<String> {
    let mut failures = Vec::new();
    // NaN-safe: a NaN delta must fail the gate, not pass it.
    if !fresh.delta_pp.le(&MAX_DELTA_PP) {
        failures.push(format!(
            "int8 top-1 dropped {:.2} pp vs f32 (> {MAX_DELTA_PP} pp allowed)",
            fresh.delta_pp
        ));
    }
    if !fresh.eval_samples.gt(&0.0) {
        failures.push("golden eval set is empty; accuracy is vacuous".to_string());
    }
    for (name, f, b) in [
        ("f32_top1", fresh.f32_top1, baseline.f32_top1),
        ("quant_top1", fresh.quant_top1, baseline.quant_top1),
        ("eval_samples", fresh.eval_samples, baseline.eval_samples),
    ] {
        if f != b {
            failures.push(format!(
                "{name} = {f} differs from baseline {b}; the pipeline is \
                 deterministic, so re-baseline only with an intentional change"
            ));
        }
    }
    failures
}

/// Measures and writes the JSON baseline to `path`.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn run_and_write(budget: Budget, path: &str) -> QuantReport {
    let report = run(budget);
    std::fs::write(path, report.to_json()).expect("write quant report");
    println!("wrote {path}");
    report
}

/// Re-measures and gates against the baseline at `path`.
///
/// Returns `true` when no regression was detected; prints one line per
/// failure otherwise.
///
/// # Panics
///
/// Panics if `path` is missing or unparseable — the baseline is
/// checked in, so that is a repo defect, not a regression.
pub fn check(budget: Budget, path: &str) -> bool {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read quant baseline {path}: {e}"));
    let baseline =
        QuantReport::from_json(&json).unwrap_or_else(|| panic!("parse quant baseline {path}"));
    let fresh = run(budget);
    let failures = regressions(&fresh, &baseline);
    if failures.is_empty() {
        println!("quant gate: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("quant gate FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(f32_top1: f64, quant_top1: f64) -> QuantReport {
        QuantReport {
            f32_top1,
            quant_top1,
            delta_pp: (f32_top1 - quant_top1) * 100.0,
            eval_samples: 96.0,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(0.96875, 0.9583333333333334);
        let back = QuantReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(0.97, 0.965);
        assert!(regressions(&r, &r).is_empty());
    }

    #[test]
    fn delta_gate_trips_past_one_point() {
        let bad = report(0.97, 0.95);
        let failures = regressions(&bad, &bad);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("pp"));
        // Quantization *helping* never trips the delta gate.
        let good = report(0.95, 0.97);
        assert!(regressions(&good, &good).is_empty());
        // NaN must fail, not pass.
        let mut nan = report(0.97, 0.97);
        nan.delta_pp = f64::NAN;
        assert!(!regressions(&nan, &nan).is_empty());
    }

    #[test]
    fn accuracy_drift_vs_baseline_trips() {
        let base = report(0.97, 0.965);
        let drifted = report(0.97, 0.9583333);
        let failures = regressions(&drifted, &base);
        assert!(failures.iter().any(|f| f.contains("quant_top1")));
    }

    #[test]
    fn empty_eval_set_is_vacuous() {
        let mut r = report(0.97, 0.965);
        r.eval_samples = 0.0;
        assert!(!regressions(&r, &r).is_empty());
    }
}
