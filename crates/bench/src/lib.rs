//! Shared experiment-harness machinery for the `experiments` binary and
//! the `figures` bench target.
//!
//! Each `fig*` function regenerates one table or figure of the paper's
//! evaluation (Section VI) and prints the measured rows next to the
//! values the paper reports, so a run reads as a side-by-side
//! reproduction check.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod extract;
pub mod obs;
pub mod quant;
pub mod robustness;
pub mod serve;
pub mod shard;
pub mod throughput;
pub mod trace_gate;

use m2ai_core::dataset::{generate_dataset, ExperimentConfig, RoomKind};
use m2ai_core::frames::FeatureMode;
use m2ai_core::network::Architecture;
use m2ai_core::pipeline::{evaluate_baselines, train_m2ai, TrainOptions, TrainOutcome};

/// How much compute an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Full reproduction run (the numbers recorded in EXPERIMENTS.md).
    Full,
    /// Smoke-test run for `cargo bench` / CI: same code paths, smaller
    /// datasets and fewer epochs. Accuracies are lower across the
    /// board but orderings still show.
    Fast,
}

impl Budget {
    /// Samples recorded per activity class.
    pub fn samples_per_class(self) -> usize {
        match self {
            Budget::Full => 40,
            Budget::Fast => 8,
        }
    }

    /// Training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Budget::Full => 60,
            Budget::Fast => 12,
        }
    }

    /// Larger budget for the headline Fig. 9 / Table I comparison.
    pub fn headline_samples_per_class(self) -> usize {
        match self {
            Budget::Full => 80,
            Budget::Fast => 10,
        }
    }

    /// Headline training epochs.
    pub fn headline_epochs(self) -> usize {
        match self {
            Budget::Full => 120,
            Budget::Fast => 15,
        }
    }
}

/// Base experiment configuration under a budget.
pub fn base_config(budget: Budget) -> ExperimentConfig {
    ExperimentConfig {
        samples_per_class: budget.samples_per_class(),
        ..ExperimentConfig::paper_default()
    }
}

/// Base training options under a budget.
pub fn base_options(budget: Budget) -> TrainOptions {
    TrainOptions {
        epochs: budget.epochs(),
        n_threads: 2,
        ..TrainOptions::paper_default()
    }
}

/// Trains M²AI under a modified config and returns the outcome.
pub fn run_condition(
    budget: Budget,
    tweak: impl FnOnce(&mut ExperimentConfig),
    opt_tweak: impl FnOnce(&mut TrainOptions),
) -> TrainOutcome {
    let mut config = base_config(budget);
    tweak(&mut config);
    let bundle = generate_dataset(&config);
    let mut opts = base_options(budget);
    opt_tweak(&mut opts);
    train_m2ai(&bundle, &opts)
}

fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

fn header(id: &str, title: &str) {
    println!();
    println!("==== {id}: {title} ====");
}

/// Fig. 3 — phase jumping across hopping channels is linear in
/// frequency; calibration flattens it.
pub fn fig3(_budget: Budget) {
    use m2ai_core::calibration::PhaseCalibrator;
    use m2ai_dsp::stats::{circular_median, linear_fit};
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::SceneSnapshot;

    header("Fig. 3", "phase jumping caused by frequency hopping");
    let cfg = ReaderConfig {
        phase_noise_std: 0.02,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(Room::hall(), cfg, 1);
    let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.2)]);
    let readings = reader.run(|_| scene.clone(), 60.0);
    let cal = PhaseCalibrator::learn(&readings, 1, 4);

    // Per-channel median of raw and calibrated phase on antenna 0.
    let mut raw: Vec<(f64, f64)> = Vec::new();
    let mut calibrated_spread = Vec::new();
    for c in 0..m2ai_rfsim::channel::N_CHANNELS {
        let phases: Vec<f64> = readings
            .iter()
            .filter(|r| r.channel == c && r.antenna == 0)
            .map(|r| r.phase_rad)
            .collect();
        let cal_phases: Vec<f64> = readings
            .iter()
            .filter(|r| r.channel == c && r.antenna == 0)
            .map(|r| cal.calibrate(r))
            .collect();
        if phases.is_empty() {
            continue;
        }
        raw.push((
            m2ai_rfsim::channel::channel_frequency_hz(c) / 1e6,
            circular_median(&phases),
        ));
        calibrated_spread.push(circular_median(&cal_phases));
    }
    // Unwrap raw medians across channels before fitting.
    let mut unwrapped = vec![raw[0].1];
    for w in raw.windows(2) {
        let mut v = w[1].1;
        let prev = *unwrapped.last().expect("non-empty");
        while v - prev > std::f64::consts::PI {
            v -= 2.0 * std::f64::consts::PI;
        }
        while v - prev < -std::f64::consts::PI {
            v += 2.0 * std::f64::consts::PI;
        }
        unwrapped.push(v);
    }
    let freqs: Vec<f64> = raw.iter().map(|r| r.0).collect();
    let (slope, _) = linear_fit(&freqs, &unwrapped);
    let residual: f64 = {
        let (s, i) = linear_fit(&freqs, &unwrapped);
        (freqs
            .iter()
            .zip(&unwrapped)
            .map(|(f, p)| (p - (s * f + i)).powi(2))
            .sum::<f64>()
            / freqs.len() as f64)
            .sqrt()
    };
    let cal_min = calibrated_spread.iter().cloned().fold(f64::MAX, f64::min);
    let cal_max = calibrated_spread.iter().cloned().fold(f64::MIN, f64::max);
    println!("paper:    raw phase vs frequency follows a linear model (visual)");
    println!(
        "measured: slope {slope:.3} rad/MHz over {} channels, rms residual {residual:.3} rad",
        freqs.len()
    );
    println!(
        "measured: after Eq.1 calibration per-channel medians span {:.3} rad (flat)",
        cal_max - cal_min
    );
}

/// Fig. 2 — AoA pseudospectra: multipath, blocking, many tags.
pub fn fig2(_budget: Budget) {
    use m2ai_core::calibration::PhaseCalibrator;
    use m2ai_core::frames::{FrameBuilder, FrameLayout};
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::{Blocker, SceneSnapshot};

    header(
        "Fig. 2",
        "pseudospectrum: single tag, blocked path, many tags",
    );
    let spectrum_peaks = |scene: &SceneSnapshot, n_tags: usize| -> Vec<Vec<(f64, f64)>> {
        let cfg = ReaderConfig {
            hopping_offsets: false,
            phase_noise_std: 0.02,
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(Room::laboratory(), cfg, n_tags);
        let scene = scene.clone();
        let readings = reader.run(move |_| scene.clone(), 2.0);
        let layout = FrameLayout::new(n_tags, 4, FeatureMode::MusicOnly);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(n_tags, 4), 2.0);
        let frame = builder.build_frame(&readings, 0.0);
        (0..n_tags)
            .map(|tag| {
                let spec = &frame[tag * 180..(tag + 1) * 180];
                let mut peaks: Vec<(f64, f64)> = (1..179)
                    .filter(|&i| spec[i] > spec[i - 1] && spec[i] >= spec[i + 1])
                    .map(|i| (i as f64, spec[i] as f64))
                    .collect();
                peaks.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                peaks.truncate(3);
                peaks
            })
            .collect()
    };

    let tag = Point2::new(4.2, 4.5);
    let single = SceneSnapshot::with_tags(vec![tag]);
    let peaks_a = &spectrum_peaks(&single, 1)[0];
    println!("(a) stationary tag: top peaks (angle°, rel. power):");
    for (a, p) in peaks_a {
        println!("      {a:5.0}°  {p:.2}");
    }

    let mut blocked = single.clone();
    blocked
        .blockers
        .push(Blocker::person(Point2::new(5.4, 2.4)));
    let peaks_b = &spectrum_peaks(&blocked, 1)[0];
    println!("(b) with a blocking person: top peaks shift/attenuate:");
    for (a, p) in peaks_b {
        println!("      {a:5.0}°  {p:.2}");
    }

    let many = SceneSnapshot::with_tags(vec![
        tag,
        Point2::new(5.8, 4.0),
        Point2::new(6.6, 5.2),
        Point2::new(3.2, 3.6),
        Point2::new(7.4, 3.1),
        Point2::new(4.9, 5.8),
    ]);
    let all = spectrum_peaks(&many, 6);
    let total: usize = all.iter().map(|p| p.len()).sum();
    println!("(c) six tags: {total} pseudospectrum peaks across tags (massive multipath)");
    println!(
        "paper: 3 paths for one tag; blocking kills/shifts peaks; many tags → many twisted paths"
    );
}

/// Fig. 9 + Table I — overall comparison and the confusion matrix.
pub fn fig9_and_table1(budget: Budget) {
    header("Fig. 9", "overall activity identification accuracy");
    let mut config = base_config(budget);
    config.samples_per_class = budget.headline_samples_per_class();
    let bundle = generate_dataset(&config);
    let mut opts = base_options(budget);
    opts.epochs = budget.headline_epochs();
    let outcome = train_m2ai(&bundle, &opts);
    let mut rows = vec![("M2AI (CNN+LSTM)".to_string(), outcome.test_accuracy)];
    rows.extend(evaluate_baselines(
        &bundle,
        0.2,
        base_options(budget).seed,
        base_options(budget).n_threads,
    ));
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("paper: M2AI 97%, 27 points over the runner-up (SVM ~70%)");
    for (name, acc) in &rows {
        println!("  {:22} {}", name, pct(*acc));
    }
    let gap = rows[0].1 - rows.iter().skip(1).map(|r| r.1).fold(0.0, f64::max);
    println!("measured gap to runner-up: {:.1} points", 100.0 * gap);

    header("Table I", "confusion matrix of activity identification");
    println!("paper: >=93% on the diagonal for all 12 scenarios");
    println!("{}", outcome.confusion);
    println!(
        "measured: overall {} / diagonal min {}",
        pct(outcome.confusion.accuracy()),
        pct((0..12)
            .filter_map(|c| outcome.confusion.recall(c))
            .fold(1.0, f64::min))
    );
}

/// Fig. 10 — impact of phase calibration.
pub fn fig10(budget: Budget) {
    header("Fig. 10", "impact of phase calibration");
    let on = run_condition(budget, |_| {}, |_| {});
    let off = run_condition(budget, |c| c.calibrate = false, |_| {});
    println!("paper:    with calibration 97%   without 52%");
    println!(
        "measured: with calibration {}   without {}",
        pct(on.test_accuracy),
        pct(off.test_accuracy)
    );
}

/// Fig. 11 — number of simultaneously-acting persons.
pub fn fig11(budget: Budget) {
    header("Fig. 11", "impact of the number of objects (persons)");
    println!("paper: degrades gracefully; ~80% with three persons");
    for n in 1..=3 {
        let out = run_condition(budget, |c| c.n_persons = n, |_| {});
        println!("  {n} person(s): {}", pct(out.test_accuracy));
    }
}

/// Fig. 12 — laboratory (high multipath) vs hall (low multipath).
pub fn fig12(budget: Budget) {
    header("Fig. 12", "impact of the environment");
    println!("paper: hall ~95%, close to the laboratory result");
    for (kind, name) in [
        (RoomKind::Laboratory, "laboratory"),
        (RoomKind::Hall, "hall"),
    ] {
        let out = run_condition(budget, |c| c.room = kind, |_| {});
        println!("  {name:11}: {}", pct(out.test_accuracy));
    }
}

/// Fig. 13 — subject distance from the array.
pub fn fig13(budget: Budget) {
    header("Fig. 13", "impact of distance");
    println!("paper: no clear correlation with distance over 1-4 m");
    for d in [1.5, 2.0, 3.0, 4.0] {
        let out = run_condition(budget, |c| c.distance_m = d, |_| {});
        println!("  {d:.1} m: {}", pct(out.test_accuracy));
    }
}

/// Fig. 14 — number of reader antennas.
pub fn fig14(budget: Budget) {
    header("Fig. 14", "impact of the number of antennas");
    println!("paper: accuracy improves from 2 to 4 antennas");
    for n in 2..=4 {
        let out = run_condition(budget, |c| c.n_antennas = n, |_| {});
        println!("  {n} antennas: {}", pct(out.test_accuracy));
    }
}

/// Fig. 15 — tags per person.
pub fn fig15(budget: Budget) {
    header("Fig. 15", "impact of the number of tags per person");
    println!("paper: more tags -> more path diversity -> higher accuracy");
    for n in 1..=3 {
        let out = run_condition(budget, |c| c.tags_per_person = n, |_| {});
        println!("  {n} tag(s)/person: {}", pct(out.test_accuracy));
    }
}

/// Fig. 16 — preprocessing ablation.
pub fn fig16(budget: Budget) {
    header("Fig. 16", "impact of different preprocessing inputs");
    println!("paper: M2AI (joint) > MUSIC-based > FFT-based > Phase-based ~ RSSI-based");
    for mode in [
        FeatureMode::Joint,
        FeatureMode::MusicOnly,
        FeatureMode::PeriodogramOnly,
        FeatureMode::PhaseOnly,
        FeatureMode::RssiOnly,
    ] {
        let out = run_condition(budget, |c| c.feature_mode = mode, |_| {});
        println!("  {:14}: {}", mode.label(), pct(out.test_accuracy));
    }
}

/// Fig. 17 — network-architecture ablation.
pub fn fig17(budget: Budget) {
    header("Fig. 17", "impact of different learning networks");
    println!("paper: CNN+LSTM ~30 points over CNN-only, ~25 over LSTM-only");
    for arch in [
        Architecture::CnnLstm,
        Architecture::CnnOnly,
        Architecture::LstmOnly,
    ] {
        let out = run_condition(budget, |_| {}, |o| o.architecture = arch);
        println!("  {:16}: {}", arch.label(), pct(out.test_accuracy));
    }
}

/// Runs every experiment in paper order.
pub fn run_all(budget: Budget) {
    fig2(budget);
    fig3(budget);
    fig9_and_table1(budget);
    fig10(budget);
    fig11(budget);
    fig12(budget);
    fig13(budget);
    fig14(budget);
    fig15(budget);
    fig16(budget);
    fig17(budget);
    ablation_aoa(budget);
    ext_transfer(budget);
}

/// AoA-estimation ablation (design choices called out in DESIGN.md):
/// how much do forward–backward averaging, spatial smoothing, MDL and
/// snapshot count each contribute to angle accuracy under coherent
/// multipath? Pure DSP — no training.
pub fn ablation_aoa(_budget: Budget) {
    use m2ai_dsp::music::{pseudospectrum, MusicConfig, SourceCount};
    use m2ai_dsp::Complex;

    header(
        "Ablation",
        "MUSIC design choices (AoA error, coherent 2-path scenes)",
    );
    // Two coherent paths (same per-snapshot phase) at random angle
    // pairs; error = mean distance of the strongest peak to the
    // nearest true angle.
    let mut splitmix = 0x1234_5678u64;
    let mut next = move || {
        splitmix = splitmix.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = splitmix;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let variants: Vec<(&str, MusicConfig, usize)> = vec![
        (
            "FB + smoothing + MDL (default)",
            MusicConfig::paper_default(),
            16,
        ),
        (
            "no forward-backward",
            MusicConfig {
                forward_backward: false,
                ..MusicConfig::paper_default()
            },
            16,
        ),
        (
            "no spatial smoothing",
            MusicConfig {
                smoothing_subarray: None,
                ..MusicConfig::paper_default()
            },
            16,
        ),
        (
            "fixed source count = 1",
            MusicConfig {
                source_count: SourceCount::Fixed(1),
                ..MusicConfig::paper_default()
            },
            16,
        ),
        ("4 snapshots instead of 16", MusicConfig::paper_default(), 4),
    ];
    let trials = 60;
    for (name, cfg, n_snaps) in variants {
        let mut total_err = 0.0;
        let next_local = &mut next;
        for _ in 0..trials {
            let a1 = 30.0 + 120.0 * next_local();
            let a2 = 30.0 + 120.0 * next_local();
            let sv = |ang: f64| m2ai_dsp::music::steering_vector(&cfg, ang);
            let snaps: Vec<Vec<Complex>> = (0..n_snaps)
                .map(|_| {
                    let common = Complex::cis(next_local() * std::f64::consts::TAU);
                    let (s1, s2) = (sv(a1), sv(a2));
                    (0..cfg.n_antennas)
                        .map(|k| {
                            (s1[k] + s2[k].scale(0.7)) * common
                                + Complex::new(
                                    0.05 * (next_local() - 0.5),
                                    0.05 * (next_local() - 0.5),
                                )
                        })
                        .collect()
                })
                .collect();
            let err = match pseudospectrum(&snaps, &cfg) {
                Ok(spec) => {
                    let peaks = spec.peaks(1, 5.0);
                    match peaks.first() {
                        Some(&(ang, _)) => (ang - a1).abs().min((ang - a2).abs()),
                        None => 90.0,
                    }
                }
                Err(_) => 90.0,
            };
            total_err += err;
        }
        println!(
            "  {:32} mean AoA error {:5.1}°",
            name,
            total_err / trials as f64
        );
    }
    println!("(coherent multipath: FB averaging and smoothing are what keep MUSIC usable)");
}

/// Section VII extension: how does the trained model transfer to a
/// different environment without retraining?
pub fn ext_transfer(budget: Budget) {
    use m2ai_nn::train::evaluate;

    header(
        "Ext (Sec. VII)",
        "cross-environment transfer without retraining",
    );
    let mut lab_cfg = base_config(budget);
    lab_cfg.room = RoomKind::Laboratory;
    let lab = generate_dataset(&lab_cfg);
    let outcome = train_m2ai(&lab, &base_options(budget));

    let mut hall_cfg = lab_cfg.clone();
    hall_cfg.room = RoomKind::Hall;
    hall_cfg.seed = lab_cfg.seed + 1; // a different deployment entirely
    let hall = generate_dataset(&hall_cfg);
    let transfer = evaluate(&outcome.model, &hall.samples);
    println!(
        "paper (Sec. VII): the model may need retraining for new settings; \
         pseudospectrum/periodogram are sensitive to the environment"
    );
    println!(
        "measured: lab-trained accuracy {:5.1}% in the lab, {:5.1}% in the unseen hall",
        100.0 * outcome.test_accuracy,
        100.0 * transfer
    );
}
