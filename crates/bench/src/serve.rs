//! Serving-engine benchmark and regression gate (serving PR).
//!
//! Measures multi-session streaming inference three ways on the same
//! 64-session workload:
//!
//! * **replay** — the pre-serving baseline: every new frame re-runs the
//!   model over the full 12-frame sliding window, one session at a
//!   time (what N independent `OnlineIdentifier`s cost);
//! * **step (serial)** — incremental stateful inference, one session
//!   per step: each frame costs a single encoder+LSTM step;
//! * **serve (batched)** — the `ServeEngine`: incremental steps for
//!   all ready sessions coalesced into one micro-batched GEMM tick.
//!
//! The emitted `BENCH_serve.json` doubles as the CI baseline. All
//! gated quantities are *dimensionless ratios against the same
//! machine's replay rate* (so runner speed cancels), plus an absolute
//! floor: the batched engine must beat replay by at least
//! [`MIN_SERVE_SPEEDUP`]× — the incremental step alone saves the
//! window length, batching compounds it.

use crate::throughput::{json_f64, parse_metric};
use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_core::online::HealthState;
use m2ai_core::serve::{ServeConfig, ServeEngine};
use m2ai_nn::model::{SequenceClassifier, StreamState};
use std::time::Instant;

use crate::header;

/// Concurrent streaming sessions in the workload.
const SESSIONS: usize = 64;

/// Sliding window length in frames (the training `T`).
const HISTORY: usize = 12;

/// Timed frame advances per session for the replay baseline (each one
/// is a full `HISTORY`-frame forward pass, so fewer suffice).
const REPLAY_STEPS: usize = 4;

/// Timed frame advances per session for the incremental paths.
/// Sized so one serve pass runs ~100 ms of timed work — short passes
/// made the serve/replay ratio swing with scheduler noise.
const STEP_STEPS: usize = 48;

/// Maximum tolerated drop of a replay-normalised rate vs baseline.
/// The ratio divides two independently measured rates, so run-to-run
/// spread compounds; 20% stays far from any real regression (losing
/// micro-batching alone costs ~47%).
const MAX_REGRESSION: f64 = 0.20;

/// Maximum tolerated growth of replay-normalised p50 latency.
const MAX_LATENCY_GROWTH: f64 = 0.5;

/// Maximum tolerated growth of replay-normalised p99 latency. Wider
/// than the p50 ceiling: even pooled over three passes the tail is the
/// noisiest quantile, but a sustained blow-up (a stall in every tick,
/// an accidental serialisation) moves it far beyond 2.5x.
const MAX_P99_GROWTH: f64 = 1.5;

/// Minimum batched-serve-over-replay predictions/sec speedup.
const MIN_SERVE_SPEEDUP: f64 = 5.0;

/// One serving measurement. Rates are predictions per second; the
/// latencies are per-prediction compute time inside a batched tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Concurrent sessions in the workload.
    pub sessions: f64,
    /// Full-window replay baseline, sessions served serially.
    pub predictions_per_sec_replay: f64,
    /// Incremental stepping, sessions served serially (batch = 1).
    pub predictions_per_sec_step_serial: f64,
    /// The `ServeEngine` micro-batched tick loop.
    pub predictions_per_sec_serve: f64,
    /// `predictions_per_sec_serve / predictions_per_sec_replay`.
    pub serve_speedup: f64,
    /// Sessions sustainable in realtime at one frame per 0.5 s window
    /// (`predictions_per_sec_serve × 0.5`).
    pub realtime_sessions_capacity: f64,
    /// Median per-prediction latency in a batched tick, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile per-prediction latency, microseconds.
    pub p99_latency_us: f64,
    /// The p99 landed in the histogram's overflow bucket, so
    /// `p99_latency_us` is the last finite bound — a floor, not a
    /// measurement. The gate treats a saturated fresh p99 as a failure.
    pub p99_saturated: bool,
}

impl ServeReport {
    /// Renders the report as a small stable JSON document (hand-rolled;
    /// the workspace carries no serde). Key order is fixed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"m2ai-serve-v1\",\n");
        for (key, v) in [
            ("sessions", self.sessions),
            (
                "predictions_per_sec_replay",
                self.predictions_per_sec_replay,
            ),
            (
                "predictions_per_sec_step_serial",
                self.predictions_per_sec_step_serial,
            ),
            ("predictions_per_sec_serve", self.predictions_per_sec_serve),
            ("serve_speedup", self.serve_speedup),
            (
                "realtime_sessions_capacity",
                self.realtime_sessions_capacity,
            ),
            ("p50_latency_us", self.p50_latency_us),
        ] {
            out.push_str(&format!("  \"{key}\": {},\n", json_f64(v)));
        }
        out.push_str(&format!(
            "  \"p99_latency_us\": {},\n",
            json_f64(self.p99_latency_us)
        ));
        out.push_str(&format!(
            "  \"p99_saturated\": {}\n",
            u8::from(self.p99_saturated)
        ));
        out.push('}');
        out.push('\n');
        out
    }

    /// Parses a report previously written by [`ServeReport::to_json`].
    ///
    /// Returns `None` if any expected key is missing or non-numeric.
    pub fn from_json(json: &str) -> Option<ServeReport> {
        Some(ServeReport {
            sessions: parse_metric(json, "sessions")?,
            predictions_per_sec_replay: parse_metric(json, "predictions_per_sec_replay")?,
            predictions_per_sec_step_serial: parse_metric(json, "predictions_per_sec_step_serial")?,
            predictions_per_sec_serve: parse_metric(json, "predictions_per_sec_serve")?,
            serve_speedup: parse_metric(json, "serve_speedup")?,
            realtime_sessions_capacity: parse_metric(json, "realtime_sessions_capacity")?,
            p50_latency_us: parse_metric(json, "p50_latency_us")?,
            p99_latency_us: parse_metric(json, "p99_latency_us")?,
            // Absent in pre-tagged baselines: treat as unsaturated.
            p99_saturated: parse_metric(json, "p99_saturated").is_some_and(|v| v != 0.0),
        })
    }
}

/// Deterministic synthetic spectrum frame (cheap splitmix-style hash;
/// the bench must measure inference, not feature extraction).
fn synth_frame(dim: usize, session: usize, step: usize) -> Vec<f32> {
    let mut state = (session as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((step as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        | 1;
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to [-0.5, 0.5): plenty of dynamic range, no overflow.
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.5
        })
        .collect()
}

/// The fixed workload: a 2-tag/4-antenna joint layout, the paper's
/// CNN+LSTM model, `SESSIONS` streams of pre-built frames.
struct Workload {
    model: SequenceClassifier,
    builder: FrameBuilder,
    /// `frames[session][step]`, `HISTORY` warmup steps + `STEP_STEPS`
    /// timed steps each.
    frames: Vec<Vec<Vec<f32>>>,
}

fn workload() -> Workload {
    let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 0.5);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    let dim = layout.frame_dim();
    let frames = (0..SESSIONS)
        .map(|s| {
            (0..HISTORY + STEP_STEPS)
                .map(|t| synth_frame(dim, s, t))
                .collect()
        })
        .collect();
    Workload {
        model,
        builder,
        frames,
    }
}

/// Best-of-three rate measurement: scheduler preemption and frequency
/// ramps only ever make a pass slower, so the fastest pass is the
/// least-noisy estimate (same policy as the throughput bench).
fn best_rate(events_per_pass: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warmup
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        pass();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(events_per_pass as f64 / secs);
    }
    best
}

/// Current snapshot of the engine's per-prediction latency histogram
/// (`m2ai_serve_prediction_seconds`), `None` until a `ServeEngine` has
/// registered it.
fn prediction_latency() -> Option<m2ai_obs::HistogramSnapshot> {
    match m2ai_obs::find("m2ai_serve_prediction_seconds", &[]) {
        Some(m2ai_obs::MetricValue::Histogram(h)) => Some(h),
        _ => None,
    }
}

/// Measures the report on the current machine (fast kernel backend).
pub fn run() -> ServeReport {
    header(
        "Serve",
        "multi-session streaming: replay vs incremental vs micro-batched",
    );
    m2ai_kernels::set_backend(m2ai_kernels::Backend::Fast);
    let w = workload();

    // Replay baseline: per-session sliding window, full forward pass
    // per new frame, sessions visited round-robin like a fleet of
    // independent OnlineIdentifiers.
    let replay_rate = {
        let mut scratch = m2ai_kernels::KernelScratch::new();
        best_rate(SESSIONS * REPLAY_STEPS, || {
            for s in 0..SESSIONS {
                let mut window: Vec<Vec<f32>> = w.frames[s][..HISTORY].to_vec();
                for t in 0..REPLAY_STEPS {
                    window.remove(0);
                    window.push(w.frames[s][HISTORY + t].clone());
                    std::hint::black_box(w.model.predict_proba_with(&window, &mut scratch));
                }
            }
        })
    };

    // Incremental serial: one stream state per session, advanced one
    // frame at a time with batch = 1 (dispatches to the GEMV path).
    let step_rate = {
        let mut scratch = m2ai_kernels::KernelScratch::new();
        best_rate(SESSIONS * STEP_STEPS, || {
            let mut states: Vec<StreamState> = (0..SESSIONS)
                .map(|_| w.model.stream_state(HISTORY))
                .collect();
            for (s, state) in states.iter_mut().enumerate() {
                for f in &w.frames[s][..HISTORY] {
                    w.model.step_with(f, state, &mut scratch);
                }
            }
            for t in 0..STEP_STEPS {
                for (s, state) in states.iter_mut().enumerate() {
                    std::hint::black_box(w.model.step_with(
                        &w.frames[s][HISTORY + t],
                        state,
                        &mut scratch,
                    ));
                }
            }
        })
    };

    // Micro-batched serve engine: all sessions advance per tick. The
    // timed region is the steady-state tick loop; frame queuing is
    // untimed (the workload pre-builds frames precisely so extraction
    // stays out of the measurement). Per-prediction latency comes from
    // the engine's own `m2ai_serve_prediction_seconds` histogram —
    // snapshot deltas window the steady-state ticks out of warmup and
    // ring-filling noise, and the gate reads the same numbers an
    // operator would scrape.
    let (serve_rate, latency_window) = {
        // One pass returns (elapsed seconds, latency window of the
        // steady-state loop).
        let pass = || {
            let mut eng = ServeEngine::new(
                w.model.clone(),
                w.builder.clone(),
                ServeConfig {
                    max_sessions: SESSIONS,
                    max_batch: SESSIONS,
                    queue_capacity: HISTORY + STEP_STEPS,
                    history_len: HISTORY,
                    ..ServeConfig::default()
                },
            );
            let ids: Vec<_> = (0..SESSIONS)
                .map(|_| eng.open_session().expect("capacity"))
                .collect();
            for (s, &id) in ids.iter().enumerate() {
                for (t, f) in w.frames[s][..HISTORY].iter().enumerate() {
                    eng.push_frame(id, t as f64 * 0.5, f.clone(), HealthState::Healthy)
                        .expect("queue capacity");
                }
            }
            eng.drain(); // warm the states (ring-filling ticks), untimed
            for t in 0..STEP_STEPS {
                for (s, &id) in ids.iter().enumerate() {
                    eng.push_frame(
                        id,
                        (HISTORY + t) as f64 * 0.5,
                        w.frames[s][HISTORY + t].clone(),
                        HealthState::Healthy,
                    )
                    .expect("queue capacity");
                }
            }
            // Steady state: every session is ready, so each tick emits
            // one prediction per session until the queues run dry.
            let expected = SESSIONS * STEP_STEPS;
            let mut emitted = 0usize;
            let before = prediction_latency().expect("engine registered its metrics");
            let start = Instant::now();
            while emitted < expected {
                let preds = eng.tick();
                assert!(!preds.is_empty(), "tick starved before queues drained");
                emitted += preds.len();
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            let window = prediction_latency()
                .expect("engine registered its metrics")
                .delta(&before);
            (secs, window)
        };
        let _ = pass(); // warmup
        let mut pooled = m2ai_obs::HistogramDelta::new();
        let mut best = 0.0f64;
        for _ in 0..3 {
            let (secs, window) = pass();
            best = best.max((SESSIONS * STEP_STEPS) as f64 / secs);
            pooled.accumulate(&window);
        }
        (best, pooled)
    };

    // Stream-health smoke: one short *real-readings* session — faulty
    // reader, extraction from raw reads, a silence gap and a recovery —
    // so a `--metrics-out` export carries the full pipeline's counters
    // (reader faults, steering-cache hits, coverage, health
    // transitions), not just the pre-extracted-frame hot path. Runs
    // after the latency window is taken, so it cannot pollute the
    // gated numbers.
    stream_health_smoke();

    let p50 = latency_window.quantile(0.50);
    let p99 = latency_window.quantile(0.99);
    if p99.saturated {
        eprintln!(
            "serve bench: WARNING: p99 latency saturated the histogram \
             (reported value is the last finite bucket bound)"
        );
    }
    let report = ServeReport {
        sessions: SESSIONS as f64,
        predictions_per_sec_replay: replay_rate,
        predictions_per_sec_step_serial: step_rate,
        predictions_per_sec_serve: serve_rate,
        serve_speedup: serve_rate / replay_rate,
        realtime_sessions_capacity: serve_rate * 0.5,
        p50_latency_us: p50.value * 1e6,
        p99_latency_us: p99.value * 1e6,
        p99_saturated: p99.saturated,
    };
    println!("sessions            {:>10}", SESSIONS);
    println!(
        "replay              {:>10.0} predictions/sec",
        report.predictions_per_sec_replay
    );
    println!(
        "step (serial)       {:>10.0} predictions/sec",
        report.predictions_per_sec_step_serial
    );
    println!(
        "serve (batched)     {:>10.0} predictions/sec",
        report.predictions_per_sec_serve
    );
    println!(
        "serve speedup       {:>10.2}x over replay",
        report.serve_speedup
    );
    println!(
        "realtime capacity   {:>10.0} sessions @ 0.5 s frames",
        report.realtime_sessions_capacity
    );
    println!(
        "latency p50         {:>10.1} us/prediction",
        report.p50_latency_us
    );
    println!(
        "latency p99         {:>10.1} us/prediction",
        report.p99_latency_us
    );
    report
}

/// Pushes a short faulty stream with a silence gap through a one-tag
/// engine, driving the read → extract → serve path end to end (see the
/// call site in [`run`] for why).
fn stream_health_smoke() {
    use m2ai_rfsim::fault::FaultPlan;
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::SceneSnapshot;

    let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    let mut eng = ServeEngine::new(
        model,
        builder,
        ServeConfig {
            history_len: 2,
            health: m2ai_core::online::HealthConfig {
                stale_timeout_s: 1.0,
                ..Default::default()
            },
            ..ServeConfig::default()
        },
    );
    let id = eng.open_session().expect("fresh engine has capacity");
    // Intensity 0.25: faults fire (the fault counters must move) but
    // enough complete 4-antenna snapshot rounds survive that several
    // windows reach MUSIC — so the steering-table cache records hits,
    // not just the first-build miss.
    let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1)
        .with_fault_plan(FaultPlan::with_intensity(0.25, 7));
    let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
    let readings = reader.run(|_| scene.clone(), 7.0);
    // 0–2 s of stream, a 3 s silence, then stream again: the session
    // walks Healthy → Degraded/Stale → recovered.
    let before: Vec<_> = readings
        .iter()
        .filter(|r| r.time_s < 2.0)
        .cloned()
        .collect();
    let after: Vec<_> = readings
        .iter()
        .filter(|r| r.time_s >= 5.0)
        .cloned()
        .collect();
    eng.push(id, &before).expect("session open");
    eng.drain();
    eng.push(id, &after).expect("session open");
    eng.drain();
}

/// Pure regression gate: every failure is one human-readable line.
///
/// All comparisons are against *replay-normalised* quantities — the
/// incremental and batched rates divided by the same machine's replay
/// rate, and the p99 latency multiplied by it — so runner speed
/// cancels and only real relative regressions trip the gate. The
/// batched speedup is additionally held to the absolute
/// [`MIN_SERVE_SPEEDUP`] floor the PR promises.
pub fn regressions(fresh: &ServeReport, baseline: &ServeReport) -> Vec<String> {
    let mut failures = Vec::new();
    // A saturated fresh p99 means the tail ran off the end of the
    // latency histogram: the reported value is a floor, so the ceiling
    // comparison below would under-gate — fail loudly instead.
    if fresh.p99_saturated {
        failures.push(
            "p99_latency_us is saturated (tail beyond the histogram's last finite bucket)"
                .to_string(),
        );
    }
    // NaN-safe: a NaN speedup must fail the floor check, not pass it.
    if fresh.serve_speedup < MIN_SERVE_SPEEDUP || fresh.serve_speedup.is_nan() {
        failures.push(format!(
            "serve_speedup {:.2}x is below the {MIN_SERVE_SPEEDUP}x floor",
            fresh.serve_speedup
        ));
    }
    let norm_fresh = fresh.predictions_per_sec_replay;
    let norm_base = baseline.predictions_per_sec_replay;
    if norm_fresh <= 0.0 || norm_base <= 0.0 {
        failures.push("replay rate is non-positive; cannot normalise".to_string());
        return failures;
    }
    for (name, f, b) in [
        (
            "predictions_per_sec_step_serial",
            fresh.predictions_per_sec_step_serial,
            baseline.predictions_per_sec_step_serial,
        ),
        (
            "predictions_per_sec_serve",
            fresh.predictions_per_sec_serve,
            baseline.predictions_per_sec_serve,
        ),
    ] {
        let r_fresh = f / norm_fresh;
        let r_base = b / norm_base;
        let floor = (1.0 - MAX_REGRESSION) * r_base;
        // NaN-safe: NaN on either side counts as a regression.
        if r_fresh < floor || r_fresh.is_nan() || floor.is_nan() {
            failures.push(format!(
                "{name}: replay-normalised rate {r_fresh:.3} fell more than \
                 {:.0}% below baseline {r_base:.3}",
                100.0 * MAX_REGRESSION
            ));
        }
    }
    // Latency gates, both in units of replay per-prediction time. The
    // quantiles come from the engine's own m2ai-obs histogram pooled
    // over all timed passes, so the tail is an aggregate of ~150
    // ticks, not a single unlucky sample; p99 still gets a wider
    // ceiling than the median.
    for (name, f, b, growth) in [
        (
            "p50_latency_us",
            fresh.p50_latency_us,
            baseline.p50_latency_us,
            MAX_LATENCY_GROWTH,
        ),
        (
            "p99_latency_us",
            fresh.p99_latency_us,
            baseline.p99_latency_us,
            MAX_P99_GROWTH,
        ),
    ] {
        let l_fresh = f * 1e-6 * norm_fresh;
        let l_base = b * 1e-6 * norm_base;
        let ceiling = (1.0 + growth) * l_base;
        if l_fresh > ceiling || l_fresh.is_nan() || ceiling.is_nan() {
            failures.push(format!(
                "{name}: replay-normalised latency {l_fresh:.4} grew more than \
                 {:.0}% above baseline {l_base:.4}",
                100.0 * growth
            ));
        }
    }
    failures
}

/// Measures and writes the JSON baseline to `path`.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn run_and_write(path: &str) -> ServeReport {
    let report = run();
    std::fs::write(path, report.to_json()).expect("write serve report");
    println!("wrote {path}");
    report
}

/// Re-measures and gates against the baseline at `path`.
///
/// Returns `true` when no regression was detected; prints one line per
/// failure otherwise.
///
/// # Panics
///
/// Panics if `path` is missing or unparseable — the baseline is
/// checked in, so that is a repo defect, not a perf regression.
pub fn check(path: &str) -> bool {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read serve baseline {path}: {e}"));
    let baseline =
        ServeReport::from_json(&json).unwrap_or_else(|| panic!("parse serve baseline {path}"));
    let fresh = run();
    let failures = regressions(&fresh, &baseline);
    if failures.is_empty() {
        println!("serve gate: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("serve gate FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(replay: f64, serial: f64, serve: f64, p50: f64, p99: f64) -> ServeReport {
        ServeReport {
            sessions: SESSIONS as f64,
            predictions_per_sec_replay: replay,
            predictions_per_sec_step_serial: serial,
            predictions_per_sec_serve: serve,
            serve_speedup: serve / replay,
            realtime_sessions_capacity: serve * 0.5,
            p50_latency_us: p50,
            p99_latency_us: p99,
            p99_saturated: false,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(100.0, 900.0, 1400.5, 600.25, 900.75);
        let back = ServeReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn non_finite_becomes_null_and_fails_parse() {
        let mut r = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        r.p99_latency_us = f64::NAN;
        let json = r.to_json();
        assert!(json.contains("\"p99_latency_us\": null"));
        assert!(ServeReport::from_json(&json).is_none());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        assert!(regressions(&r, &r).is_empty());
    }

    #[test]
    fn machine_speed_cancels_out() {
        // A uniformly 3x slower machine: rates shrink and latencies
        // stretch together; the normalised ratios are unchanged.
        let base = report(120.0, 960.0, 1500.0, 500.0, 800.0);
        let slow = report(40.0, 320.0, 500.0, 1500.0, 2400.0);
        assert!(regressions(&slow, &base).is_empty());
    }

    #[test]
    fn speedup_floor_is_absolute() {
        let base = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        // Serve degraded to 4x replay: below the 5x floor (and a
        // normalised regression at once).
        let bad = report(100.0, 900.0, 400.0, 600.0, 900.0);
        let failures = regressions(&bad, &base);
        assert!(failures.iter().any(|f| f.contains("floor")));
        assert!(failures
            .iter()
            .any(|f| f.contains("predictions_per_sec_serve")));
    }

    #[test]
    fn serial_step_slowdown_trips_the_gate() {
        let base = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        // The serial incremental path alone lost 30%.
        let bad = report(100.0, 630.0, 1400.0, 600.0, 900.0);
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("predictions_per_sec_step_serial"));
    }

    #[test]
    fn latency_blowup_trips_the_gate() {
        let base = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        // Same rates, but the median doubled on the same machine.
        let bad = report(100.0, 900.0, 1400.0, 1200.0, 1800.0);
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("p50_latency_us"));
    }

    #[test]
    fn p99_blowup_trips_the_gate() {
        let base = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        // Tail latency tripled on the same machine while the median
        // held: a sustained stall, not noise — the p99 gate must fire.
        let bad = report(100.0, 900.0, 1400.0, 600.0, 2700.0);
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("p99_latency_us"));
    }

    #[test]
    fn p99_within_its_wider_ceiling_passes() {
        let base = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        // Double the baseline tail: above the p50 ceiling but inside
        // the 2.5x p99 allowance — the tail gets more slack.
        let noisy = report(100.0, 900.0, 1400.0, 600.0, 1800.0);
        assert!(regressions(&noisy, &base).is_empty());
    }

    #[test]
    fn synthetic_frames_are_deterministic_and_finite() {
        let a = synth_frame(368, 3, 7);
        let b = synth_frame(368, 3, 7);
        assert_eq!(a, b);
        assert_ne!(a, synth_frame(368, 4, 7));
        assert!(a.iter().all(|v| v.is_finite() && v.abs() <= 0.5));
    }

    #[test]
    fn saturated_p99_trips_the_gate() {
        let base = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        let mut bad = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        bad.p99_saturated = true;
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("saturated"));
    }

    #[test]
    fn saturation_flag_roundtrips_and_defaults_to_false() {
        let mut r = report(100.0, 900.0, 1400.0, 600.0, 900.0);
        r.p99_saturated = true;
        let back = ServeReport::from_json(&r.to_json()).expect("roundtrip");
        assert!(back.p99_saturated);
        // A baseline written before the flag existed still parses.
        let legacy = r.to_json().replace(",\n  \"p99_saturated\": 1", "");
        let back = ServeReport::from_json(&legacy).expect("legacy parse");
        assert!(!back.p99_saturated);
    }
}
