//! Throughput benchmark and regression gate (GEMM-kernels PR).
//!
//! Measures the three pipeline rates the realtime claim rests on —
//! feature-extraction frames/sec, training samples/sec and online
//! predictions/sec — plus the same training workload under the naive
//! [`Backend::Reference`] kernels, whose ratio to the fast path is the
//! headline speedup of the GEMM lowering.
//!
//! The emitted `BENCH_throughput.json` doubles as the CI baseline:
//! [`check`] re-measures on the current machine and fails on a > 15 %
//! regression of any *machine-normalised* rate (each rate divided by
//! the same machine's reference-kernel training rate, so an absolute
//! slowdown of the runner cancels out) or if the fast-over-reference
//! training speedup drops below the 2× floor the PR promises.
//!
//! The tiled-GEMM PR adds a **parallel training gate**: a batched
//! dense training step (a 256-row forward + backward, the canonical
//! GEMM triple of batched training) measured under the single-thread
//! fast backend and again under [`Backend::FastParallel`]. On a
//! machine with ≥ 4 cores the parallel path must be ≥ 1.3× faster;
//! with fewer cores the tiled path cannot win and the gate logs a
//! skip. The report also carries a `cores` field (like BENCH_shard /
//! BENCH_chaos) so relative checks only compare like with like.

use m2ai_core::calibration::PhaseCalibrator;
use m2ai_core::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_core::network::{build_model, Architecture};
use m2ai_kernels::{self as kernels, Backend};
use m2ai_nn::layers::Dense;
use m2ai_nn::model::SequenceClassifier;
use m2ai_nn::Parameterized;
use m2ai_rfsim::geometry::Point2;
use m2ai_rfsim::reader::{Reader, ReaderConfig};
use m2ai_rfsim::reading::TagReading;
use m2ai_rfsim::room::Room;
use m2ai_rfsim::scene::SceneSnapshot;
use std::time::Instant;

use crate::header;

/// Frames cut per extracted sample (the paper's 12-scenario window).
const FRAMES_PER_SAMPLE: usize = 12;

/// Maximum tolerated drop of a machine-normalised rate vs baseline.
const MAX_REGRESSION: f64 = 0.15;

/// Minimum fast-over-reference training speedup.
const MIN_TRAIN_SPEEDUP: f64 = 2.0;

/// Absolute floor on the machine-normalised extraction rate
/// (`frames_per_sec_extract / samples_per_sec_train_reference`).
/// The checked-in baseline sits around 64; 20 is a disaster floor that
/// holds even when the relative checks are skipped on a core-count
/// mismatch — previously extraction had no gate at all in that case.
const MIN_EXTRACT_RATIO: f64 = 20.0;

/// Minimum parallel-over-single-thread batched-train speedup on a
/// machine with at least [`PARALLEL_GATE_CORES`] cores.
const MIN_PARALLEL_SPEEDUP: f64 = 1.3;

/// Core count below which the parallel gate is skipped with a log
/// line instead of enforced.
const PARALLEL_GATE_CORES: f64 = 4.0;

/// Rows per batched dense training step: large enough that every GEMM
/// in the triple (`Y = X·Wᵀ`, `∂W = ∂Yᵀ·X`, `∂X = ∂Y·W`) crosses the
/// tiled path's worthwhile threshold.
const BATCH_ROWS: usize = 256;

/// Width of the batched dense training layer (square: in = out).
const BATCH_DIM: usize = 256;

/// One throughput measurement (all rates in events per second).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Feature-extraction frames/sec (12-frame samples, 6 tags, joint
    /// features, single-threaded builder).
    pub frames_per_sec_extract: f64,
    /// Training samples/sec under the fast GEMM kernels.
    pub samples_per_sec_train_fast: f64,
    /// Training samples/sec under the naive reference kernels.
    pub samples_per_sec_train_reference: f64,
    /// Whole-sample online predictions/sec (fast kernels).
    pub predictions_per_sec_online: f64,
    /// `samples_per_sec_train_fast / samples_per_sec_train_reference`.
    pub train_speedup: f64,
    /// Logical cores on the measuring machine.
    pub cores: f64,
    /// Batched dense training rows/sec, single-thread fast kernels.
    pub rows_per_sec_batch_train_fast: f64,
    /// Batched dense training rows/sec, tiled parallel kernels.
    pub rows_per_sec_batch_train_parallel: f64,
    /// `rows_per_sec_batch_train_parallel / rows_per_sec_batch_train_fast`.
    pub parallel_train_speedup: f64,
}

impl ThroughputReport {
    /// Renders the report as a small stable JSON document (hand-rolled;
    /// the workspace carries no serde). Key order is fixed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"m2ai-throughput-v2\",\n");
        out.push_str(&format!(
            "  \"frames_per_sec_extract\": {},\n",
            json_f64(self.frames_per_sec_extract)
        ));
        out.push_str(&format!(
            "  \"samples_per_sec_train_fast\": {},\n",
            json_f64(self.samples_per_sec_train_fast)
        ));
        out.push_str(&format!(
            "  \"samples_per_sec_train_reference\": {},\n",
            json_f64(self.samples_per_sec_train_reference)
        ));
        out.push_str(&format!(
            "  \"predictions_per_sec_online\": {},\n",
            json_f64(self.predictions_per_sec_online)
        ));
        out.push_str(&format!(
            "  \"train_speedup\": {},\n",
            json_f64(self.train_speedup)
        ));
        out.push_str(&format!("  \"cores\": {},\n", json_f64(self.cores)));
        out.push_str(&format!(
            "  \"rows_per_sec_batch_train_fast\": {},\n",
            json_f64(self.rows_per_sec_batch_train_fast)
        ));
        out.push_str(&format!(
            "  \"rows_per_sec_batch_train_parallel\": {},\n",
            json_f64(self.rows_per_sec_batch_train_parallel)
        ));
        out.push_str(&format!(
            "  \"parallel_train_speedup\": {}\n",
            json_f64(self.parallel_train_speedup)
        ));
        out.push('}');
        out.push('\n');
        out
    }

    /// Parses a report previously written by [`ThroughputReport::to_json`].
    ///
    /// Returns `None` if any expected key is missing or non-numeric.
    pub fn from_json(json: &str) -> Option<ThroughputReport> {
        Some(ThroughputReport {
            frames_per_sec_extract: parse_metric(json, "frames_per_sec_extract")?,
            samples_per_sec_train_fast: parse_metric(json, "samples_per_sec_train_fast")?,
            samples_per_sec_train_reference: parse_metric(json, "samples_per_sec_train_reference")?,
            predictions_per_sec_online: parse_metric(json, "predictions_per_sec_online")?,
            train_speedup: parse_metric(json, "train_speedup")?,
            cores: parse_metric(json, "cores")?,
            rows_per_sec_batch_train_fast: parse_metric(json, "rows_per_sec_batch_train_fast")?,
            rows_per_sec_batch_train_parallel: parse_metric(
                json,
                "rows_per_sec_batch_train_parallel",
            )?,
            parallel_train_speedup: parse_metric(json, "parallel_train_speedup")?,
        })
    }
}

pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Extracts `"key": <number>` from a flat JSON document.
pub(crate) fn parse_metric(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let idx = json.find(&pat)?;
    let rest = json[idx + pat.len()..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The fixed small workload every rate is measured on: a 5 s six-tag
/// recording, the paper-default joint frame layout and the CNN+LSTM
/// model. Identical to the `micro` bench workload so numbers line up.
struct Workload {
    builder: FrameBuilder,
    readings: Vec<TagReading>,
    frames: Vec<Vec<f32>>,
    model: SequenceClassifier,
}

fn workload() -> Workload {
    let mut reader = Reader::new(
        Room::laboratory(),
        ReaderConfig {
            n_antennas: 4,
            seed: 11,
            ..ReaderConfig::default()
        },
        6,
    );
    let scene = SceneSnapshot::with_tags(vec![
        Point2::new(5.5, 4.0),
        Point2::new(5.7, 4.2),
        Point2::new(5.9, 4.1),
        Point2::new(8.0, 4.3),
        Point2::new(8.2, 4.5),
        Point2::new(8.4, 4.2),
    ]);
    let readings = reader.run(|_| scene.clone(), 5.0);
    let layout = FrameLayout::new(6, 4, FeatureMode::Joint);
    let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(6, 4), 0.4);
    let frames = builder.build_sample(&readings, 0.0, FRAMES_PER_SAMPLE);
    let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
    Workload {
        builder,
        readings,
        frames,
        model,
    }
}

/// Times `iters` repetitions of `f` (after one untimed warmup call)
/// and returns events per second given `events_per_iter`.
///
/// Takes the best of three timed passes: scheduler preemption and
/// frequency ramps only ever make a pass *slower*, so the fastest
/// pass is the least-noisy estimate of what the code can sustain.
fn rate(iters: usize, events_per_iter: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max((iters * events_per_iter) as f64 / secs);
    }
    best
}

fn available_cores() -> f64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as f64)
        .unwrap_or(1.0)
}

/// Rows/sec through one batched dense training step (forward +
/// backward over [`BATCH_ROWS`] rows) under the currently active
/// kernel backend. Every GEMM in the step is large enough to cross
/// the tiled path's worthwhile threshold, so this is the workload the
/// parallel gate compares across backends.
fn batch_train_rate(iters: usize) -> f64 {
    let mut layer = Dense::new(BATCH_DIM, BATCH_DIM, 17);
    let xs: Vec<f32> = (0..BATCH_ROWS * BATCH_DIM)
        .map(|i| ((i.wrapping_mul(2654435761)) & 0xffff) as f32 / 65536.0 - 0.5)
        .collect();
    rate(iters, BATCH_ROWS, || {
        let ys = layer.forward_batch(&xs, BATCH_ROWS);
        std::hint::black_box(layer.backward_batch(&xs, &ys, BATCH_ROWS));
        layer.visit_params(&mut |_, g| g.fill(0.0));
    })
}

/// Measures the report on the current machine. Restores the fast
/// backend before returning regardless of entry state.
pub fn run() -> ThroughputReport {
    header(
        "Throughput",
        "pipeline rates, fast vs reference kernel backends",
    );
    let w = workload();

    kernels::set_backend(Backend::Fast);
    let frames_per_sec_extract = rate(6, FRAMES_PER_SAMPLE, || {
        std::hint::black_box(w.builder.build_sample(&w.readings, 0.0, FRAMES_PER_SAMPLE));
    });
    let predictions_per_sec_online = rate(60, 1, || {
        std::hint::black_box(w.model.predict(&w.frames));
    });
    let train = |iters: usize| {
        let mut m = w.model.clone();
        rate(iters, 1, || {
            m.zero_grad();
            std::hint::black_box(m.loss_and_backprop(&w.frames, 3));
        })
    };
    let samples_per_sec_train_fast = train(24);
    kernels::set_backend(Backend::Reference);
    let samples_per_sec_train_reference = train(8);
    kernels::set_backend(Backend::Fast);
    let rows_per_sec_batch_train_fast = batch_train_rate(8);
    kernels::set_backend(Backend::FastParallel);
    let rows_per_sec_batch_train_parallel = batch_train_rate(8);
    kernels::set_backend(Backend::Fast);

    let report = ThroughputReport {
        frames_per_sec_extract,
        samples_per_sec_train_fast,
        samples_per_sec_train_reference,
        predictions_per_sec_online,
        train_speedup: samples_per_sec_train_fast / samples_per_sec_train_reference,
        cores: available_cores(),
        rows_per_sec_batch_train_fast,
        rows_per_sec_batch_train_parallel,
        parallel_train_speedup: rows_per_sec_batch_train_parallel / rows_per_sec_batch_train_fast,
    };
    println!(
        "extraction    {:>10.1} frames/sec",
        report.frames_per_sec_extract
    );
    println!(
        "train (fast)  {:>10.1} samples/sec",
        report.samples_per_sec_train_fast
    );
    println!(
        "train (ref)   {:>10.1} samples/sec",
        report.samples_per_sec_train_reference
    );
    println!(
        "prediction    {:>10.1} samples/sec",
        report.predictions_per_sec_online
    );
    println!(
        "train speedup {:>10.2}x fast over reference",
        report.train_speedup
    );
    println!("cores         {:>10.0}", report.cores);
    println!(
        "batch (fast)  {:>10.1} rows/sec",
        report.rows_per_sec_batch_train_fast
    );
    println!(
        "batch (par)   {:>10.1} rows/sec",
        report.rows_per_sec_batch_train_parallel
    );
    println!(
        "par speedup   {:>10.2}x parallel over single-thread",
        report.parallel_train_speedup
    );
    report
}

/// Pure regression gate: every failure is one human-readable line.
///
/// Rates are compared *machine-normalised* — divided by that machine's
/// own reference-kernel training rate — so CI runner speed differences
/// cancel; only a real relative slowdown of a stage trips the gate. The
/// fast-over-reference training speedup is additionally held to the
/// absolute [`MIN_TRAIN_SPEEDUP`] floor.
pub fn regressions(fresh: &ThroughputReport, baseline: &ThroughputReport) -> Vec<String> {
    let mut failures = Vec::new();
    // NaN-safe: a NaN speedup must fail the floor check, not pass it.
    if fresh.train_speedup < MIN_TRAIN_SPEEDUP || fresh.train_speedup.is_nan() {
        failures.push(format!(
            "train_speedup {:.2}x is below the {MIN_TRAIN_SPEEDUP}x floor",
            fresh.train_speedup
        ));
    }
    // Parallel gate: absolute, core-aware. Below the core floor the
    // tiled path cannot win (it falls back to single-thread), so the
    // gate is skipped with a log line rather than enforced.
    if fresh.cores >= PARALLEL_GATE_CORES {
        // NaN-safe: NaN must fail, not pass.
        if !fresh.parallel_train_speedup.ge(&MIN_PARALLEL_SPEEDUP) {
            failures.push(format!(
                "parallel_train_speedup {:.2}x is below the {MIN_PARALLEL_SPEEDUP}x floor \
                 on {:.0} cores",
                fresh.parallel_train_speedup, fresh.cores
            ));
        }
    } else {
        println!(
            "throughput gate: {:.0} core(s) < {PARALLEL_GATE_CORES:.0}; \
             skipping the parallel train speedup gate",
            fresh.cores
        );
    }
    let norm_fresh = fresh.samples_per_sec_train_reference;
    let norm_base = baseline.samples_per_sec_train_reference;
    if norm_fresh <= 0.0 || norm_base <= 0.0 {
        failures.push("reference training rate is non-positive; cannot normalise".to_string());
        return failures;
    }
    // Extraction floor: machine-normalised but *absolute*, so it is
    // enforced even when core counts differ and the relative checks
    // below are skipped. NaN-safe: `!ge` fails on NaN.
    let extract_ratio = fresh.frames_per_sec_extract / norm_fresh;
    if !extract_ratio.ge(&MIN_EXTRACT_RATIO) {
        failures.push(format!(
            "frames_per_sec_extract is only {extract_ratio:.1}x the reference training \
             rate, below the {MIN_EXTRACT_RATIO}x floor"
        ));
    }
    // Relative checks only compare like with like: a 1-core baseline
    // says nothing about a multi-core runner's rates (and vice versa).
    if fresh.cores != baseline.cores {
        println!(
            "throughput gate: baseline cores {:.0} != fresh cores {:.0}; \
             skipping relative checks",
            baseline.cores, fresh.cores
        );
        return failures;
    }
    for (name, f, b) in [
        (
            "frames_per_sec_extract",
            fresh.frames_per_sec_extract,
            baseline.frames_per_sec_extract,
        ),
        (
            "samples_per_sec_train_fast",
            fresh.samples_per_sec_train_fast,
            baseline.samples_per_sec_train_fast,
        ),
        (
            "predictions_per_sec_online",
            fresh.predictions_per_sec_online,
            baseline.predictions_per_sec_online,
        ),
        (
            "rows_per_sec_batch_train_fast",
            fresh.rows_per_sec_batch_train_fast,
            baseline.rows_per_sec_batch_train_fast,
        ),
    ] {
        let r_fresh = f / norm_fresh;
        let r_base = b / norm_base;
        let floor = (1.0 - MAX_REGRESSION) * r_base;
        // NaN-safe: NaN on either side counts as a regression.
        if r_fresh < floor || r_fresh.is_nan() || floor.is_nan() {
            failures.push(format!(
                "{name}: normalised rate {r_fresh:.3} fell more than \
                 {:.0}% below baseline {r_base:.3}",
                100.0 * MAX_REGRESSION
            ));
        }
    }
    failures
}

/// Measures and writes the JSON baseline to `path`.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn run_and_write(path: &str) -> ThroughputReport {
    let report = run();
    std::fs::write(path, report.to_json()).expect("write throughput report");
    println!("wrote {path}");
    report
}

/// Re-measures and gates against the baseline at `path`.
///
/// Returns `true` when no regression was detected; prints one line per
/// failure otherwise.
///
/// # Panics
///
/// Panics if `path` is missing or unparseable — the baseline is
/// checked in, so that is a repo defect, not a perf regression.
pub fn check(path: &str) -> bool {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read throughput baseline {path}: {e}"));
    let baseline = ThroughputReport::from_json(&json)
        .unwrap_or_else(|| panic!("parse throughput baseline {path}"));
    let fresh = run();
    let failures = regressions(&fresh, &baseline);
    if failures.is_empty() {
        println!("throughput gate: PASS");
        true
    } else {
        for f in &failures {
            eprintln!("throughput gate FAIL: {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(extract: f64, fast: f64, reference: f64, predict: f64) -> ThroughputReport {
        ThroughputReport {
            // Scaled so the fixtures sit comfortably above the absolute
            // extraction floor (real ratios are ≈64x; these are ≈84x+).
            frames_per_sec_extract: extract * 20.0,
            samples_per_sec_train_fast: fast,
            samples_per_sec_train_reference: reference,
            predictions_per_sec_online: predict,
            train_speedup: fast / reference,
            cores: 1.0,
            rows_per_sec_batch_train_fast: fast * 10.0,
            rows_per_sec_batch_train_parallel: fast * 10.0,
            parallel_train_speedup: 1.0,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(120.5, 80.0, 20.0, 300.25);
        let back = ThroughputReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn non_finite_becomes_null_and_fails_parse() {
        let mut r = report(1.0, 4.0, 2.0, 1.0);
        r.frames_per_sec_extract = f64::NAN;
        let json = r.to_json();
        assert!(json.contains("\"frames_per_sec_extract\": null"));
        assert!(ThroughputReport::from_json(&json).is_none());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report(100.0, 50.0, 20.0, 200.0);
        assert!(regressions(&r, &r).is_empty());
    }

    #[test]
    fn machine_speed_cancels_out() {
        // A uniformly 3x slower machine: all rates shrink together, the
        // normalised ratios are unchanged, the gate must stay green.
        let base = report(120.0, 60.0, 20.0, 240.0);
        let slow = report(40.0, 20.0, 20.0 / 3.0, 80.0);
        assert!(regressions(&slow, &base).is_empty());
    }

    #[test]
    fn relative_stage_slowdown_trips_the_gate() {
        let base = report(120.0, 60.0, 20.0, 240.0);
        // Extraction alone lost 30% relative to the reference anchor.
        let bad = report(84.0, 60.0, 20.0, 240.0);
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("frames_per_sec_extract"));
    }

    #[test]
    fn speedup_floor_is_absolute() {
        let base = report(120.0, 60.0, 20.0, 240.0);
        // Fast path degraded to 1.5x reference: normalised train_fast
        // regression AND the absolute floor both fire.
        let bad = report(120.0, 30.0, 20.0, 240.0);
        let failures = regressions(&bad, &base);
        assert!(failures.iter().any(|f| f.contains("floor")));
        assert!(failures
            .iter()
            .any(|f| f.contains("samples_per_sec_train_fast")));
    }

    #[test]
    fn parallel_gate_skips_below_core_floor() {
        let mut r = report(100.0, 50.0, 20.0, 200.0);
        r.cores = 1.0;
        r.parallel_train_speedup = 0.9; // would fail on 4 cores
        assert!(regressions(&r, &r).is_empty());
    }

    #[test]
    fn parallel_gate_enforced_at_four_cores() {
        let mut base = report(100.0, 50.0, 20.0, 200.0);
        base.cores = 4.0;
        base.parallel_train_speedup = 2.0;
        let mut bad = base.clone();
        bad.parallel_train_speedup = 1.1;
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("parallel_train_speedup"));
        // NaN must fail the floor, not sneak past it.
        bad.parallel_train_speedup = f64::NAN;
        assert!(!regressions(&bad, &base).is_empty());
        assert!(regressions(&base, &base).is_empty());
    }

    #[test]
    fn cores_mismatch_skips_relative_checks_only() {
        let base = report(120.0, 60.0, 20.0, 240.0);
        // Same machine-relative slowdown that trips the gate when the
        // core counts match...
        let mut bad = report(84.0, 60.0, 20.0, 240.0);
        assert!(!regressions(&bad, &base).is_empty());
        // ...is ignored when the baseline came from different iron.
        bad.cores = 8.0;
        bad.parallel_train_speedup = 2.0;
        assert!(regressions(&bad, &base).is_empty());
        // But absolute floors still apply across core counts.
        bad.train_speedup = 1.0;
        assert!(regressions(&bad, &base).iter().any(|f| f.contains("floor")));
    }

    #[test]
    fn extract_floor_holds_across_core_mismatch() {
        let base = report(120.0, 60.0, 20.0, 240.0);
        let mut bad = report(120.0, 60.0, 20.0, 240.0);
        bad.cores = 8.0; // relative checks are skipped on mismatch...
        bad.parallel_train_speedup = 2.0;
        assert!(regressions(&bad, &base).is_empty());
        // ...but a 5x machine-normalised extraction ratio is a disaster
        // the absolute floor must still catch.
        bad.frames_per_sec_extract = 100.0;
        let failures = regressions(&bad, &base);
        assert!(failures
            .iter()
            .any(|f| f.contains("frames_per_sec_extract") && f.contains("floor")));
        // NaN must trip the floor, not sneak past it.
        bad.frames_per_sec_extract = f64::NAN;
        assert!(!regressions(&bad, &base).is_empty());
    }

    #[test]
    fn batch_train_rate_regression_is_normalised() {
        let base = report(120.0, 60.0, 20.0, 240.0);
        let mut bad = base.clone();
        bad.rows_per_sec_batch_train_fast *= 0.5;
        let failures = regressions(&bad, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("rows_per_sec_batch_train_fast"));
    }

    #[test]
    fn parse_metric_handles_last_key() {
        let json = "{\n  \"a\": 1.5,\n  \"train_speedup\": 3.25\n}\n";
        assert_eq!(parse_metric(json, "train_speedup"), Some(3.25));
        assert_eq!(parse_metric(json, "missing"), None);
    }
}
