//! Robustness sweep: accuracy vs fault intensity (PR-2 harness).
//!
//! Trains the full M²AI pipeline once on a *clean* dataset, then
//! evaluates the frozen model on datasets recorded through a
//! [`FaultPlan`] of increasing intensity — antenna dropouts, occlusion
//! bursts, slot starvation, phase glitches, RSSI brownouts and outright
//! field corruption all scale together (see
//! [`FaultPlan::with_intensity`]). The sweep answers the deployment
//! question the paper leaves open: *how gracefully does accuracy
//! degrade when the RF front end misbehaves?*
//!
//! Everything is seed-driven and deterministic: a fixed
//! `(budget, fault_seed)` pair reproduces the report bit-for-bit, so
//! the emitted `BENCH_robustness.json` doubles as a CI regression
//! baseline.

use m2ai_core::dataset::generate_dataset;
use m2ai_rfsim::fault::FaultPlan;

use crate::{base_config, base_options, header, Budget};

/// Fault intensities swept by [`run`], from pristine to severe.
pub const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One measured point of the accuracy-vs-fault-rate curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// Fault intensity in `[0, 1]` fed to [`FaultPlan::with_intensity`].
    pub intensity: f64,
    /// Fraction of tag reads the faults destroyed (vs the clean run).
    pub read_loss: f64,
    /// Frozen-model accuracy on the faulted evaluation dataset.
    pub accuracy: f64,
}

/// Full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Clean-training held-out accuracy (the sweep's ceiling).
    pub clean_test_accuracy: f64,
    /// Seed driving every [`FaultPlan`] in the sweep.
    pub fault_seed: u64,
    /// One point per entry of [`INTENSITIES`], in order.
    pub points: Vec<RobustnessPoint>,
}

impl RobustnessReport {
    /// Renders the report as a small stable JSON document.
    ///
    /// Hand-rolled (the workspace carries no serde): keys are emitted
    /// in a fixed order and floats with enough digits to round-trip.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"clean_test_accuracy\": {},\n",
            json_f64(self.clean_test_accuracy)
        ));
        out.push_str(&format!("  \"fault_seed\": {},\n", self.fault_seed));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"intensity\": {}, \"read_loss\": {}, \"accuracy\": {}}}{}\n",
                json_f64(p.intensity),
                json_f64(p.read_loss),
                json_f64(p.accuracy),
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_f64(v: f64) -> String {
    // `{}` prints f64 with round-trip precision and no exponent for the
    // magnitudes seen here; map non-finite (should never happen) to null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Runs the sweep and returns the report (also printed as a table).
pub fn run(budget: Budget, fault_seed: u64) -> RobustnessReport {
    header(
        "Robustness (PR-2)",
        "accuracy vs fault intensity, frozen clean-trained model",
    );
    let clean_cfg = base_config(budget);
    let bundle = generate_dataset(&clean_cfg);
    let outcome = crate::train_m2ai(&bundle, &base_options(budget));
    println!(
        "clean training: {:5.1}% held-out accuracy",
        100.0 * outcome.test_accuracy
    );
    println!("{:>9}  {:>9}  {:>8}", "intensity", "read_loss", "accuracy");

    let mut eval_cfg = clean_cfg.clone();
    eval_cfg.seed = clean_cfg.seed + 1000; // unseen recordings at every intensity
    let clean_reads = raw_read_count(&eval_cfg);

    let mut points = Vec::with_capacity(INTENSITIES.len());
    for &intensity in &INTENSITIES {
        let mut cfg = eval_cfg.clone();
        cfg.faults = FaultPlan::with_intensity(intensity, fault_seed);
        let eval = generate_dataset(&cfg);
        let accuracy = m2ai_nn::train::evaluate(&outcome.model, &eval.samples);
        let reads = raw_read_count(&cfg);
        let read_loss = if clean_reads > 0 {
            1.0 - reads as f64 / clean_reads as f64
        } else {
            0.0
        };
        println!(
            "{:>9.2}  {:>8.1}%  {:>7.1}%",
            intensity,
            100.0 * read_loss,
            100.0 * accuracy
        );
        points.push(RobustnessPoint {
            intensity,
            read_loss,
            accuracy,
        });
    }
    RobustnessReport {
        clean_test_accuracy: outcome.test_accuracy,
        fault_seed,
        points,
    }
}

/// Raw surviving-read count for one representative static recording
/// pass under `cfg`'s fault plan — a cheap fault-severity proxy that
/// avoids regenerating whole datasets just to count destroyed reads.
fn raw_read_count(cfg: &m2ai_core::dataset::ExperimentConfig) -> usize {
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::scene::SceneSnapshot;

    let room = cfg.room.build();
    let n_tags = cfg.n_tags();
    let reader_cfg = ReaderConfig {
        n_antennas: cfg.n_antennas,
        seed: cfg.seed,
        ..ReaderConfig::default()
    };
    let mut reader =
        Reader::new(room.clone(), reader_cfg, n_tags).with_fault_plan(cfg.faults.clone());
    let positions: Vec<Point2> = (0..n_tags)
        .map(|i| {
            room.clamp_inside(
                Point2::new(room.width * (i + 1) as f64 / (n_tags + 1) as f64, 2.0),
                0.3,
            )
        })
        .collect();
    let scene = SceneSnapshot::with_tags(positions);
    reader.run(|_| scene.clone(), 2.0).len()
}

/// Runs the sweep and writes the JSON report to `path`.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn run_and_write(budget: Budget, path: &str, fault_seed: u64) -> RobustnessReport {
    let report = run(budget, fault_seed);
    std::fs::write(path, report.to_json()).expect("write robustness report");
    println!("wrote {path}");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let report = RobustnessReport {
            clean_test_accuracy: 0.875,
            fault_seed: 7,
            points: vec![
                RobustnessPoint {
                    intensity: 0.0,
                    read_loss: 0.0,
                    accuracy: 0.875,
                },
                RobustnessPoint {
                    intensity: 1.0,
                    read_loss: 0.5,
                    accuracy: 0.25,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"clean_test_accuracy\": 0.875"));
        assert!(json.contains("\"fault_seed\": 7"));
        assert!(json.contains("\"intensity\": 1, \"read_loss\": 0.5, \"accuracy\": 0.25"));
        // Exactly one trailing comma between the two points.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }
}
