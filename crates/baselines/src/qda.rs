//! Quadratic discriminant analysis.

use crate::linalg::{cholesky, cholesky_logdet, invert};
use crate::{validate, Classifier, FitError};

/// QDA: per-class full-covariance Gaussians with shrinkage
/// regularisation toward the spherical covariance.
#[derive(Debug, Clone)]
pub struct Qda {
    /// Shrinkage coefficient in `[0, 1]`: `Σ̂ = (1−s)·Σ + s·σ²I`.
    pub shrinkage: f64,
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    precisions: Vec<Vec<f64>>, // inverse covariances, row-major d×d
    logdets: Vec<f64>,
    dim: usize,
}

impl Qda {
    /// Creates a QDA model with the given shrinkage.
    ///
    /// # Panics
    ///
    /// Panics if `shrinkage` is outside `[0, 1]`.
    pub fn new(shrinkage: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&shrinkage),
            "shrinkage must be in [0,1]"
        );
        Qda {
            shrinkage,
            priors: Vec::new(),
            means: Vec::new(),
            precisions: Vec::new(),
            logdets: Vec::new(),
            dim: 0,
        }
    }

    fn discriminant(&self, class: usize, x: &[f32]) -> f64 {
        let d = self.dim;
        let mean = &self.means[class];
        let prec = &self.precisions[class];
        let diff: Vec<f64> = (0..d).map(|j| x[j] as f64 - mean[j]).collect();
        let mut quad = 0.0;
        for i in 0..d {
            let mut row = 0.0;
            for j in 0..d {
                row += prec[i * d + j] * diff[j];
            }
            quad += diff[i] * row;
        }
        self.priors[class].ln() - 0.5 * self.logdets[class] - 0.5 * quad
    }
}

impl Default for Qda {
    fn default() -> Self {
        Qda::new(0.1)
    }
}

impl Classifier for Qda {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, d, n_classes) = validate(x, y)?;
        self.dim = d;
        let mut counts = vec![0usize; n_classes];
        let mut means = vec![vec![0.0f64; d]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            counts[yi] += 1;
            for j in 0..d {
                means[yi][j] += xi[j] as f64;
            }
        }
        for (c, cnt) in counts.iter().enumerate() {
            let denom = (*cnt).max(1) as f64;
            means[c].iter_mut().for_each(|m| *m /= denom);
        }

        self.priors = counts
            .iter()
            .map(|&c| (c.max(1) as f64) / n as f64)
            .collect();
        self.means = means;
        self.precisions.clear();
        self.logdets.clear();

        for (c, &cls_count) in counts.iter().enumerate() {
            let mut cov = vec![0.0f64; d * d];
            let mut trace = 0.0;
            for (xi, &yi) in x.iter().zip(y) {
                if yi != c {
                    continue;
                }
                let diff: Vec<f64> = (0..d).map(|j| xi[j] as f64 - self.means[c][j]).collect();
                for i in 0..d {
                    for j in 0..d {
                        cov[i * d + j] += diff[i] * diff[j];
                    }
                }
            }
            let denom = cls_count.max(2) as f64 - 1.0;
            cov.iter_mut().for_each(|v| *v /= denom);
            for i in 0..d {
                trace += cov[i * d + i];
            }
            // Shrink toward spherical; guard a fully-degenerate class.
            let sigma2 = (trace / d as f64).max(1e-9);
            for i in 0..d {
                for j in 0..d {
                    cov[i * d + j] *= 1.0 - self.shrinkage;
                    if i == j {
                        cov[i * d + j] += self.shrinkage * sigma2 + 1e-9;
                    }
                }
            }
            let l = cholesky(&cov, d).ok_or(FitError::Numerical(
                "class covariance not positive definite",
            ))?;
            let prec =
                invert(&cov, d).ok_or(FitError::Numerical("class covariance is singular"))?;
            self.logdets.push(cholesky_logdet(&l, d));
            self.precisions.push(prec);
        }
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        (0..self.priors.len())
            .map(|c| self.discriminant(c, x))
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite discriminants"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "QDA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::testutil::blobs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fits_blobs() {
        let (x, y) = blobs(25, 4, 51);
        let mut qda = Qda::default();
        qda.fit(&x, &y).unwrap();
        assert!(accuracy(&qda, &x, &y) > 0.95);
    }

    #[test]
    fn separates_by_covariance_shape() {
        // Same mean, different covariance: QDA can separate, LDA-style
        // linear methods cannot.
        let mut rng = StdRng::seed_from_u64(52);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..150 {
            // Class 0: tight blob.
            x.push(vec![
                rng.gen_range(-0.3f32..0.3),
                rng.gen_range(-0.3f32..0.3),
            ]);
            y.push(0);
            // Class 1: wide ring-ish spread.
            x.push(vec![
                rng.gen_range(-3.0f32..3.0),
                rng.gen_range(-3.0f32..3.0),
            ]);
            y.push(1);
        }
        let mut qda = Qda::new(0.05);
        qda.fit(&x, &y).unwrap();
        assert_eq!(qda.predict(&[0.05, -0.02]), 0);
        assert_eq!(qda.predict(&[2.5, 2.5]), 1);
    }

    #[test]
    fn shrinkage_saves_degenerate_classes() {
        // A class with fewer samples than dimensions would be singular
        // without shrinkage.
        let x = vec![
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.0, 0.0],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![5.1, 5.0, 5.0, 5.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut qda = Qda::new(0.5);
        qda.fit(&x, &y).unwrap();
        assert_eq!(qda.predict(&[0.05, 0.0, 0.0, 0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "shrinkage")]
    fn invalid_shrinkage_panics() {
        Qda::new(1.5);
    }

    #[test]
    fn fit_errors() {
        assert!(Qda::default().fit(&[], &[]).is_err());
    }
}
