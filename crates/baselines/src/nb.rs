//! Gaussian naive Bayes (the scikit-learn "Bayesian Net" stand-in of
//! the paper's Fig. 9 line-up).

use crate::{validate, Classifier, FitError};

/// Gaussian naive Bayes: per-class, per-feature independent normals
/// with a variance floor for numerical safety.
#[derive(Debug, Clone, Default)]
pub struct GaussianNaiveBayes {
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl GaussianNaiveBayes {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        GaussianNaiveBayes::default()
    }

    fn log_likelihood(&self, class: usize, x: &[f32]) -> f64 {
        let mut ll = self.priors[class].ln();
        for (j, &xj) in x.iter().enumerate() {
            let mean = self.means[class][j];
            let var = self.vars[class][j];
            let d = xj as f64 - mean;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        ll
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, d, n_classes) = validate(x, y)?;
        let mut counts = vec![0usize; n_classes];
        let mut means = vec![vec![0.0f64; d]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            counts[yi] += 1;
            for (m, &v) in means[yi].iter_mut().zip(xi) {
                *m += v as f64;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                means[c].iter_mut().for_each(|m| *m /= *count as f64);
            }
        }
        let mut vars = vec![vec![0.0f64; d]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            for j in 0..d {
                let diff = xi[j] as f64 - means[yi][j];
                vars[yi][j] += diff * diff;
            }
        }
        // Variance floor: a fraction of the overall feature variance.
        let mut global_var = 0.0f64;
        for xi in x {
            for &v in xi {
                global_var += (v as f64) * (v as f64);
            }
        }
        let floor = (global_var / (n * d) as f64).max(1e-9) * 1e-4 + 1e-9;
        for (c, count) in counts.iter().enumerate() {
            let denom = (*count).max(1) as f64;
            for v in vars[c].iter_mut() {
                *v = (*v / denom).max(floor);
            }
        }
        self.priors = counts
            .iter()
            .map(|&c| (c.max(1) as f64) / n as f64)
            .collect();
        self.means = means;
        self.vars = vars;
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        (0..self.priors.len())
            .map(|c| self.log_likelihood(c, x))
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite likelihoods"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "Naive Bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::testutil::blobs;

    #[test]
    fn fits_gaussian_blobs_well() {
        let (x, y) = blobs(30, 5, 41);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&x, &y).unwrap();
        assert!(accuracy(&nb, &x, &y) > 0.95);
    }

    #[test]
    fn respects_priors() {
        // Heavily imbalanced data at an ambiguous point favours the
        // majority class.
        let mut x = vec![vec![0.0f32]; 90];
        let mut y = vec![0usize; 90];
        x.extend(vec![vec![0.5f32]; 10]);
        y.extend(vec![1usize; 10]);
        // Add spread so variances are sane.
        for (i, xi) in x.iter_mut().enumerate() {
            xi[0] += ((i % 7) as f32 - 3.0) * 0.1;
        }
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&x, &y).unwrap();
        assert_eq!(nb.predict(&[0.25]), 0);
    }

    #[test]
    fn constant_feature_does_not_crash() {
        let x = vec![
            vec![1.0, 5.0],
            vec![1.0, 5.1],
            vec![1.0, 9.0],
            vec![1.0, 9.1],
        ];
        let y = vec![0, 0, 1, 1];
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&x, &y).unwrap();
        assert_eq!(nb.predict(&[1.0, 5.05]), 0);
        assert_eq!(nb.predict(&[1.0, 9.05]), 1);
    }

    #[test]
    fn fit_errors() {
        let mut nb = GaussianNaiveBayes::new();
        assert!(nb.fit(&[], &[]).is_err());
    }
}
