//! # m2ai-baselines — classical classifiers for the Fig. 9 comparison
//!
//! The paper compares M²AI against ten scikit-learn classifiers:
//! k-nearest neighbours, one-vs-all linear SVM, one-vs-all RBF SVM,
//! Gaussian process, decision tree, random forest, adaptive boosting,
//! Bayesian net (implemented here as Gaussian naive Bayes — the
//! standard scikit-learn stand-in) and quadratic discriminant analysis,
//! plus the HMM approach of prior work (FEMO). This crate implements
//! all of them from scratch on `f32` feature vectors.
//!
//! Vector classifiers implement [`Classifier`]; the HMM, which consumes
//! sequences, lives in [`hmm`].
//!
//! # Example
//!
//! ```
//! use m2ai_baselines::{Classifier, knn::KNearestNeighbors};
//!
//! let x = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 5.0]];
//! let y = vec![0, 0, 1, 1];
//! let mut knn = KNearestNeighbors::new(1);
//! knn.fit(&x, &y).unwrap();
//! assert_eq!(knn.predict(&[0.05, 0.0]), 0);
//! assert_eq!(knn.predict(&[5.0, 5.1]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boost;
pub mod gp;
pub mod hmm;
pub mod knn;
pub mod linalg;
pub mod nb;
pub mod qda;
pub mod svm;
pub mod tree;

/// Errors from fitting a baseline classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Feature vectors have inconsistent lengths.
    InconsistentFeatures,
    /// Labels and features have different lengths.
    LabelMismatch,
    /// Numerical failure (e.g. a singular covariance matrix).
    Numerical(&'static str),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "training set is empty"),
            FitError::InconsistentFeatures => {
                write!(f, "feature vectors have inconsistent lengths")
            }
            FitError::LabelMismatch => write!(f, "labels and features differ in length"),
            FitError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl std::error::Error for FitError {}

/// A multiclass classifier over fixed-length feature vectors.
pub trait Classifier {
    /// Fits the model.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] on empty/ill-formed training data.
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError>;

    /// Predicts the class of one feature vector.
    fn predict(&self, x: &[f32]) -> usize;

    /// Short human-readable name (used in the Fig. 9 table).
    fn name(&self) -> &'static str;
}

/// Validates a training set and returns `(n_samples, n_features,
/// n_classes)`.
///
/// # Errors
///
/// See [`FitError`].
pub(crate) fn validate(x: &[Vec<f32>], y: &[usize]) -> Result<(usize, usize, usize), FitError> {
    if x.is_empty() {
        return Err(FitError::EmptyTrainingSet);
    }
    if x.len() != y.len() {
        return Err(FitError::LabelMismatch);
    }
    let d = x[0].len();
    if d == 0 || x.iter().any(|row| row.len() != d) {
        return Err(FitError::InconsistentFeatures);
    }
    let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
    Ok((x.len(), d, n_classes))
}

/// Evaluations-performed counter, resolved once per process.
fn evals_total() -> &'static m2ai_obs::Counter {
    static C: std::sync::OnceLock<m2ai_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        m2ai_obs::counter(
            "m2ai_baselines_evals_total",
            "samples scored through baseline accuracy evaluation",
            &[],
        )
    })
}

/// Accuracy of a fitted classifier on a labelled set.
pub fn accuracy<C: Classifier + ?Sized>(clf: &C, x: &[Vec<f32>], y: &[usize]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    evals_total().add(x.len() as u64);
    let hits = x
        .iter()
        .zip(y)
        .filter(|(xi, yi)| clf.predict(xi) == **yi)
        .count();
    hits as f64 / x.len() as f64
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared synthetic datasets for the baseline tests.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Three well-separated Gaussian blobs in `dim` dimensions.
    pub fn blobs(n_per_class: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for _ in 0..n_per_class {
                let mut v = vec![0.0f32; dim];
                for (j, vj) in v.iter_mut().enumerate() {
                    let center = if j % 3 == c { 3.0 } else { 0.0 };
                    *vj = center + rng.gen_range(-0.7..0.7);
                }
                x.push(v);
                y.push(c);
            }
        }
        (x, y)
    }

    /// XOR-style data that linear models cannot separate.
    pub fn xor(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.gen_range(-1.0f32..1.0);
            let b = rng.gen_range(-1.0f32..1.0);
            x.push(vec![a, b]);
            y.push(usize::from((a > 0.0) != (b > 0.0)));
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_errors() {
        assert_eq!(validate(&[], &[]), Err(FitError::EmptyTrainingSet));
        assert_eq!(
            validate(&[vec![1.0]], &[0, 1]),
            Err(FitError::LabelMismatch)
        );
        assert_eq!(
            validate(&[vec![1.0], vec![1.0, 2.0]], &[0, 1]),
            Err(FitError::InconsistentFeatures)
        );
        assert_eq!(validate(&[vec![1.0], vec![2.0]], &[0, 2]), Ok((2, 1, 3)));
    }

    #[test]
    fn errors_display() {
        for e in [
            FitError::EmptyTrainingSet,
            FitError::InconsistentFeatures,
            FitError::LabelMismatch,
            FitError::Numerical("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
