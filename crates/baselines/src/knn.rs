//! k-nearest-neighbours classifier.

use crate::{validate, Classifier, FitError};

/// Euclidean k-NN with majority voting (ties broken toward the nearer
/// neighbour's class).
#[derive(Debug, Clone, Default)]
pub struct KNearestNeighbors {
    k: usize,
    x: Vec<Vec<f32>>,
    y: Vec<usize>,
    n_classes: usize,
}

impl KNearestNeighbors {
    /// Creates a k-NN classifier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KNearestNeighbors {
            k,
            ..Default::default()
        }
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (_, _, n_classes) = validate(x, y)?;
        self.x = x.to_vec();
        self.y = y.to_vec();
        self.n_classes = n_classes;
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        let mut dists: Vec<(f32, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (sq_dist(xi, x), yi))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let mut votes = vec![0usize; self.n_classes];
        for &(_, c) in dists.iter().take(self.k.min(dists.len())) {
            votes[c] += 1;
        }
        // Majority; ties fall to the class of the nearest member.
        let best = votes.iter().copied().max().unwrap_or(0);
        dists
            .iter()
            .take(self.k.min(dists.len()))
            .find(|&&(_, c)| votes[c] == best)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "Nearest Neighbors"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::testutil::blobs;

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(20, 6, 1);
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&x, &y).unwrap();
        assert!(accuracy(&knn, &x, &y) > 0.95);
    }

    #[test]
    fn k1_memorises_training_set() {
        let (x, y) = blobs(10, 4, 2);
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&x, &y).unwrap();
        assert_eq!(accuracy(&knn, &x, &y), 1.0);
    }

    #[test]
    fn majority_voting() {
        let x = vec![vec![0.0], vec![0.2], vec![0.4], vec![10.0]];
        let y = vec![0, 0, 0, 1];
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&x, &y).unwrap();
        // Even near the lone outlier's side, 3-NN majority is class 0
        // at moderate distance.
        assert_eq!(knn.predict(&[1.0]), 0);
    }

    #[test]
    fn fit_rejects_empty() {
        let mut knn = KNearestNeighbors::new(1);
        assert_eq!(knn.fit(&[], &[]), Err(FitError::EmptyTrainingSet));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        KNearestNeighbors::new(0);
    }

    #[test]
    fn k_larger_than_dataset_is_fine() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut knn = KNearestNeighbors::new(10);
        knn.fit(&x, &y).unwrap();
        let _ = knn.predict(&[0.4]);
    }
}
