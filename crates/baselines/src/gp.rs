//! Gaussian-process classifier (one-vs-rest GP regression on ±1
//! labels — the standard fast approximation, sometimes called
//! least-squares classification).

use crate::linalg::{cholesky, cholesky_solve};
use crate::{validate, Classifier, FitError};

/// One-vs-rest GP classifier with an RBF kernel.
///
/// Exact GP classification requires non-Gaussian likelihood
/// approximations (Laplace/EP); regressing on ±1 targets and taking
/// the posterior-mean argmax is the usual pragmatic surrogate and
/// matches scikit-learn's behaviour closely on well-separated data.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    /// RBF kernel width: `k(x, z) = exp(−γ‖x−z‖²)`.
    pub gamma: f64,
    /// Observation noise added to the kernel diagonal.
    pub noise: f64,
    x: Vec<Vec<f32>>,
    alphas: Vec<Vec<f64>>, // per class: (K + σ²I)⁻¹ y_c
}

impl GaussianProcess {
    /// Creates a GP classifier.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0` or `noise <= 0`.
    pub fn new(gamma: f64, noise: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(noise > 0.0, "noise must be positive");
        GaussianProcess {
            gamma,
            noise,
            x: Vec::new(),
            alphas: Vec::new(),
        }
    }

    fn kernel(&self, a: &[f32], b: &[f32]) -> f64 {
        let d2: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                let d = (*x - *y) as f64;
                d * d
            })
            .sum();
        (-self.gamma * d2).exp()
    }
}

impl Default for GaussianProcess {
    fn default() -> Self {
        GaussianProcess::new(0.5, 1e-3)
    }
}

impl Classifier for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, _, n_classes) = validate(x, y)?;
        // Gram matrix with noise on the diagonal.
        let mut gram = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let k = self.kernel(&x[i], &x[j]);
                gram[i * n + j] = k;
                gram[j * n + i] = k;
            }
            gram[i * n + i] += self.noise;
        }
        let l = cholesky(&gram, n).ok_or(FitError::Numerical(
            "kernel matrix not positive definite; increase noise",
        ))?;
        self.alphas = (0..n_classes)
            .map(|c| {
                let targets: Vec<f64> = y
                    .iter()
                    .map(|&yi| if yi == c { 1.0 } else { -1.0 })
                    .collect();
                cholesky_solve(&l, n, &targets)
            })
            .collect();
        self.x = x.to_vec();
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        let k: Vec<f64> = self.x.iter().map(|xi| self.kernel(xi, x)).collect();
        self.alphas
            .iter()
            .map(|alpha| alpha.iter().zip(&k).map(|(a, kv)| a * kv).sum::<f64>())
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite posteriors"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "Gaussian Process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::testutil::{blobs, xor};

    #[test]
    fn fits_blobs() {
        let (x, y) = blobs(15, 4, 61);
        let mut gp = GaussianProcess::default();
        gp.fit(&x, &y).unwrap();
        assert!(accuracy(&gp, &x, &y) > 0.95);
    }

    #[test]
    fn solves_xor() {
        let (x, y) = xor(150, 62);
        let mut gp = GaussianProcess::new(2.0, 1e-2);
        gp.fit(&x, &y).unwrap();
        assert!(accuracy(&gp, &x, &y) > 0.9);
    }

    #[test]
    fn interpolates_training_points_at_low_noise() {
        let x = vec![vec![0.0f32], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 1, 1];
        let mut gp = GaussianProcess::new(1.0, 1e-6);
        gp.fit(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(gp.predict(xi), yi);
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_panics() {
        GaussianProcess::new(0.0, 1e-3);
    }

    #[test]
    fn fit_errors() {
        assert!(GaussianProcess::default().fit(&[], &[]).is_err());
    }
}
