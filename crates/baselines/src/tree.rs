//! Decision trees (CART with Gini impurity) and random forests.

use crate::{validate, Classifier, FitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART decision tree with Gini impurity.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum depth of the tree.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// If set, the number of random features examined per split
    /// (random-forest mode); `None` examines all features.
    pub feature_subsample: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
    root: Option<Node>,
}

impl DecisionTree {
    /// Creates a tree with the given maximum depth.
    pub fn new(max_depth: usize) -> Self {
        DecisionTree {
            max_depth,
            min_samples_split: 2,
            feature_subsample: None,
            seed: 19,
            root: None,
        }
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let mut g = 1.0;
        for &c in counts {
            let p = c as f64 / total as f64;
            g -= p * p;
        }
        g
    }

    fn majority(y: &[usize], idx: &[usize], n_classes: usize) -> usize {
        let mut counts = vec![0usize; n_classes];
        for &i in idx {
            counts[y[i]] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(cls, _)| cls)
            .unwrap_or(0)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &self,
        x: &[Vec<f32>],
        y: &[usize],
        idx: &[usize],
        n_classes: usize,
        depth: usize,
        rng: &mut StdRng,
    ) -> Node {
        let majority = DecisionTree::majority(y, idx, n_classes);
        if depth >= self.max_depth || idx.len() < self.min_samples_split {
            return Node::Leaf { class: majority };
        }
        // Pure node?
        if idx.iter().all(|&i| y[i] == y[idx[0]]) {
            return Node::Leaf { class: majority };
        }
        let d = x[0].len();
        let features: Vec<usize> = match self.feature_subsample {
            Some(k) => {
                let k = k.min(d).max(1);
                (0..k).map(|_| rng.gen_range(0..d)).collect()
            }
            None => (0..d).collect(),
        };
        let mut best: Option<(f64, usize, f32)> = None;
        for &f in &features {
            // Candidate thresholds: midpoints of sorted unique values.
            let mut vals: Vec<f32> = idx.iter().map(|&i| x[i][f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            for w in vals.windows(2) {
                let thr = 0.5 * (w[0] + w[1]);
                let mut lc = vec![0usize; n_classes];
                let mut rc = vec![0usize; n_classes];
                for &i in idx {
                    if x[i][f] <= thr {
                        lc[y[i]] += 1;
                    } else {
                        rc[y[i]] += 1;
                    }
                }
                let ln: usize = lc.iter().sum();
                let rn: usize = rc.iter().sum();
                if ln == 0 || rn == 0 {
                    continue;
                }
                let score = (ln as f64 * DecisionTree::gini(&lc, ln)
                    + rn as f64 * DecisionTree::gini(&rc, rn))
                    / idx.len() as f64;
                if best.map(|(s, _, _)| score < s).unwrap_or(true) {
                    best = Some((score, f, thr));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return Node::Leaf { class: majority };
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf { class: majority };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &left_idx, n_classes, depth + 1, rng)),
            right: Box::new(self.build(x, y, &right_idx, n_classes, depth + 1, rng)),
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, _, n_classes) = validate(x, y)?;
        let idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(self.build(x, y, &idx, n_classes, 0, &mut rng));
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        let mut node = self.root.as_ref().expect("fit before predict");
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }
}

/// A bagged ensemble of feature-subsampled decision trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth of each tree.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Creates a forest.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0`.
    pub fn new(n_trees: usize, max_depth: usize) -> Self {
        assert!(n_trees > 0, "forest needs at least one tree");
        RandomForest {
            n_trees,
            max_depth,
            seed: 23,
            trees: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, d, n_classes) = validate(x, y)?;
        self.n_classes = n_classes;
        self.trees.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let subsample = ((d as f64).sqrt().ceil() as usize).max(1);
        for t in 0..self.n_trees {
            // Bootstrap sample.
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree = DecisionTree::new(self.max_depth);
            tree.feature_subsample = Some(subsample);
            tree.seed = self.seed.wrapping_add(t as u64 * 101);
            tree.fit(&bx, &by)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(x)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "Random Forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::testutil::{blobs, xor};

    #[test]
    fn tree_fits_blobs() {
        let (x, y) = blobs(20, 4, 7);
        let mut tree = DecisionTree::new(6);
        tree.fit(&x, &y).unwrap();
        assert!(accuracy(&tree, &x, &y) > 0.95);
    }

    #[test]
    fn tree_solves_xor() {
        let (x, y) = xor(200, 8);
        let mut tree = DecisionTree::new(4);
        tree.fit(&x, &y).unwrap();
        assert!(accuracy(&tree, &x, &y) > 0.9);
    }

    #[test]
    fn depth_one_is_a_stump() {
        let (x, y) = xor(200, 9);
        let mut stump = DecisionTree::new(1);
        stump.fit(&x, &y).unwrap();
        // A stump cannot solve XOR.
        assert!(accuracy(&stump, &x, &y) < 0.8);
    }

    #[test]
    fn forest_beats_or_matches_single_stumpy_tree() {
        let (x, y) = blobs(20, 6, 10);
        let mut tree = DecisionTree::new(2);
        tree.fit(&x, &y).unwrap();
        let mut forest = RandomForest::new(25, 2);
        forest.fit(&x, &y).unwrap();
        assert!(accuracy(&forest, &x, &y) >= accuracy(&tree, &x, &y) - 0.05);
    }

    #[test]
    fn forest_deterministic() {
        let (x, y) = blobs(10, 4, 11);
        let mut a = RandomForest::new(5, 3);
        let mut b = RandomForest::new(5, 3);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for probe in &x {
            assert_eq!(a.predict(probe), b.predict(probe));
        }
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        DecisionTree::new(3).predict(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        RandomForest::new(0, 3);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = vec![vec![1.0, 1.0]; 6];
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut tree = DecisionTree::new(5);
        tree.fit(&x, &y).unwrap();
        // Unsplittable: majority class everywhere (either, tie is fine).
        let p = tree.predict(&[1.0, 1.0]);
        assert!(p < 2);
    }
}
