//! Hidden Markov model classifier — the HMM approach of prior RFID
//! work (FEMO, reference 10 of the paper) used as a sequence-aware baseline.
//!
//! One left-to-right Gaussian HMM (diagonal covariance) is trained per
//! activity class with segmental k-means (Viterbi training);
//! classification picks the class whose model gives the sequence the
//! highest forward log-likelihood.

use crate::FitError;

/// A Gaussian-emission HMM over fixed-dimension frame sequences.
#[derive(Debug, Clone)]
pub struct GaussianHmm {
    n_states: usize,
    dim: usize,
    log_init: Vec<f64>,
    log_trans: Vec<f64>, // row-major n×n
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

const LOG_ZERO: f64 = -1e30;
const VAR_FLOOR: f64 = 1e-4;

impl GaussianHmm {
    /// Trains an HMM on `sequences` with `n_states` states and
    /// `iterations` rounds of Viterbi re-estimation.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when sequences are empty or inconsistent.
    pub fn fit(
        sequences: &[Vec<Vec<f32>>],
        n_states: usize,
        iterations: usize,
    ) -> Result<Self, FitError> {
        if sequences.is_empty() || n_states == 0 {
            return Err(FitError::EmptyTrainingSet);
        }
        let dim = sequences
            .first()
            .and_then(|s| s.first())
            .map(|f| f.len())
            .ok_or(FitError::EmptyTrainingSet)?;
        if dim == 0 {
            return Err(FitError::InconsistentFeatures);
        }
        for s in sequences {
            if s.is_empty() || s.iter().any(|f| f.len() != dim) {
                return Err(FitError::InconsistentFeatures);
            }
        }

        // Initial segmentation: uniform splits over time.
        let mut assignments: Vec<Vec<usize>> = sequences
            .iter()
            .map(|s| {
                (0..s.len())
                    .map(|t| (t * n_states / s.len()).min(n_states - 1))
                    .collect()
            })
            .collect();

        let mut model = GaussianHmm {
            n_states,
            dim,
            log_init: vec![LOG_ZERO; n_states],
            log_trans: vec![LOG_ZERO; n_states * n_states],
            means: vec![vec![0.0; dim]; n_states],
            vars: vec![vec![1.0; dim]; n_states],
        };
        model.reestimate(sequences, &assignments);

        for _ in 0..iterations {
            let mut changed = false;
            for (s_idx, seq) in sequences.iter().enumerate() {
                let path = model.viterbi(seq);
                if path != assignments[s_idx] {
                    changed = true;
                    assignments[s_idx] = path;
                }
            }
            model.reestimate(sequences, &assignments);
            if !changed {
                break;
            }
        }
        Ok(model)
    }

    /// Number of hidden states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    fn reestimate(&mut self, sequences: &[Vec<Vec<f32>>], assignments: &[Vec<usize>]) {
        let n = self.n_states;
        let d = self.dim;
        let mut state_counts = vec![0usize; n];
        let mut init_counts = vec![0usize; n];
        let mut trans_counts = vec![0usize; n * n];
        let mut means = vec![vec![0.0f64; d]; n];
        for (seq, path) in sequences.iter().zip(assignments) {
            init_counts[path[0]] += 1;
            for t in 0..seq.len() {
                let s = path[t];
                state_counts[s] += 1;
                for j in 0..d {
                    means[s][j] += seq[t][j] as f64;
                }
                if t + 1 < seq.len() {
                    trans_counts[s * n + path[t + 1]] += 1;
                }
            }
        }
        for s in 0..n {
            let c = state_counts[s].max(1) as f64;
            means[s].iter_mut().for_each(|m| *m /= c);
        }
        let mut vars = vec![vec![0.0f64; d]; n];
        for (seq, path) in sequences.iter().zip(assignments) {
            for (t, frame) in seq.iter().enumerate() {
                let s = path[t];
                for j in 0..d {
                    let diff = frame[j] as f64 - means[s][j];
                    vars[s][j] += diff * diff;
                }
            }
        }
        for s in 0..n {
            let c = state_counts[s].max(1) as f64;
            for v in vars[s].iter_mut() {
                *v = (*v / c).max(VAR_FLOOR);
            }
        }
        // Smoothed log-probabilities (add-one).
        let total_init: f64 = init_counts.iter().map(|&c| c as f64 + 1.0).sum();
        for (s, &cnt) in init_counts.iter().enumerate() {
            self.log_init[s] = ((cnt as f64 + 1.0) / total_init).ln();
        }
        for s in 0..n {
            let row_total: f64 = (0..n).map(|t| trans_counts[s * n + t] as f64 + 1.0).sum();
            for t in 0..n {
                self.log_trans[s * n + t] =
                    ((trans_counts[s * n + t] as f64 + 1.0) / row_total).ln();
            }
        }
        self.means = means;
        self.vars = vars;
    }

    fn log_emission(&self, state: usize, frame: &[f32]) -> f64 {
        let mut ll = 0.0;
        let stats = self.means[state].iter().zip(&self.vars[state]);
        for (&fv, (&mean, &var)) in frame.iter().zip(stats) {
            let d = fv as f64 - mean;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        ll
    }

    /// Most likely state path for a sequence.
    pub fn viterbi(&self, seq: &[Vec<f32>]) -> Vec<usize> {
        let n = self.n_states;
        let t_len = seq.len();
        if t_len == 0 {
            return Vec::new();
        }
        let mut delta: Vec<f64> = (0..n)
            .map(|s| self.log_init[s] + self.log_emission(s, &seq[0]))
            .collect();
        let mut back = vec![vec![0usize; n]; t_len];
        for t in 1..t_len {
            let mut next = vec![LOG_ZERO; n];
            for s in 0..n {
                let mut best = LOG_ZERO;
                let mut best_prev = 0;
                for (p, &dp) in delta.iter().enumerate() {
                    let cand = dp + self.log_trans[p * n + s];
                    if cand > best {
                        best = cand;
                        best_prev = p;
                    }
                }
                next[s] = best + self.log_emission(s, &seq[t]);
                back[t][s] = best_prev;
            }
            delta = next;
        }
        let mut state = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(s, _)| s)
            .unwrap_or(0);
        let mut path = vec![0usize; t_len];
        for t in (0..t_len).rev() {
            path[t] = state;
            state = back[t][state];
        }
        path
    }

    /// Forward-algorithm log-likelihood `ln P(seq | model)`.
    pub fn log_likelihood(&self, seq: &[Vec<f32>]) -> f64 {
        let n = self.n_states;
        if seq.is_empty() {
            return LOG_ZERO;
        }
        let log_sum_exp = |xs: &[f64]| {
            let m = xs.iter().cloned().fold(f64::MIN, f64::max);
            if m <= LOG_ZERO {
                return LOG_ZERO;
            }
            m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
        };
        let mut alpha: Vec<f64> = (0..n)
            .map(|s| self.log_init[s] + self.log_emission(s, &seq[0]))
            .collect();
        for frame in seq.iter().skip(1) {
            let mut next = vec![LOG_ZERO; n];
            for (s, next_s) in next.iter_mut().enumerate() {
                let terms: Vec<f64> = (0..n)
                    .map(|p| alpha[p] + self.log_trans[p * n + s])
                    .collect();
                *next_s = log_sum_exp(&terms) + self.log_emission(s, frame);
            }
            alpha = next;
        }
        log_sum_exp(&alpha)
    }
}

/// One HMM per class; classification by maximum log-likelihood.
#[derive(Debug, Clone, Default)]
pub struct HmmClassifier {
    models: Vec<Option<GaussianHmm>>,
}

impl HmmClassifier {
    /// Trains per-class HMMs.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the dataset is empty or inconsistent.
    pub fn fit(
        data: &[(Vec<Vec<f32>>, usize)],
        n_states: usize,
        iterations: usize,
    ) -> Result<Self, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let n_classes = data.iter().map(|(_, y)| *y).max().unwrap_or(0) + 1;
        let mut models = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let class_seqs: Vec<Vec<Vec<f32>>> = data
                .iter()
                .filter(|(_, y)| *y == c)
                .map(|(s, _)| s.clone())
                .collect();
            if class_seqs.is_empty() {
                models.push(None);
            } else {
                models.push(Some(GaussianHmm::fit(&class_seqs, n_states, iterations)?));
            }
        }
        Ok(HmmClassifier { models })
    }

    /// Predicts the class of one frame sequence.
    pub fn predict(&self, seq: &[Vec<f32>]) -> usize {
        self.models
            .iter()
            .enumerate()
            .filter_map(|(c, m)| m.as_ref().map(|m| (c, m.log_likelihood(seq))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite likelihoods"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Display name matching the related-work baseline.
    pub fn name(&self) -> &'static str {
        "HMM (FEMO-style)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequences whose classes differ only in temporal order.
    fn ordered_data() -> Vec<(Vec<Vec<f32>>, usize)> {
        let mut data = Vec::new();
        for k in 0..10 {
            let jitter = k as f32 * 0.01;
            // Class 0: low then high. Class 1: high then low.
            let low_high: Vec<Vec<f32>> = (0..8)
                .map(|t| vec![if t < 4 { 0.0 } else { 1.0 } + jitter])
                .collect();
            let high_low: Vec<Vec<f32>> = (0..8)
                .map(|t| vec![if t < 4 { 1.0 } else { 0.0 } + jitter])
                .collect();
            data.push((low_high, 0));
            data.push((high_low, 1));
        }
        data
    }

    #[test]
    fn distinguishes_temporal_order() {
        let data = ordered_data();
        let clf = HmmClassifier::fit(&data, 3, 5).unwrap();
        let correct = data.iter().filter(|(s, y)| clf.predict(s) == *y).count();
        assert!(correct as f64 / data.len() as f64 > 0.9);
    }

    #[test]
    fn likelihood_prefers_matching_model() {
        let seqs: Vec<Vec<Vec<f32>>> = (0..5)
            .map(|k| {
                (0..6)
                    .map(|t| vec![t as f32 * 0.5 + k as f32 * 0.01])
                    .collect()
            })
            .collect();
        let rising = GaussianHmm::fit(&seqs, 3, 4).unwrap();
        let rising_seq: Vec<Vec<f32>> = (0..6).map(|t| vec![t as f32 * 0.5]).collect();
        let falling_seq: Vec<Vec<f32>> = (0..6).map(|t| vec![(5 - t) as f32 * 0.5]).collect();
        assert!(rising.log_likelihood(&rising_seq) > rising.log_likelihood(&falling_seq));
    }

    #[test]
    fn viterbi_path_is_monotone_for_ramp() {
        let seqs: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|_| (0..9).map(|t| vec![t as f32]).collect())
            .collect();
        let hmm = GaussianHmm::fit(&seqs, 3, 5).unwrap();
        let path = hmm.viterbi(&seqs[0]);
        assert_eq!(path.len(), 9);
        for w in path.windows(2) {
            assert!(w[1] >= w[0], "ramp path should be monotone: {path:?}");
        }
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(GaussianHmm::fit(&[], 3, 2).is_err());
        assert!(HmmClassifier::fit(&[], 3, 2).is_err());
        let bad = vec![(vec![], 0usize)];
        assert!(HmmClassifier::fit(&bad, 2, 1).is_err());
    }

    #[test]
    fn missing_class_is_skipped() {
        // Labels 0 and 2, no 1.
        let seq = |v: f32| -> Vec<Vec<f32>> { (0..4).map(|_| vec![v]).collect() };
        let data = vec![(seq(0.0), 0), (seq(0.1), 0), (seq(5.0), 2), (seq(5.1), 2)];
        let clf = HmmClassifier::fit(&data, 2, 2).unwrap();
        assert_eq!(clf.predict(&seq(0.05)), 0);
        assert_eq!(clf.predict(&seq(5.05)), 2);
    }

    #[test]
    fn empty_sequence_likelihood_is_log_zero() {
        let seqs = vec![vec![vec![0.0f32]; 3]; 2];
        let hmm = GaussianHmm::fit(&seqs, 2, 1).unwrap();
        assert!(hmm.log_likelihood(&[]) <= -1e29);
        assert!(hmm.viterbi(&[]).is_empty());
    }
}
