//! Support vector machines: one-vs-rest linear (Pegasos) and RBF
//! (kernelised Pegasos).

use crate::{validate, Classifier, FitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-vs-rest linear SVM trained with the Pegasos subgradient method.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularisation strength λ.
    pub lambda: f32,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    weights: Vec<Vec<f32>>, // per class: d weights + bias
    n_classes: usize,
}

impl LinearSvm {
    /// Creates a linear SVM with sensible defaults for the M2AI
    /// feature scale.
    pub fn new() -> Self {
        LinearSvm {
            lambda: 1e-3,
            epochs: 60,
            seed: 13,
            weights: Vec::new(),
            n_classes: 0,
        }
    }

    fn margin(w: &[f32], x: &[f32]) -> f32 {
        let d = x.len();
        let mut m = w[d]; // bias
        for i in 0..d {
            m += w[i] * x[i];
        }
        m
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm::new()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, d, n_classes) = validate(x, y)?;
        self.n_classes = n_classes;
        self.weights = vec![vec![0.0; d + 1]; n_classes];
        let mut rng = StdRng::seed_from_u64(self.seed);
        for (c, w) in self.weights.iter_mut().enumerate() {
            let mut t = 0usize;
            for _ in 0..self.epochs {
                for _ in 0..n {
                    t += 1;
                    let i = rng.gen_range(0..n);
                    let target = if y[i] == c { 1.0f32 } else { -1.0 };
                    let eta = 1.0 / (self.lambda * t as f32);
                    let m = target * LinearSvm::margin(w, &x[i]);
                    // Regularisation shrink (not on the bias).
                    let shrink = 1.0 - eta * self.lambda;
                    for wj in w.iter_mut().take(d) {
                        *wj *= shrink;
                    }
                    if m < 1.0 {
                        for j in 0..d {
                            w[j] += eta * target * x[i][j];
                        }
                        w[d] += eta * target;
                    }
                }
            }
        }
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        self.weights
            .iter()
            .map(|w| LinearSvm::margin(w, x))
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite margins"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "Linear SVM"
    }
}

/// One-vs-rest SVM with a radial-basis-function kernel, trained with
/// kernelised Pegasos (all training points kept as potential support
/// vectors — fine at the dataset sizes of these experiments).
#[derive(Debug, Clone)]
pub struct RbfSvm {
    /// Kernel width: `k(x, z) = exp(−γ‖x−z‖²)`.
    pub gamma: f32,
    /// Regularisation strength λ.
    pub lambda: f32,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    x: Vec<Vec<f32>>,
    alphas: Vec<Vec<f32>>, // per class, per training point
    targets: Vec<Vec<f32>>,
    steps: usize,
}

impl RbfSvm {
    /// Creates an RBF SVM.
    pub fn new(gamma: f32) -> Self {
        RbfSvm {
            gamma,
            lambda: 1e-3,
            epochs: 30,
            seed: 17,
            x: Vec::new(),
            alphas: Vec::new(),
            targets: Vec::new(),
            steps: 1,
        }
    }

    fn kernel(&self, a: &[f32], b: &[f32]) -> f32 {
        let d2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-self.gamma * d2).exp()
    }

    fn decision(&self, class: usize, x: &[f32]) -> f32 {
        let scale = 1.0 / (self.lambda * self.steps as f32);
        self.alphas[class]
            .iter()
            .zip(&self.x)
            .zip(&self.targets[class])
            .filter(|((a, _), _)| **a != 0.0)
            .map(|((a, xi), t)| a * t * self.kernel(xi, x))
            .sum::<f32>()
            * scale
    }
}

impl Classifier for RbfSvm {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, _, n_classes) = validate(x, y)?;
        self.x = x.to_vec();
        self.alphas = vec![vec![0.0; n]; n_classes];
        self.targets = (0..n_classes)
            .map(|c| {
                y.iter()
                    .map(|&yi| if yi == c { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total = self.epochs * n;
        self.steps = total.max(1);
        // Kernelised Pegasos: α_i counts margin violations at draw i.
        for c in 0..n_classes {
            let mut t = 0usize;
            for _ in 0..self.epochs {
                for _ in 0..n {
                    t += 1;
                    let i = rng.gen_range(0..n);
                    let scale = 1.0 / (self.lambda * t as f32);
                    let mut dec = 0.0f32;
                    for j in 0..n {
                        let a = self.alphas[c][j];
                        if a != 0.0 {
                            dec += a * self.targets[c][j] * self.kernel(&self.x[j], &self.x[i]);
                        }
                    }
                    dec *= scale;
                    if self.targets[c][i] * dec < 1.0 {
                        self.alphas[c][i] += 1.0;
                    }
                }
            }
        }
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        (0..self.alphas.len())
            .map(|c| self.decision(c, x))
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite decisions"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "RBF SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::testutil::{blobs, xor};

    #[test]
    fn linear_separates_blobs() {
        let (x, y) = blobs(25, 6, 3);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y).unwrap();
        assert!(accuracy(&svm, &x, &y) > 0.95, "{}", accuracy(&svm, &x, &y));
    }

    #[test]
    fn linear_fails_on_xor_but_rbf_succeeds() {
        let (x, y) = xor(200, 4);
        let mut lin = LinearSvm::new();
        lin.fit(&x, &y).unwrap();
        let lin_acc = accuracy(&lin, &x, &y);
        let mut rbf = RbfSvm::new(2.0);
        rbf.fit(&x, &y).unwrap();
        let rbf_acc = accuracy(&rbf, &x, &y);
        assert!(lin_acc < 0.75, "linear should struggle on XOR: {lin_acc}");
        assert!(rbf_acc > 0.85, "rbf should solve XOR: {rbf_acc}");
    }

    #[test]
    fn rbf_separates_blobs() {
        let (x, y) = blobs(15, 4, 5);
        let mut svm = RbfSvm::new(0.5);
        svm.fit(&x, &y).unwrap();
        assert!(accuracy(&svm, &x, &y) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(10, 4, 6);
        let mut a = LinearSvm::new();
        let mut b = LinearSvm::new();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for probe in &x {
            assert_eq!(a.predict(probe), b.predict(probe));
        }
    }

    #[test]
    fn fit_errors_propagate() {
        let mut svm = LinearSvm::new();
        assert!(svm.fit(&[], &[]).is_err());
        let mut rbf = RbfSvm::new(1.0);
        assert!(rbf.fit(&[vec![1.0]], &[0, 1]).is_err());
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(LinearSvm::new().name(), "Linear SVM");
        assert_eq!(RbfSvm::new(1.0).name(), "RBF SVM");
    }
}
