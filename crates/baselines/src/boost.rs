//! Adaptive boosting (multiclass SAMME over shallow trees).

use crate::tree::DecisionTree;
use crate::{validate, Classifier, FitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// AdaBoost (SAMME variant) with depth-limited decision trees as weak
/// learners. Weighted training is realised by weighted resampling.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Depth of each weak learner.
    pub weak_depth: usize,
    /// RNG seed for resampling.
    pub seed: u64,
    learners: Vec<(f64, DecisionTree)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Creates an AdaBoost ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `n_rounds == 0`.
    pub fn new(n_rounds: usize, weak_depth: usize) -> Self {
        assert!(n_rounds > 0, "need at least one boosting round");
        AdaBoost {
            n_rounds,
            weak_depth,
            seed: 29,
            learners: Vec::new(),
            n_classes: 0,
        }
    }
}

/// Draws `n` indices proportionally to `weights` (roulette wheel).
fn weighted_resample(weights: &[f64], n: usize, rng: &mut StdRng) -> Vec<usize> {
    let total: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut target = rng.gen_range(0.0..total.max(1e-300));
        let mut pick = 0;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                pick = i;
                break;
            }
        }
        out.push(pick);
    }
    out
}

impl Classifier for AdaBoost {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize]) -> Result<(), FitError> {
        let (n, _, n_classes) = validate(x, y)?;
        self.n_classes = n_classes;
        self.learners.clear();
        let mut weights = vec![1.0 / n as f64; n];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let k = n_classes as f64;
        for round in 0..self.n_rounds {
            let sample = weighted_resample(&weights, n, &mut rng);
            let bx: Vec<Vec<f32>> = sample.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<usize> = sample.iter().map(|&i| y[i]).collect();
            let mut weak = DecisionTree::new(self.weak_depth);
            weak.seed = self.seed.wrapping_add(round as u64 * 37);
            weak.fit(&bx, &by)?;
            // Weighted error on the full set.
            let err: f64 = x
                .iter()
                .zip(y)
                .zip(&weights)
                .filter(|((xi, yi), _)| weak.predict(xi) != **yi)
                .map(|(_, w)| *w)
                .sum::<f64>()
                / weights.iter().sum::<f64>();
            if err >= 1.0 - 1.0 / k {
                continue; // worse than chance: discard this round
            }
            let err = err.max(1e-10);
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            // Re-weight: misclassified samples up.
            for ((xi, yi), w) in x.iter().zip(y).zip(weights.iter_mut()) {
                if weak.predict(xi) != *yi {
                    *w *= alpha.exp().min(1e6);
                }
            }
            let total: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= total);
            self.learners.push((alpha, weak));
            if err < 1e-8 {
                break; // perfect learner
            }
        }
        if self.learners.is_empty() {
            // Fall back to one unweighted learner so predict() works.
            let mut weak = DecisionTree::new(self.weak_depth);
            weak.fit(x, y)?;
            self.learners.push((1.0, weak));
        }
        Ok(())
    }

    fn predict(&self, x: &[f32]) -> usize {
        let mut scores = vec![0.0f64; self.n_classes];
        for (alpha, learner) in &self.learners {
            scores[learner.predict(x)] += alpha;
        }
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "AdaBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use crate::testutil::{blobs, xor};

    #[test]
    fn boosts_stumps_past_single_stump() {
        let (x, y) = xor(300, 31);
        let mut stump = DecisionTree::new(1);
        stump.fit(&x, &y).unwrap();
        let stump_acc = accuracy(&stump, &x, &y);
        let mut boost = AdaBoost::new(40, 2);
        boost.fit(&x, &y).unwrap();
        let boost_acc = accuracy(&boost, &x, &y);
        assert!(
            boost_acc > stump_acc + 0.1,
            "boost {boost_acc} vs stump {stump_acc}"
        );
    }

    #[test]
    fn fits_blobs() {
        let (x, y) = blobs(15, 4, 32);
        let mut boost = AdaBoost::new(15, 2);
        boost.fit(&x, &y).unwrap();
        assert!(accuracy(&boost, &x, &y) > 0.9);
    }

    #[test]
    fn deterministic() {
        let (x, y) = blobs(10, 3, 33);
        let mut a = AdaBoost::new(10, 2);
        let mut b = AdaBoost::new(10, 2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for probe in &x {
            assert_eq!(a.predict(probe), b.predict(probe));
        }
    }

    #[test]
    #[should_panic(expected = "boosting round")]
    fn zero_rounds_panics() {
        AdaBoost::new(0, 1);
    }

    #[test]
    fn handles_trivial_data() {
        // One class only: always predicts it.
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![0, 0];
        let mut boost = AdaBoost::new(5, 1);
        boost.fit(&x, &y).unwrap();
        assert_eq!(boost.predict(&[1.5]), 0);
    }
}
