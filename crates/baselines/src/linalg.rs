//! Small dense real linear algebra: Cholesky and Gauss–Jordan, `f64`.
//!
//! Sized for the baseline models (feature dimensions ≤ a few hundred).

/// Cholesky factorisation of a symmetric positive-definite matrix
/// (row-major `n × n`): returns lower-triangular `L` with `A = L·Lᵀ`.
///
/// Returns `None` if the matrix is not positive definite.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solves `A·x = b` given the Cholesky factor `L` of `A`.
pub fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), n, "rhs size mismatch");
    // Forward: L·y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Backward: Lᵀ·x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

/// Log-determinant of `A` from its Cholesky factor.
pub fn cholesky_logdet(l: &[f64], n: usize) -> f64 {
    (0..n).map(|i| l[i * n + i].ln()).sum::<f64>() * 2.0
}

/// Inverts a square matrix by Gauss–Jordan elimination with partial
/// pivoting. Returns `None` when singular.
pub fn invert(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    let mut m = a.to_vec();
    let mut inv = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[r * n + col].abs() > m[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                m.swap(col * n + j, pivot * n + j);
                inv.swap(col * n + j, pivot * n + j);
            }
        }
        let diag = m[col * n + col];
        for j in 0..n {
            m[col * n + j] /= diag;
            inv[col * n + j] /= diag;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = m[r * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                m[r * n + j] -= factor * m[col * n + j];
                inv[r * n + j] -= factor * inv[col * n + j];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_known_matrix() {
        // A = [[4, 2], [2, 3]] ⇒ L = [[2, 0], [1, √2]]
        let a = [4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = [4.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 6.0];
        let l = cholesky(&a, 3).unwrap();
        let b = [1.0, -2.0, 3.0];
        let x = cholesky_solve(&l, 3, &b);
        // Verify A·x = b.
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn logdet_matches_product() {
        let a = [4.0, 2.0, 2.0, 3.0]; // det = 8
        let l = cholesky(&a, 2).unwrap();
        assert!((cholesky_logdet(&l, 2) - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn invert_roundtrip() {
        let a = [2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let inv = invert(&a, 3).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let prod: f64 = (0..3).map(|k| a[i * 3 + k] * inv[k * 3 + j]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn invert_rejects_singular() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(invert(&a, 2).is_none());
    }
}
