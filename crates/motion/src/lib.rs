//! # m2ai-motion — human activity kinematics for RFID sensing
//!
//! The paper's experiments attach three passive tags (hand, arm,
//! shoulder) to each of up to three volunteers performing twelve
//! predefined two-person activity scenarios (Fig. 8), 3–6 m from the
//! antenna array. This crate synthesises those scenes:
//!
//! * [`volunteer`] — per-person body/speed/amplitude variation and
//!   smooth deterministic sway, standing in for the paper's ten
//!   volunteers of varying age, gender, height and weight;
//! * [`gesture`] — limb-level motion primitives (waving, squatting,
//!   arm raises, push–pull, sitting) expressed as tag offsets in the
//!   body frame;
//! * [`trajectory`] — whole-body motion (shuttling, orbiting, swapping
//!   positions);
//! * [`activity`] — the catalogue of 12 scenarios for 1, 2 or 3
//!   simultaneous persons (the paper's Fig. 8 set and its Fig. 11
//!   multi-person extension);
//! * [`scene`] — composition into time-indexed
//!   [`m2ai_rfsim::scene::SceneSnapshot`]s that the simulated reader
//!   consumes.
//!
//! The exact activity sketches in the paper's Fig. 8 are drawings
//! without a textual legend; the catalogue here is a faithful
//! *re-creation of the design intent*: pairs of simultaneous
//! gestures/motions, including pairs that differ only in temporal order
//! (so that models without temporal memory cannot separate them).
//!
//! # Example
//!
//! ```
//! use m2ai_motion::{activity::catalog, scene::ActivityScene, volunteer::Volunteer};
//!
//! let scenarios = catalog(2);
//! assert_eq!(scenarios.len(), 12);
//! let scene = ActivityScene::new(
//!     &scenarios[0],
//!     &[Volunteer::preset(0), Volunteer::preset(1)],
//!     3,
//!     42,
//! );
//! let snap = scene.snapshot(1.0);
//! assert_eq!(snap.tag_positions.len(), 6); // 2 persons × 3 tags
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod gesture;
pub mod scene;
pub mod trajectory;
pub mod volunteer;
