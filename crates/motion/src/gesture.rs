//! Limb-level motion primitives, expressed as tag offsets in the body
//! frame.
//!
//! The body frame has +x pointing in the person's heading direction and
//! +y to their left. Tags sit on the **hand**, **upper arm** and
//! **shoulder** (the paper's default placement); each gesture moves
//! these attachment points along characteristic trajectories whose
//! spatial extent and tempo scale with the [`Volunteer`].

use crate::volunteer::Volunteer;
use m2ai_rfsim::geometry::Vec2;

/// Where a tag is attached on the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSite {
    /// Back of the hand — largest motion extent.
    Hand,
    /// Upper arm — medium extent.
    Arm,
    /// Shoulder — small extent, mostly body motion.
    Shoulder,
}

impl TagSite {
    /// The default three sites, in the paper's order.
    pub const ALL: [TagSite; 3] = [TagSite::Hand, TagSite::Arm, TagSite::Shoulder];

    /// Rest offset of this site in the body frame (metres, for a
    /// `body_scale` of 1).
    pub fn rest_offset(self) -> Vec2 {
        match self {
            TagSite::Hand => Vec2::new(0.15, 0.45),
            TagSite::Arm => Vec2::new(0.05, 0.30),
            TagSite::Shoulder => Vec2::new(0.0, 0.20),
        }
    }

    /// How strongly arm gestures propagate to this site (hand moves
    /// most, shoulder barely).
    pub fn articulation(self) -> f64 {
        match self {
            TagSite::Hand => 1.0,
            TagSite::Arm => 0.55,
            TagSite::Shoulder => 0.12,
        }
    }
}

/// A repeating limb gesture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gesture {
    /// Standing still (sway only).
    Still,
    /// Lateral hand wave at `freq_hz`.
    Wave {
        /// Wave cycles per second.
        freq_hz: f64,
    },
    /// Squat cycle: tags draw toward the body centre and back.
    Squat {
        /// Seconds per squat.
        period_s: f64,
    },
    /// Forward arm raise and lower.
    RaiseArm {
        /// Seconds per raise-lower cycle.
        period_s: f64,
    },
    /// Push–pull of an object in front of the body.
    PushPull {
        /// Seconds per push-pull cycle.
        period_s: f64,
    },
    /// Alternating arm swing (walking arms).
    SwingArms {
        /// Seconds per stride pair.
        period_s: f64,
    },
    /// Sit down, hold, stand up over one cycle.
    SitStand {
        /// Seconds for the complete sit-hold-stand cycle.
        period_s: f64,
    },
}

impl Gesture {
    /// Offset of `site` from its rest position at time `t`, in the body
    /// frame, for the given volunteer.
    pub fn offset(self, site: TagSite, t: f64, vol: &Volunteer) -> Vec2 {
        let art = site.articulation();
        let amp = vol.amplitude * art;
        let tau = std::f64::consts::TAU;
        match self {
            Gesture::Still => Vec2::new(0.0, 0.0),
            Gesture::Wave { freq_hz } => {
                let w = tau * freq_hz * vol.tempo * t;
                // Lateral sweep with slight forward component.
                Vec2::new(0.10 * amp * (2.0 * w).sin(), 0.35 * amp * w.sin())
            }
            Gesture::Squat { period_s } => {
                let w = tau * t * vol.tempo / period_s;
                // Plan-view signature of a squat: all tags pull in
                // toward the body centre (arms drop and fold).
                let pull = 0.5 * (1.0 - w.cos()); // 0..1..0
                let rest = site.rest_offset();
                Vec2::new(-rest.x * 0.6 * pull, -rest.y * 0.6 * pull)
                    + Vec2::new(-0.10 * vol.amplitude * pull, 0.0)
            }
            Gesture::RaiseArm { period_s } => {
                let w = tau * t * vol.tempo / period_s;
                let lift = 0.5 * (1.0 - w.cos());
                // Arm rotates forward-up: forward extension, inward y.
                Vec2::new(0.40 * amp * lift, -0.25 * amp * lift)
            }
            Gesture::PushPull { period_s } => {
                let w = tau * t * vol.tempo / period_s;
                Vec2::new(0.35 * amp * w.sin(), 0.0)
            }
            Gesture::SwingArms { period_s } => {
                let w = tau * t * vol.tempo / period_s;
                Vec2::new(0.22 * amp * w.sin(), 0.05 * amp * (2.0 * w).sin())
            }
            Gesture::SitStand { period_s } => {
                let cycle = (t * vol.tempo / period_s).fract();
                // Piecewise: sink (0..0.3), hold (0.3..0.7), rise (0.7..1).
                let depth = if cycle < 0.3 {
                    cycle / 0.3
                } else if cycle < 0.7 {
                    1.0
                } else {
                    (1.0 - cycle) / 0.3
                };
                // Sitting shifts the torso back and folds the arms.
                Vec2::new(-0.30 * vol.amplitude * depth * art.max(0.5), 0.0)
            }
        }
    }

    /// Characteristic period of the gesture in seconds (for scheduling
    /// sample windows); `None` for [`Gesture::Still`].
    pub fn period_s(self) -> Option<f64> {
        match self {
            Gesture::Still => None,
            Gesture::Wave { freq_hz } => Some(1.0 / freq_hz),
            Gesture::Squat { period_s }
            | Gesture::RaiseArm { period_s }
            | Gesture::PushPull { period_s }
            | Gesture::SwingArms { period_s }
            | Gesture::SitStand { period_s } => Some(period_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> Volunteer {
        Volunteer::nominal()
    }

    #[test]
    fn still_never_moves() {
        for site in TagSite::ALL {
            for i in 0..20 {
                let o = Gesture::Still.offset(site, i as f64 * 0.3, &nominal());
                assert_eq!(o, Vec2::new(0.0, 0.0));
            }
        }
    }

    #[test]
    fn hand_moves_more_than_shoulder() {
        let g = Gesture::Wave { freq_hz: 1.0 };
        let peak = |site: TagSite| -> f64 {
            (0..100)
                .map(|i| g.offset(site, i as f64 * 0.01, &nominal()).length())
                .fold(0.0, f64::max)
        };
        assert!(peak(TagSite::Hand) > 2.0 * peak(TagSite::Shoulder));
        assert!(peak(TagSite::Hand) > peak(TagSite::Arm));
    }

    #[test]
    fn gestures_are_periodic() {
        let vol = nominal();
        for g in [
            Gesture::Wave { freq_hz: 1.0 },
            Gesture::Squat { period_s: 2.0 },
            Gesture::RaiseArm { period_s: 2.0 },
            Gesture::PushPull { period_s: 1.5 },
            Gesture::SwingArms { period_s: 1.2 },
        ] {
            let p = g.period_s().unwrap();
            for k in 0..5 {
                let t = 0.37 + k as f64 * 0.21;
                let a = g.offset(TagSite::Hand, t, &vol);
                let b = g.offset(TagSite::Hand, t + p, &vol);
                assert!((a - b).length() < 1e-9, "{g:?} not periodic");
            }
        }
    }

    #[test]
    fn tempo_scales_period() {
        let fast = Volunteer {
            tempo: 2.0,
            ..nominal()
        };
        let g = Gesture::PushPull { period_s: 2.0 };
        // A tempo-2 volunteer completes the cycle in half the time.
        let a = g.offset(TagSite::Hand, 0.5, &fast);
        let b = g.offset(TagSite::Hand, 1.0, &nominal());
        assert!((a - b).length() < 1e-9);
    }

    #[test]
    fn squat_pulls_inward() {
        let g = Gesture::Squat { period_s: 2.0 };
        // At half period the pull is maximal; hand offset points toward
        // the body (negative components relative to rest).
        let o = g.offset(TagSite::Hand, 1.0, &nominal());
        let rest = TagSite::Hand.rest_offset();
        assert!((rest + o).length() < rest.length());
    }

    #[test]
    fn sit_stand_holds_then_returns() {
        let g = Gesture::SitStand { period_s: 4.0 };
        let vol = nominal();
        let seated = g.offset(TagSite::Shoulder, 2.0, &vol); // mid-hold
        assert!(seated.length() > 0.05);
        let standing = g.offset(TagSite::Shoulder, 0.0, &vol);
        assert!(standing.length() < 1e-9);
    }

    #[test]
    fn amplitude_scales_extent() {
        let big = Volunteer {
            amplitude: 1.2,
            ..nominal()
        };
        let g = Gesture::Wave { freq_hz: 1.0 };
        let t = 0.31;
        let a = g.offset(TagSite::Hand, t, &big).length();
        let b = g.offset(TagSite::Hand, t, &nominal()).length();
        assert!((a / b - 1.2).abs() < 1e-9);
    }

    #[test]
    fn rest_offsets_are_ordered() {
        assert!(TagSite::Hand.rest_offset().length() > TagSite::Arm.rest_offset().length());
        assert!(TagSite::Arm.rest_offset().length() > TagSite::Shoulder.rest_offset().length());
    }
}
