//! The catalogue of activity scenarios (the paper's Fig. 8 set).
//!
//! Each scenario assigns every person a whole-body [`Trajectory`] and a
//! (possibly sequenced) [`Gesture`] script. Four class pairs are
//! deliberately *order-mirrored* — identical position/gesture
//! distributions over the recording window, opposite temporal order
//! (A05/A06 and A07/A08 swap gesture sequences; A09/A10 orbit in
//! opposite directions; A11/A12 shuttle in opposite phase). A
//! classifier without temporal memory (per-frame CNN, time-averaged
//! SVM features) cannot beat a coin flip on those pairs, while the
//! LSTM separates them — the paper's argument for the CNN+LSTM design
//! (Fig. 9 and Fig. 17).

use crate::gesture::{Gesture, TagSite};
use crate::trajectory::Trajectory;
use crate::volunteer::Volunteer;
use m2ai_rfsim::geometry::Vec2;

/// Scenario-catalogue build counter, resolved once per process.
fn catalog_builds() -> &'static m2ai_obs::Counter {
    static C: std::sync::OnceLock<m2ai_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        m2ai_obs::counter(
            "m2ai_motion_catalog_builds_total",
            "activity scenario catalogues constructed",
            &[],
        )
    })
}

/// Identifier of an activity class (1-based, `A 01`…`A 12` as in
/// Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(pub u8);

impl std::fmt::Display for ActivityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A {:02}", self.0)
    }
}

/// A timed sequence of gestures that repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct GestureScript {
    steps: Vec<(f64, Gesture)>,
    total_s: f64,
}

impl GestureScript {
    /// A script holding a single gesture forever.
    pub fn constant(g: Gesture) -> Self {
        GestureScript {
            steps: vec![(f64::INFINITY, g)],
            total_s: f64::INFINITY,
        }
    }

    /// A repeating sequence of `(duration_s, gesture)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or a duration is not positive.
    pub fn sequence(steps: Vec<(f64, Gesture)>) -> Self {
        assert!(!steps.is_empty(), "script must have at least one step");
        assert!(
            steps.iter().all(|&(d, _)| d > 0.0),
            "durations must be positive"
        );
        let total_s = steps.iter().map(|&(d, _)| d).sum();
        GestureScript { steps, total_s }
    }

    /// The active gesture at time `t` and the time elapsed inside it.
    pub fn at(&self, t: f64) -> (Gesture, f64) {
        let (idx, local) = self.step_at(t);
        (self.steps[idx].1, local)
    }

    /// Index of the active step at time `t` and the time elapsed
    /// inside it.
    fn step_at(&self, t: f64) -> (usize, f64) {
        if self.total_s.is_infinite() {
            return (0, t);
        }
        let mut local = t.rem_euclid(self.total_s);
        for (i, &(d, _)) in self.steps.iter().enumerate() {
            if local < d {
                return (i, local);
            }
            local -= d;
        }
        // Floating-point edge: land on the final step.
        (
            self.steps.len() - 1,
            self.steps.last().expect("non-empty").0,
        )
    }

    /// Seconds over which consecutive steps cross-fade.
    const BLEND_S: f64 = 0.35;

    /// Tag offset of `site` at time `t`, for the given volunteer.
    ///
    /// At a step boundary the outgoing gesture keeps playing and fades
    /// out while the incoming one fades in (smoothstep over
    /// [`Self::BLEND_S`] seconds) — limbs move continuously between
    /// gestures instead of teleporting to the next pose.
    pub fn offset(&self, site: TagSite, t: f64, vol: &Volunteer) -> Vec2 {
        let (idx, local) = self.step_at(t);
        let cur = self.steps[idx].1.offset(site, local, vol);
        if self.steps.len() < 2 || local >= Self::BLEND_S {
            return cur;
        }
        let prev_idx = (idx + self.steps.len() - 1) % self.steps.len();
        let (prev_d, prev_g) = self.steps[prev_idx];
        let prev = prev_g.offset(site, prev_d + local, vol);
        let u = local / Self::BLEND_S;
        let w = u * u * (3.0 - 2.0 * u);
        prev * (1.0 - w) + cur * w
    }
}

/// Everything one person does during a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonProgram {
    /// Anchor offset from the scenario placement centre (metres).
    pub anchor_offset: Vec2,
    /// Whole-body trajectory.
    pub trajectory: Trajectory,
    /// Limb gesture script.
    pub script: GestureScript,
}

/// A complete multi-person activity scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityScenario {
    /// Class identifier.
    pub id: ActivityId,
    /// Human-readable description.
    pub name: &'static str,
    /// One program per participating person.
    pub programs: Vec<PersonProgram>,
}

impl ActivityScenario {
    /// Number of persons in the scenario.
    pub fn n_persons(&self) -> usize {
        self.programs.len()
    }
}

/// Standard anchor offsets for up to three persons.
fn anchors(n: usize) -> Vec<Vec2> {
    let all = [
        Vec2::new(-1.25, 0.0),
        Vec2::new(1.25, 0.0),
        Vec2::new(0.0, 1.5),
    ];
    all[..n].to_vec()
}

fn program(anchor: Vec2, trajectory: Trajectory, script: GestureScript) -> PersonProgram {
    PersonProgram {
        anchor_offset: anchor,
        trajectory,
        script,
    }
}

/// Builds the 12-scenario catalogue for `n_persons` ∈ {1, 2, 3}.
///
/// Two persons is the paper's default (Fig. 8); one and three persons
/// are the Fig. 11 variants. The twelve classes keep the same ids and
/// flavour across person counts so accuracies are comparable.
///
/// # Panics
///
/// Panics unless `n_persons` is 1, 2 or 3.
pub fn catalog(n_persons: usize) -> Vec<ActivityScenario> {
    assert!(
        (1..=3).contains(&n_persons),
        "scenarios defined for 1..=3 persons"
    );
    catalog_builds().inc();
    let a = anchors(n_persons);
    let wave = || GestureScript::constant(Gesture::Wave { freq_hz: 1.0 });
    let squat = || GestureScript::constant(Gesture::Squat { period_s: 2.5 });
    let raise = || GestureScript::constant(Gesture::RaiseArm { period_s: 2.0 });
    let push = || GestureScript::constant(Gesture::PushPull { period_s: 1.6 });
    let swing = || GestureScript::constant(Gesture::SwingArms { period_s: 1.2 });
    let still = || GestureScript::constant(Gesture::Still);
    // Order-mirrored gesture sequences: identical halves, swapped.
    let wave_then_squat = || {
        GestureScript::sequence(vec![
            (3.0, Gesture::Wave { freq_hz: 1.0 }),
            (3.0, Gesture::Squat { period_s: 2.5 }),
        ])
    };
    let squat_then_wave = || {
        GestureScript::sequence(vec![
            (3.0, Gesture::Squat { period_s: 2.5 }),
            (3.0, Gesture::Wave { freq_hz: 1.0 }),
        ])
    };
    let raise_then_push = || {
        GestureScript::sequence(vec![
            (3.0, Gesture::RaiseArm { period_s: 2.0 }),
            (3.0, Gesture::PushPull { period_s: 1.6 }),
        ])
    };
    let push_then_raise = || {
        GestureScript::sequence(vec![
            (3.0, Gesture::PushPull { period_s: 1.6 }),
            (3.0, Gesture::RaiseArm { period_s: 2.0 }),
        ])
    };
    let hold = Trajectory::Hold;
    let shuttle = |phase: f64| Trajectory::Shuttle {
        heading: Vec2::new(1.0, 0.0),
        half_length_m: 0.7,
        period_s: 4.0,
        phase,
    };
    let orbit = |center: Vec2, reverse: bool| Trajectory::Orbit {
        center_offset: center,
        period_s: 8.0,
        phase: 0.0,
        reverse,
    };

    let mut scenarios = Vec::with_capacity(12);
    for id in 1..=12u8 {
        let (name, programs): (&'static str, Vec<PersonProgram>) = match id {
            1 => (
                "all wave hands",
                a.iter().map(|&o| program(o, hold, wave())).collect(),
            ),
            2 => (
                "all squat",
                a.iter().map(|&o| program(o, hold, squat())).collect(),
            ),
            // With a single person, "wave vs squat" would collapse
            // onto class 1; the solo variants use the other two
            // gestures so all twelve classes stay distinct (Fig. 11).
            3 => (
                if n_persons == 1 {
                    "arm raises"
                } else {
                    "wave vs squat"
                },
                a.iter()
                    .enumerate()
                    .map(|(i, &o)| {
                        let script = if n_persons == 1 {
                            raise()
                        } else if i % 2 == 0 {
                            wave()
                        } else {
                            squat()
                        };
                        program(o, hold, script)
                    })
                    .collect(),
            ),
            4 => (
                if n_persons == 1 {
                    "push-pull"
                } else {
                    "arm raises vs push-pull"
                },
                a.iter()
                    .enumerate()
                    .map(|(i, &o)| {
                        let script = if n_persons == 1 {
                            push()
                        } else if i % 2 == 0 {
                            raise()
                        } else {
                            push()
                        };
                        program(o, hold, script)
                    })
                    .collect(),
            ),
            // Order-mirrored pair 1: gesture sequence A↔B.
            5 => (
                "wave then squat",
                a.iter()
                    .enumerate()
                    .map(|(i, &o)| {
                        program(o, hold, if i == 0 { wave_then_squat() } else { still() })
                    })
                    .collect(),
            ),
            6 => (
                "squat then wave",
                a.iter()
                    .enumerate()
                    .map(|(i, &o)| {
                        program(o, hold, if i == 0 { squat_then_wave() } else { still() })
                    })
                    .collect(),
            ),
            // Order-mirrored pair 2: a second sequence pair with a
            // waving partner.
            7 => (
                "raise then push (partner waves)",
                a.iter()
                    .enumerate()
                    .map(|(i, &o)| {
                        program(o, hold, if i == 0 { raise_then_push() } else { wave() })
                    })
                    .collect(),
            ),
            8 => (
                "push then raise (partner waves)",
                a.iter()
                    .enumerate()
                    .map(|(i, &o)| {
                        program(o, hold, if i == 0 { push_then_raise() } else { wave() })
                    })
                    .collect(),
            ),
            // Order-mirrored pair 3: orbit direction.
            9 => (
                "circle counter-clockwise",
                a.iter()
                    .map(|&o| program(o, orbit(-o, false), swing()))
                    .collect(),
            ),
            10 => (
                "circle clockwise",
                a.iter()
                    .map(|&o| program(o, orbit(-o, true), swing()))
                    .collect(),
            ),
            // Order-mirrored pair 4: shuttle phase.
            11 => (
                "pace starting right",
                a.iter()
                    .map(|&o| program(o, shuttle(0.0), swing()))
                    .collect(),
            ),
            12 => (
                "pace starting left",
                a.iter()
                    .map(|&o| program(o, shuttle(std::f64::consts::PI), swing()))
                    .collect(),
            ),
            _ => unreachable!(),
        };
        scenarios.push(ActivityScenario {
            id: ActivityId(id),
            name,
            programs,
        });
    }
    scenarios
}

/// Indices (0-based) of the order-mirrored class pairs — classes a
/// memoryless classifier cannot separate better than chance.
pub const ORDER_MIRRORED_PAIRS: [(usize, usize); 4] = [(4, 5), (6, 7), (8, 9), (10, 11)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_scenarios_per_person_count() {
        for n in 1..=3 {
            let cat = catalog(n);
            assert_eq!(cat.len(), 12);
            for s in &cat {
                assert_eq!(s.n_persons(), n, "{}", s.id);
            }
        }
    }

    #[test]
    fn ids_are_one_based_and_unique() {
        let cat = catalog(2);
        let ids: Vec<u8> = cat.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, (1..=12).collect::<Vec<u8>>());
        assert_eq!(cat[0].id.to_string(), "A 01");
    }

    #[test]
    #[should_panic(expected = "1..=3")]
    fn four_persons_unsupported() {
        catalog(4);
    }

    #[test]
    fn script_sequencing() {
        let s = GestureScript::sequence(vec![
            (2.0, Gesture::Wave { freq_hz: 1.0 }),
            (3.0, Gesture::Squat { period_s: 2.5 }),
        ]);
        assert!(matches!(s.at(0.5).0, Gesture::Wave { .. }));
        assert!(matches!(s.at(2.5).0, Gesture::Squat { .. }));
        // Wraps around after 5 s.
        assert!(matches!(s.at(5.5).0, Gesture::Wave { .. }));
        // Local time resets per step.
        assert!((s.at(2.5).1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constant_script_never_switches() {
        let s = GestureScript::constant(Gesture::Still);
        assert!(matches!(s.at(1e6).0, Gesture::Still));
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_sequence_panics() {
        GestureScript::sequence(vec![]);
    }

    #[test]
    fn a05_a06_are_temporal_mirrors() {
        let cat = catalog(2);
        let a05 = &cat[4];
        let a06 = &cat[5];
        // Same gestures, opposite order: at t=1 s A05 waves while A06
        // squats, and vice versa at t=4 s.
        let g05_early = a05.programs[0].script.at(1.0).0;
        let g06_early = a06.programs[0].script.at(1.0).0;
        assert!(matches!(g05_early, Gesture::Wave { .. }));
        assert!(matches!(g06_early, Gesture::Squat { .. }));
        let g05_late = a05.programs[0].script.at(4.0).0;
        let g06_late = a06.programs[0].script.at(4.0).0;
        assert!(matches!(g05_late, Gesture::Squat { .. }));
        assert!(matches!(g06_late, Gesture::Wave { .. }));
    }

    #[test]
    fn mirrored_pairs_visit_identical_positions() {
        // A09/A10 (orbits) and A11/A12 (shuttles) must cover the same
        // point sets, only in opposite order.
        use crate::volunteer::Volunteer;
        use m2ai_rfsim::geometry::Point2;
        let cat = catalog(2);
        let vol = Volunteer::nominal();
        let anchor = Point2::new(5.0, 4.0);
        for &(i, j) in &[(8usize, 9usize), (10, 11)] {
            let ti = cat[i].programs[0].trajectory;
            let tj = cat[j].programs[0].trajectory;
            // Forward pass of one must match the time-reverse of the
            // other over a full period (up to phase alignment for the
            // shuttle pair: sin(π+w) = sin(-w)).
            for k in 0..40 {
                let t = k as f64 * 0.2;
                let p_fwd = ti.position(anchor, t, &vol);
                let p_rev = tj.position(anchor, -t, &vol);
                assert!(
                    p_fwd.distance(p_rev) < 1e-9,
                    "{} vs {} at t={t}",
                    cat[i].id,
                    cat[j].id
                );
            }
        }
    }

    #[test]
    fn anchors_are_distinct() {
        for n in 1..=3 {
            let cat = catalog(n);
            for s in &cat {
                for i in 0..s.programs.len() {
                    for j in (i + 1)..s.programs.len() {
                        let d =
                            (s.programs[i].anchor_offset - s.programs[j].anchor_offset).length();
                        assert!(d > 1.0, "{}: persons {i},{j} too close", s.id);
                    }
                }
            }
        }
    }

    #[test]
    fn order_mirrored_pairs_constant_is_consistent() {
        let cat = catalog(2);
        for &(i, j) in &ORDER_MIRRORED_PAIRS {
            assert!(i < cat.len() && j < cat.len());
            assert_ne!(cat[i].name, cat[j].name);
        }
    }
}
