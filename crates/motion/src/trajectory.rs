//! Whole-body trajectories: where the person's torso is over time.

use crate::volunteer::Volunteer;
use m2ai_rfsim::geometry::{Point2, Vec2};

/// A body trajectory anchored at a start position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trajectory {
    /// Stay at the anchor (postural sway only).
    Hold,
    /// Shuttle back and forth along `heading` with half-extent
    /// `half_length_m`, one full cycle per `period_s`.
    Shuttle {
        /// Direction of travel (need not be unit length).
        heading: Vec2,
        /// Half of the excursion in metres.
        half_length_m: f64,
        /// Seconds per out-and-back cycle.
        period_s: f64,
        /// Phase offset in radians (π starts on the opposite leg —
        /// identical position marginals, opposite temporal order).
        phase: f64,
    },
    /// Orbit a centre offset from the anchor.
    Orbit {
        /// Centre of the orbit relative to the anchor.
        center_offset: Vec2,
        /// Seconds per revolution.
        period_s: f64,
        /// Initial angle in radians.
        phase: f64,
        /// Reverse (clockwise) revolution — same positions visited,
        /// opposite temporal order.
        reverse: bool,
    },
    /// Move from the anchor toward `target_offset`, arriving at
    /// `arrive_s`, then hold there.
    MoveTo {
        /// Destination relative to the anchor.
        target_offset: Vec2,
        /// Seconds to arrival (smooth-step profile).
        arrive_s: f64,
    },
}

impl Trajectory {
    /// Body position at time `t` for a person anchored at `anchor`.
    pub fn position(&self, anchor: Point2, t: f64, vol: &Volunteer) -> Point2 {
        let tau = std::f64::consts::TAU;
        match *self {
            Trajectory::Hold => anchor,
            Trajectory::Shuttle {
                heading,
                half_length_m,
                period_s,
                phase,
            } => {
                let w = phase + tau * t * vol.tempo / period_s;
                anchor + heading.normalized() * (half_length_m * w.sin())
            }
            Trajectory::Orbit {
                center_offset,
                period_s,
                phase,
                reverse,
            } => {
                let center = anchor + center_offset;
                let radius = center_offset.length();
                let dir = if reverse { -1.0 } else { 1.0 };
                // Start exactly at the anchor: initial angle points
                // from the centre back toward the anchor.
                let ang0 = (-center_offset.y).atan2(-center_offset.x);
                let ang = ang0 + phase + dir * tau * t * vol.tempo / period_s;
                center + Vec2::new(ang.cos(), ang.sin()) * radius
            }
            Trajectory::MoveTo {
                target_offset,
                arrive_s,
            } => {
                let s = (t * vol.tempo / arrive_s).clamp(0.0, 1.0);
                // Smooth-step: zero velocity at both ends.
                let eased = s * s * (3.0 - 2.0 * s);
                anchor + target_offset * eased
            }
        }
    }

    /// Heading (unit vector) the body faces at time `t`.
    ///
    /// Headings are continuous in time: a shuttling person faces their
    /// line of travel throughout (side-stepping on the return leg), a
    /// mover faces the target, an orbiter faces along the tangent, and
    /// a stationary person faces +x.
    pub fn heading(&self, t: f64, vol: &Volunteer) -> Vec2 {
        match *self {
            Trajectory::Hold => Vec2::new(1.0, 0.0),
            Trajectory::Shuttle { heading, .. } => heading.normalized(),
            Trajectory::Orbit {
                center_offset,
                period_s,
                phase,
                reverse,
            } => {
                let dir = if reverse { -1.0 } else { 1.0 };
                let ang0 = (-center_offset.y).atan2(-center_offset.x);
                let ang = ang0 + phase + dir * std::f64::consts::TAU * t * vol.tempo / period_s;
                // Tangent of the circular motion.
                Vec2::new(-dir * ang.sin(), dir * ang.cos())
                    * if center_offset.length() > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                    + if center_offset.length() > 0.0 {
                        Vec2::new(0.0, 0.0)
                    } else {
                        Vec2::new(1.0, 0.0)
                    }
            }
            Trajectory::MoveTo { target_offset, .. } => {
                if target_offset.length() < 1e-9 {
                    Vec2::new(1.0, 0.0)
                } else {
                    target_offset.normalized()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> Volunteer {
        Volunteer::nominal()
    }

    const ANCHOR: Point2 = Point2::new(5.0, 4.0);

    #[test]
    fn hold_stays_put() {
        let tr = Trajectory::Hold;
        for i in 0..10 {
            assert_eq!(tr.position(ANCHOR, i as f64, &vol()), ANCHOR);
        }
    }

    #[test]
    fn shuttle_stays_within_extent_and_returns() {
        let tr = Trajectory::Shuttle {
            heading: Vec2::new(1.0, 0.0),
            half_length_m: 1.5,
            period_s: 4.0,
            phase: 0.0,
        };
        for i in 0..100 {
            let p = tr.position(ANCHOR, i as f64 * 0.1, &vol());
            assert!((p.x - ANCHOR.x).abs() <= 1.5 + 1e-9);
            assert_eq!(p.y, ANCHOR.y);
        }
        let back = tr.position(ANCHOR, 4.0, &vol());
        assert!(back.distance(ANCHOR) < 1e-9);
    }

    #[test]
    fn orbit_keeps_constant_radius_and_starts_at_anchor() {
        let tr = Trajectory::Orbit {
            center_offset: Vec2::new(1.0, 0.0),
            period_s: 6.0,
            phase: 0.0,
            reverse: false,
        };
        let center = ANCHOR + Vec2::new(1.0, 0.0);
        let start = tr.position(ANCHOR, 0.0, &vol());
        assert!(start.distance(ANCHOR) < 1e-9, "orbit starts at anchor");
        for i in 0..60 {
            let p = tr.position(ANCHOR, i as f64 * 0.1, &vol());
            assert!((p.distance(center) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn move_to_arrives_and_holds() {
        let tr = Trajectory::MoveTo {
            target_offset: Vec2::new(2.0, -1.0),
            arrive_s: 3.0,
        };
        let v = vol();
        assert!(tr.position(ANCHOR, 0.0, &v).distance(ANCHOR) < 1e-9);
        let arrived = tr.position(ANCHOR, 3.0, &v);
        assert!(arrived.distance(ANCHOR + Vec2::new(2.0, -1.0)) < 1e-9);
        let later = tr.position(ANCHOR, 10.0, &v);
        assert!(later.distance(arrived) < 1e-9);
    }

    #[test]
    fn move_to_velocity_is_smooth() {
        let tr = Trajectory::MoveTo {
            target_offset: Vec2::new(2.0, 0.0),
            arrive_s: 2.0,
        };
        let v = vol();
        // Velocity near start/end is near zero (smooth-step easing).
        let vel = |t: f64| {
            let dt = 1e-4;
            (tr.position(ANCHOR, t + dt, &v) - tr.position(ANCHOR, t, &v)).length() / dt
        };
        assert!(vel(0.01) < 0.2);
        assert!(vel(1.0) > 1.0); // fastest in the middle
        assert!(vel(1.99) < 0.2);
    }

    #[test]
    fn heading_points_along_motion() {
        let tr = Trajectory::Shuttle {
            heading: Vec2::new(0.0, 1.0),
            half_length_m: 1.0,
            period_s: 4.0,
            phase: 0.0,
        };
        let h = tr.heading(0.0, &vol()); // moving in +y at t=0
        assert!(h.y > 0.9);
        let hold_heading = Trajectory::Hold.heading(1.0, &vol());
        assert_eq!(hold_heading, Vec2::new(1.0, 0.0));
    }

    #[test]
    fn tempo_speeds_up_shuttle() {
        let tr = Trajectory::Shuttle {
            heading: Vec2::new(1.0, 0.0),
            half_length_m: 1.0,
            period_s: 4.0,
            phase: 0.0,
        };
        let fast = Volunteer {
            tempo: 2.0,
            ..Volunteer::nominal()
        };
        // Fast volunteer at t=1 equals nominal at t=2.
        let a = tr.position(ANCHOR, 1.0, &fast);
        let b = tr.position(ANCHOR, 2.0, &vol());
        assert!(a.distance(b) < 1e-9);
    }
}
