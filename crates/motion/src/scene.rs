//! Composition of scenarios + volunteers into reader-consumable scenes.

use crate::activity::ActivityScenario;
use crate::gesture::TagSite;
use crate::volunteer::Volunteer;
use m2ai_rfsim::geometry::{Point2, Vec2};
use m2ai_rfsim::scene::{Blocker, SceneSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A realised activity scene: a scenario performed by specific
/// volunteers at a specific spot in the room.
///
/// Tag ordering in the produced snapshots is person-major:
/// `person0·hand, person0·arm, person0·shoulder, person1·hand, …` —
/// the frame builders downstream rely on this ordering.
#[derive(Debug, Clone)]
pub struct ActivityScene {
    scenario: ActivityScenario,
    volunteers: Vec<Volunteer>,
    tags_per_person: usize,
    /// Placement centre of the scenario in room coordinates.
    pub placement: Point2,
    /// Small per-sample-instance start-time offset (so two recordings of
    /// the same activity never align exactly).
    pub time_offset: f64,
}

impl ActivityScene {
    /// Default placement ~4.5 m in front of the paper's default array
    /// position.
    pub const DEFAULT_PLACEMENT: Point2 = Point2::new(5.0, 4.8);

    /// Creates a scene with the default placement.
    ///
    /// `tags_per_person` selects the first 1..=3 of hand/arm/shoulder
    /// (the Fig. 15 knob). `seed` randomises the start-time offset.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer volunteers than scenario persons or if
    /// `tags_per_person` is not in `1..=3`.
    pub fn new(
        scenario: &ActivityScenario,
        volunteers: &[Volunteer],
        tags_per_person: usize,
        seed: u64,
    ) -> Self {
        ActivityScene::with_placement(
            scenario,
            volunteers,
            tags_per_person,
            seed,
            Self::DEFAULT_PLACEMENT,
        )
    }

    /// Creates a scene centred at `placement`.
    ///
    /// # Panics
    ///
    /// See [`ActivityScene::new`].
    pub fn with_placement(
        scenario: &ActivityScenario,
        volunteers: &[Volunteer],
        tags_per_person: usize,
        seed: u64,
        placement: Point2,
    ) -> Self {
        assert!(
            volunteers.len() >= scenario.n_persons(),
            "need one volunteer per person"
        );
        assert!(
            (1..=3).contains(&tags_per_person),
            "tags_per_person must be 1..=3"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        ActivityScene {
            scenario: scenario.clone(),
            volunteers: volunteers[..scenario.n_persons()].to_vec(),
            tags_per_person,
            placement,
            time_offset: rng.gen_range(0.0..0.8),
        }
    }

    /// Number of tags in the produced snapshots.
    pub fn n_tags(&self) -> usize {
        self.scenario.n_persons() * self.tags_per_person
    }

    /// The scenario being performed.
    pub fn scenario(&self) -> &ActivityScenario {
        &self.scenario
    }

    /// Body position of person `i` at time `t`.
    pub fn body_position(&self, i: usize, t: f64) -> Point2 {
        let prog = &self.scenario.programs[i];
        let vol = &self.volunteers[i];
        let anchor = self.placement + prog.anchor_offset;
        let base = prog.trajectory.position(anchor, t + self.time_offset, vol);
        let (sx, sy) = vol.sway(t + self.time_offset);
        base + Vec2::new(sx, sy)
    }

    /// World state at time `t`, ready for the simulated reader.
    pub fn snapshot(&self, t: f64) -> SceneSnapshot {
        let t = t + self.time_offset;
        let n_persons = self.scenario.n_persons();
        let mut tag_positions = Vec::with_capacity(self.n_tags());
        let mut blockers = Vec::with_capacity(n_persons);

        for i in 0..n_persons {
            let prog = &self.scenario.programs[i];
            let vol = &self.volunteers[i];
            let anchor = self.placement + prog.anchor_offset;
            let body = prog.trajectory.position(anchor, t, vol);
            let (sx, sy) = vol.sway(t);
            let body = body + Vec2::new(sx, sy);
            let heading = prog.trajectory.heading(t, vol);
            let heading_angle = heading.angle();

            for site in TagSite::ALL.iter().take(self.tags_per_person) {
                let rest = site.rest_offset() * vol.body_scale;
                let offset = rest + prog.script.offset(*site, t, vol);
                // Rotate body-frame offset into the room frame.
                let world = offset.rotated(heading_angle);
                tag_positions.push(body + world);
            }
            blockers.push(Blocker::person(body));
        }

        // Velocities by central difference (smooth trajectories).
        let dt = 5e-3;
        let ahead = self.positions_raw(t + dt);
        let behind = self.positions_raw(t - dt);
        let tag_velocities = ahead
            .iter()
            .zip(&behind)
            .map(|(a, b)| (*a - *b) * (1.0 / (2.0 * dt)))
            .collect();

        SceneSnapshot {
            tag_positions,
            tag_velocities,
            blockers,
        }
    }

    /// Tag positions only (used for velocity differencing), with `t`
    /// already offset.
    fn positions_raw(&self, t: f64) -> Vec<Point2> {
        let n_persons = self.scenario.n_persons();
        let mut out = Vec::with_capacity(self.n_tags());
        for i in 0..n_persons {
            let prog = &self.scenario.programs[i];
            let vol = &self.volunteers[i];
            let anchor = self.placement + prog.anchor_offset;
            let body = prog.trajectory.position(anchor, t, vol);
            let (sx, sy) = vol.sway(t);
            let body = body + Vec2::new(sx, sy);
            let heading_angle = prog.trajectory.heading(t, vol).angle();
            for site in TagSite::ALL.iter().take(self.tags_per_person) {
                let rest = site.rest_offset() * vol.body_scale;
                let offset = rest + prog.script.offset(*site, t, vol);
                out.push(body + offset.rotated(heading_angle));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::catalog;

    fn volunteers(n: usize) -> Vec<Volunteer> {
        (0..n).map(Volunteer::preset).collect()
    }

    #[test]
    fn snapshot_shape_matches_configuration() {
        for n_persons in 1..=3 {
            for tags in 1..=3 {
                let cat = catalog(n_persons);
                let scene = ActivityScene::new(&cat[0], &volunteers(3), tags, 1);
                let snap = scene.snapshot(0.5);
                assert_eq!(snap.tag_positions.len(), n_persons * tags);
                assert_eq!(snap.tag_velocities.len(), n_persons * tags);
                assert_eq!(snap.blockers.len(), n_persons);
            }
        }
    }

    #[test]
    fn snapshots_are_deterministic() {
        let cat = catalog(2);
        let s1 = ActivityScene::new(&cat[3], &volunteers(2), 3, 7);
        let s2 = ActivityScene::new(&cat[3], &volunteers(2), 3, 7);
        assert_eq!(s1.snapshot(1.23), s2.snapshot(1.23));
    }

    #[test]
    fn different_seeds_shift_time_offset() {
        let cat = catalog(2);
        let s1 = ActivityScene::new(&cat[0], &volunteers(2), 3, 1);
        let s2 = ActivityScene::new(&cat[0], &volunteers(2), 3, 2);
        assert_ne!(s1.time_offset, s2.time_offset);
        assert_ne!(s1.snapshot(1.0), s2.snapshot(1.0));
    }

    #[test]
    fn tags_stay_near_their_person() {
        let cat = catalog(2);
        let scene = ActivityScene::new(&cat[0], &volunteers(2), 3, 3);
        for i in 0..40 {
            let t = i as f64 * 0.25;
            let snap = scene.snapshot(t);
            for (tag_idx, pos) in snap.tag_positions.iter().enumerate() {
                let person = tag_idx / 3;
                let body = snap.blockers[person].center;
                assert!(
                    pos.distance(body) < 1.2,
                    "tag {tag_idx} strayed {} m at t={t}",
                    pos.distance(body)
                );
            }
        }
    }

    #[test]
    fn motion_is_continuous() {
        let cat = catalog(2);
        for scenario in &cat {
            let scene = ActivityScene::new(scenario, &volunteers(2), 3, 5);
            let mut prev = scene.snapshot(0.0);
            for i in 1..60 {
                let t = i as f64 * 0.05;
                let snap = scene.snapshot(t);
                for (a, b) in snap.tag_positions.iter().zip(&prev.tag_positions) {
                    assert!(
                        a.distance(*b) < 0.35,
                        "{}: jump of {} m at t={t}",
                        scenario.id,
                        a.distance(*b)
                    );
                }
                prev = snap;
            }
        }
    }

    #[test]
    fn velocities_match_finite_difference() {
        let cat = catalog(2);
        let scene = ActivityScene::new(&cat[0], &volunteers(2), 3, 9);
        let t = 1.0;
        let dt = 1e-3;
        let a = scene.snapshot(t - dt);
        let b = scene.snapshot(t + dt);
        let snap = scene.snapshot(t);
        for k in 0..snap.tag_positions.len() {
            let fd = (b.tag_positions[k] - a.tag_positions[k]) * (1.0 / (2.0 * dt));
            let v = snap.tag_velocities[k];
            assert!(
                (fd - v).length() < 0.2,
                "tag {k}: fd {:?} vs reported {:?}",
                fd,
                v
            );
        }
    }

    #[test]
    fn activities_produce_distinct_trajectories() {
        // Different classes must differ somewhere in tag space.
        let cat = catalog(2);
        let scenes: Vec<ActivityScene> = cat
            .iter()
            .map(|s| {
                let mut scene = ActivityScene::new(s, &volunteers(2), 3, 11);
                scene.time_offset = 0.0; // align for comparison
                scene
            })
            .collect();
        for i in 0..scenes.len() {
            for j in (i + 1)..scenes.len() {
                let mut max_gap: f64 = 0.0;
                for k in 0..40 {
                    let t = k as f64 * 0.2;
                    let a = scenes[i].snapshot(t);
                    let b = scenes[j].snapshot(t);
                    for (pa, pb) in a.tag_positions.iter().zip(&b.tag_positions) {
                        max_gap = max_gap.max(pa.distance(*pb));
                    }
                }
                assert!(
                    max_gap > 0.05,
                    "classes {} and {} indistinguishable",
                    cat[i].id,
                    cat[j].id
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "volunteer")]
    fn too_few_volunteers_panics() {
        let cat = catalog(2);
        ActivityScene::new(&cat[0], &volunteers(1), 3, 0);
    }

    #[test]
    #[should_panic(expected = "tags_per_person")]
    fn zero_tags_panics() {
        let cat = catalog(1);
        ActivityScene::new(&cat[0], &volunteers(1), 0, 0);
    }
}
