//! Per-person variation: body scale, tempo, amplitude, smooth sway.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Physical and behavioural parameters of one test subject.
///
/// The paper recruited ten volunteers "varying in age, gender, height
/// and weight"; these parameters are the knobs through which that
/// variation reaches the RF signal: taller people wear tags higher and
/// farther apart, faster people complete gesture cycles sooner, and
/// everyone sways idiosyncratically while standing.
#[derive(Debug, Clone, PartialEq)]
pub struct Volunteer {
    /// Limb-length multiplier (≈ height / 1.7 m); affects tag offsets.
    pub body_scale: f64,
    /// Gesture tempo multiplier (1.0 = nominal).
    pub tempo: f64,
    /// Gesture amplitude multiplier.
    pub amplitude: f64,
    /// Standing-sway magnitude in metres.
    pub sway_m: f64,
    /// Seed for this volunteer's idiosyncratic sway phases.
    pub seed: u64,
}

impl Volunteer {
    /// Nominal adult with no idiosyncrasy.
    pub fn nominal() -> Self {
        Volunteer {
            body_scale: 1.0,
            tempo: 1.0,
            amplitude: 1.0,
            sway_m: 0.015,
            seed: 0,
        }
    }

    /// One of the ten repeatable volunteer profiles used across the
    /// experiments (index taken modulo 10).
    pub fn preset(index: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + (index % 10) as u64);
        Volunteer {
            body_scale: rng.gen_range(0.88..1.12),
            tempo: rng.gen_range(0.8..1.25),
            amplitude: rng.gen_range(0.8..1.2),
            sway_m: rng.gen_range(0.008..0.03),
            seed: 0xB0D7 + index as u64,
        }
    }

    /// Smooth, deterministic 2-D sway displacement at time `t`.
    ///
    /// A sum of three incommensurate sinusoids per axis — band-limited
    /// like real postural sway, and reproducible (no RNG at sample
    /// time).
    pub fn sway(&self, t: f64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut axis = |t: f64| -> f64 {
            let mut v = 0.0;
            for (i, base_hz) in [0.23, 0.61, 1.13].iter().enumerate() {
                let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let f = base_hz * (1.0 + 0.1 * i as f64);
                v += (std::f64::consts::TAU * f * t + phase).sin() / (i + 1) as f64;
            }
            v / 1.83 // normalise the 1 + 1/2 + 1/3 envelope
        };
        (self.sway_m * axis(t), self.sway_m * axis(t + 37.0))
    }
}

impl Default for Volunteer {
    fn default() -> Self {
        Volunteer::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_deterministic_and_distinct() {
        let a = Volunteer::preset(3);
        let b = Volunteer::preset(3);
        assert_eq!(a, b);
        let c = Volunteer::preset(4);
        assert_ne!(a, c);
    }

    #[test]
    fn presets_wrap_mod_10() {
        // Parameters repeat mod 10 (seed differs, parameters equal).
        let a = Volunteer::preset(2);
        let b = Volunteer::preset(12);
        assert_eq!(a.body_scale, b.body_scale);
        assert_eq!(a.tempo, b.tempo);
    }

    #[test]
    fn sway_is_bounded_and_smooth() {
        let v = Volunteer::preset(0);
        let mut prev = v.sway(0.0);
        for i in 1..200 {
            let t = i as f64 * 0.05;
            let (x, y) = v.sway(t);
            assert!(x.abs() <= v.sway_m * 1.01, "sway x out of bounds");
            assert!(y.abs() <= v.sway_m * 1.01, "sway y out of bounds");
            // 50 ms steps move less than 20% of the amplitude.
            assert!((x - prev.0).abs() < v.sway_m * 0.5);
            prev = (x, y);
        }
    }

    #[test]
    fn sway_is_reproducible() {
        let v = Volunteer::preset(5);
        assert_eq!(v.sway(1.234), v.sway(1.234));
    }

    #[test]
    fn parameters_within_documented_ranges() {
        for i in 0..10 {
            let v = Volunteer::preset(i);
            assert!((0.88..1.12).contains(&v.body_scale));
            assert!((0.8..1.25).contains(&v.tempo));
            assert!((0.8..1.2).contains(&v.amplitude));
        }
    }
}
