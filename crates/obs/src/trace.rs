//! Per-frame causal tracing: deterministic trace/span IDs, head-based
//! sampling, per-thread span buffers, a per-shard flight recorder, and
//! a Chrome `trace_event` exporter.
//!
//! ## Identity
//!
//! Trace and span IDs are u64s minted from a seed-driven splitmix64
//! counter ([`seed_trace_ids`]) — no wall-clock identity anywhere, so
//! two runs with the same seed mint the same IDs in the same order.
//! Timestamps are microseconds on the process-local monotonic clock
//! ([`clock_us`]), the same clock the registry's span timers use.
//!
//! ## Sampling and bit-neutrality
//!
//! [`TraceConfig::sample_one_in_n`] gates everything at the *head*: an
//! unsampled [`TraceContext`] is [`TraceContext::NONE`] and every span
//! operation on it is a no-op — no allocation, no atomics, no clock
//! reads. `sample_one_in_n = 0` (the default) turns tracing off
//! entirely, exactly like [`crate::set_enabled`]: the only work left
//! on the frame path is one relaxed load. Nothing in the pipeline ever
//! reads a trace to make a decision, so tracing on or off is
//! bit-neutral to all outputs (pinned by `tests/trace_propagation.rs`).
//!
//! ## Collection
//!
//! Completed spans land in a per-thread buffer (no locks on record)
//! and are batch-flushed into a bounded global collector; overflow
//! drops spans and counts them in `m2ai_trace_dropped_total`. Spans
//! attributed to a shard are additionally mirrored into that shard's
//! bounded [flight-recorder ring](flightrec_dump), dumped as versioned
//! JSON on panic, quarantine, kill, or explicit request.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Schema tag carried by every flight-recorder dump.
pub const FLIGHTREC_SCHEMA: &str = "m2ai-flightrec-v1";

/// Spans retained per shard in the flight-recorder ring.
const FLIGHTREC_CAP: usize = 512;

/// Per-thread buffer length that triggers a flush into the collector.
const LOCAL_FLUSH: usize = 64;

/// Default bound on the global span collector.
const DEFAULT_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------
// Clock and identity
// ---------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the first use of the trace clock in this process
/// (monotonic; shared by every span and flight-recorder dump).
pub fn clock_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static SAMPLE_ONE_IN_N: AtomicU32 = AtomicU32::new(0);
static SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
static NEXT_ID: AtomicU64 = AtomicU64::new(0);
static ARRIVALS: AtomicU64 = AtomicU64::new(0);

/// Head-based sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sample one in every `n` new traces; `0` disables tracing
    /// entirely (the default), `1` samples everything.
    pub sample_one_in_n: u32,
}

/// Installs the sampling configuration process-wide.
pub fn set_trace_config(cfg: TraceConfig) {
    SAMPLE_ONE_IN_N.store(cfg.sample_one_in_n, Ordering::Relaxed);
}

/// The sampling configuration currently in effect.
pub fn trace_config() -> TraceConfig {
    TraceConfig {
        sample_one_in_n: SAMPLE_ONE_IN_N.load(Ordering::Relaxed),
    }
}

/// Re-seeds the deterministic ID mint and resets the arrival counter,
/// so a fresh run mints a reproducible ID sequence.
pub fn seed_trace_ids(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
    NEXT_ID.store(0, Ordering::Relaxed);
    ARRIVALS.store(0, Ordering::Relaxed);
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mints one non-zero u64 ID from the seed-driven counter.
fn mint_id() -> u64 {
    let c = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(SEED.load(Ordering::Relaxed).wrapping_add(c));
    if id == 0 {
        1
    } else {
        id
    }
}

// ---------------------------------------------------------------------
// Context and spans
// ---------------------------------------------------------------------

/// Propagated trace identity: which trace a frame belongs to and which
/// span is its current parent. `Copy` and 16 bytes, so it rides on
/// frames, queue commands and checkpoints for free.
///
/// [`TraceContext::NONE`] (the `Default`) marks an unsampled frame:
/// every span operation on it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// The trace this frame belongs to (`0` = unsampled).
    pub trace_id: u64,
    /// The span that should parent the next child (`0` = root).
    pub span_id: u64,
}

impl TraceContext {
    /// The unsampled context: all span operations are no-ops.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this frame was head-sampled into a trace.
    #[inline]
    pub fn is_sampled(self) -> bool {
        self.trace_id != 0
    }

    /// Starts a child span now (no-op span when unsampled).
    #[inline]
    pub fn child(self, name: &'static str) -> Span {
        self.child_at(name, if self.is_sampled() { clock_us() } else { 0 })
    }

    /// Starts a child span with an explicit start timestamp — for
    /// callers that measured a region themselves (e.g. one batched
    /// model step attributed to every row of the batch).
    pub fn child_at(self, name: &'static str, start_us: u64) -> Span {
        if !self.is_sampled() {
            return Span { rec: None };
        }
        Span {
            rec: Some(SpanRecord {
                trace_id: self.trace_id,
                span_id: mint_id(),
                parent_id: self.span_id,
                name,
                status: SpanStatus::Ok,
                start_us,
                end_us: 0,
                shard: thread_shard(),
                session: -1,
                time_s: f64::NAN,
            }),
        }
    }
}

/// Why a span ended. Everything except `Ok` is an *annotated
/// termination* — the reasons a frame can leave the pipeline without
/// producing a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// Completed normally.
    Ok,
    /// Dropped by backpressure (ingress queue or engine queue full).
    Shed,
    /// The session was quarantined as a poison source.
    Quarantined,
    /// The target shard was down or permanently dead.
    ShardDown,
    /// The engine panicked while this frame was in flight.
    Panicked,
    /// The stream went stale; the window was suppressed.
    Stale,
    /// The prediction was gated (non-finite or low confidence).
    Suppressed,
    /// Lost in-flight when a stalled worker's queue was abandoned.
    Lost,
}

impl SpanStatus {
    /// Stable lowercase label (used in dumps and exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Shed => "shed",
            SpanStatus::Quarantined => "quarantined",
            SpanStatus::ShardDown => "shard_down",
            SpanStatus::Panicked => "panicked",
            SpanStatus::Stale => "stale",
            SpanStatus::Suppressed => "suppressed",
            SpanStatus::Lost => "lost",
        }
    }
}

/// One completed span, as stored by the collector and the flight
/// recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's ID.
    pub span_id: u64,
    /// Parent span ID (`0` = root of the trace).
    pub parent_id: u64,
    /// Stage name (`'static`, allocation-free).
    pub name: &'static str,
    /// How the span ended.
    pub status: SpanStatus,
    /// Start, microseconds on the trace clock.
    pub start_us: u64,
    /// End, microseconds on the trace clock.
    pub end_us: u64,
    /// Shard attribution (`-1` = none).
    pub shard: i64,
    /// Session attribution (`-1` = none).
    pub session: i64,
    /// Frame-window end time the span is about (`NaN` = none).
    pub time_s: f64,
}

/// A live span. Ends (and records) on [`Span::end`], [`Span::end_with`]
/// or drop; a span started from an unsampled context holds nothing.
#[derive(Debug)]
#[must_use = "a span records when ended or dropped"]
pub struct Span {
    rec: Option<SpanRecord>,
}

impl Span {
    /// The context children of this span should use (propagates the
    /// trace across threads); [`TraceContext::NONE`] when unsampled.
    pub fn ctx(&self) -> TraceContext {
        self.rec
            .as_ref()
            .map(|r| TraceContext {
                trace_id: r.trace_id,
                span_id: r.span_id,
            })
            .unwrap_or(TraceContext::NONE)
    }

    /// Whether this span will record anything.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Attributes the span to a session.
    pub fn set_session(&mut self, session: u64) {
        if let Some(r) = self.rec.as_mut() {
            r.session = session as i64;
        }
    }

    /// Attributes the span to a shard.
    pub fn set_shard(&mut self, shard: usize) {
        if let Some(r) = self.rec.as_mut() {
            r.shard = shard as i64;
        }
    }

    /// Attaches the frame-window end time the span is about.
    pub fn set_time_s(&mut self, time_s: f64) {
        if let Some(r) = self.rec.as_mut() {
            r.time_s = time_s;
        }
    }

    /// Ends the span now with status `Ok`.
    pub fn end(self) -> Option<SpanRecord> {
        self.end_with(SpanStatus::Ok)
    }

    /// Ends the span now with an explicit status (annotated
    /// termination). Returns the record (also submitted to the
    /// collector) so callers can mirror it elsewhere.
    pub fn end_with(self, status: SpanStatus) -> Option<SpanRecord> {
        self.end_at(clock_us(), status)
    }

    /// Ends the span at an explicit timestamp — the counterpart of
    /// [`TraceContext::child_at`].
    pub fn end_at(mut self, end_us: u64, status: SpanStatus) -> Option<SpanRecord> {
        let mut rec = self.rec.take()?;
        rec.status = status;
        rec.end_us = end_us.max(rec.start_us);
        record(rec.clone());
        Some(rec)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut rec) = self.rec.take() {
            rec.end_us = clock_us().max(rec.start_us);
            record(rec);
        }
    }
}

/// Head-samples a new trace: returns a sampled root context for one in
/// every `sample_one_in_n` calls, [`TraceContext::NONE`] otherwise.
/// With sampling off (`0`) — or the registry disabled — the fast path
/// is a single relaxed load.
#[inline]
pub fn begin_trace() -> TraceContext {
    let n = SAMPLE_ONE_IN_N.load(Ordering::Relaxed);
    if n == 0 || !crate::enabled() {
        return TraceContext::NONE;
    }
    let k = ARRIVALS.fetch_add(1, Ordering::Relaxed);
    if !k.is_multiple_of(n as u64) {
        return TraceContext::NONE;
    }
    TraceContext {
        trace_id: mint_id(),
        span_id: 0,
    }
}

// ---------------------------------------------------------------------
// Ambient context
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

struct CurrentGuard {
    prev: TraceContext,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Runs `f` with `ctx` as the thread's ambient context (restored on
/// exit, panic included) — lets deep callees ([`span`]) attach to the
/// frame's trace without threading a parameter through every layer.
pub fn with_current<R>(ctx: TraceContext, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.replace(ctx));
    let _guard = CurrentGuard { prev };
    f()
}

/// The thread's ambient context ([`TraceContext::NONE`] outside
/// [`with_current`]).
pub fn current() -> TraceContext {
    CURRENT.with(|c| c.get())
}

/// Starts a child of the ambient context (no-op span when none).
pub fn span(name: &'static str) -> Span {
    current().child(name)
}

// ---------------------------------------------------------------------
// Thread shard attribution
// ---------------------------------------------------------------------

thread_local! {
    static THREAD_SHARD: Cell<i64> = const { Cell::new(-1) };
}

/// Declares which shard this thread works for: spans recorded on the
/// thread inherit the attribution (and feed that shard's flight
/// recorder) unless overridden per span.
pub fn set_thread_shard(shard: Option<usize>) {
    THREAD_SHARD.with(|s| s.set(shard.map_or(-1, |v| v as i64)));
}

fn thread_shard() -> i64 {
    THREAD_SHARD.with(|s| s.get())
}

// ---------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

fn collector() -> MutexGuard<'static, Vec<SpanRecord>> {
    static C: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

struct TraceCounters {
    spans: crate::Counter,
    dropped: crate::Counter,
    dumps: crate::Counter,
}

fn trace_counters() -> &'static TraceCounters {
    static C: OnceLock<TraceCounters> = OnceLock::new();
    C.get_or_init(|| TraceCounters {
        spans: crate::counter(
            "m2ai_trace_spans_total",
            "spans recorded by the tracing subsystem",
            &[],
        ),
        dropped: crate::counter(
            "m2ai_trace_dropped_total",
            "spans dropped by the bounded trace collector",
            &[],
        ),
        dumps: crate::counter(
            "m2ai_flightrec_dumps_total",
            "flight-recorder dumps (panic, quarantine, kill, explicit)",
            &[],
        ),
    })
}

fn record(rec: SpanRecord) {
    trace_counters().spans.inc();
    flightrec_feed(&rec);
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.push(rec);
        if l.len() >= LOCAL_FLUSH {
            flush_into_collector(&mut l);
        }
    });
}

fn flush_into_collector(local: &mut Vec<SpanRecord>) {
    if local.is_empty() {
        return;
    }
    let cap = CAPACITY.load(Ordering::Relaxed);
    let mut g = collector();
    let mut dropped = 0u64;
    for rec in local.drain(..) {
        if g.len() >= cap {
            dropped += 1;
        } else {
            g.push(rec);
        }
    }
    drop(g);
    trace_counters().dropped.add(dropped);
}

/// Flushes this thread's span buffer into the global collector. Worker
/// loops call it once per scheduling round; call it before
/// [`take_spans`] on any thread that recorded.
pub fn flush_thread_spans() {
    LOCAL.with(|l| flush_into_collector(&mut l.borrow_mut()));
}

/// Drains the global collector (flushing this thread's buffer first).
pub fn take_spans() -> Vec<SpanRecord> {
    flush_thread_spans();
    std::mem::take(&mut *collector())
}

/// Bounds the global span collector (existing overflow is kept; new
/// spans past the bound are dropped and counted).
pub fn set_trace_capacity(n: usize) {
    CAPACITY.store(n.max(1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

fn flightrec_rings() -> MutexGuard<'static, Vec<VecDeque<SpanRecord>>> {
    static R: OnceLock<Mutex<Vec<VecDeque<SpanRecord>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn flightrec_dir() -> MutexGuard<'static, Option<PathBuf>> {
    static D: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    D.get_or_init(|| Mutex::new(None))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn flightrec_feed(rec: &SpanRecord) {
    if rec.shard < 0 {
        return;
    }
    let idx = rec.shard as usize;
    let mut rings = flightrec_rings();
    if idx >= rings.len() {
        rings.resize_with(idx + 1, VecDeque::new);
    }
    let ring = &mut rings[idx];
    if ring.len() == FLIGHTREC_CAP {
        ring.pop_front();
    }
    ring.push_back(rec.clone());
}

/// Directs flight-recorder dumps to `dir` (`None` keeps dumps
/// in-memory only: the JSON is still rendered and returned, and the
/// dump counter still advances).
pub fn set_flightrec_dir(dir: Option<PathBuf>) {
    *flightrec_dir() = dir;
}

fn push_hex(out: &mut String, v: u64) {
    out.push_str(&format!("\"0x{v:016x}\""));
}

fn span_json(out: &mut String, r: &SpanRecord) {
    out.push_str("{\"trace_id\":");
    push_hex(out, r.trace_id);
    out.push_str(",\"span_id\":");
    push_hex(out, r.span_id);
    out.push_str(",\"parent_id\":");
    push_hex(out, r.parent_id);
    out.push_str(&format!(
        ",\"name\":\"{}\",\"status\":\"{}\",\"start_us\":{},\"end_us\":{},\"shard\":{},\"session\":{},\"time_s\":{}}}",
        r.name,
        r.status.as_str(),
        r.start_us,
        r.end_us,
        r.shard,
        r.session,
        if r.time_s.is_finite() {
            format!("{:?}", r.time_s)
        } else {
            "null".to_string()
        },
    ));
}

/// Dumps shard `shard`'s flight-recorder ring as versioned JSON
/// ([`FLIGHTREC_SCHEMA`]): the last N span trees that touched the
/// shard, newest last. When a dump directory is configured
/// ([`set_flightrec_dir`]) the document is also written to
/// `flightrec-shard<k>-<seq>.json` there. Always advances
/// `m2ai_flightrec_dumps_total` and returns the document.
pub fn flightrec_dump(shard: usize, reason: &str) -> String {
    let spans: Vec<SpanRecord> = {
        let rings = flightrec_rings();
        rings
            .get(shard)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    };
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{FLIGHTREC_SCHEMA}\",\n"));
    let reason_escaped: String = reason
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
        .collect();
    out.push_str(&format!("  \"reason\": \"{reason_escaped}\",\n"));
    out.push_str(&format!("  \"shard\": {shard},\n"));
    out.push_str(&format!("  \"dumped_at_us\": {},\n", clock_us()));
    out.push_str(&format!("  \"traces\": {},\n", traces.len()));
    out.push_str("  \"spans\": [");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        span_json(&mut out, s);
    }
    if !spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    trace_counters().dumps.inc();
    let dir = flightrec_dir().clone();
    if let Some(dir) = dir {
        let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flightrec-shard{shard}-{seq}.json"));
        // Best-effort: a dump must never take the pipeline down.
        let _ = std::fs::write(path, &out);
    }
    out
}

/// Lints a flight-recorder dump: schema tag, required top-level keys,
/// and per-span required keys. Returns one message per violation.
pub fn validate_flightrec_json(doc: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !doc.contains(&format!("\"schema\": \"{FLIGHTREC_SCHEMA}\"")) {
        errs.push(format!("missing schema tag {FLIGHTREC_SCHEMA:?}"));
    }
    for key in [
        "\"reason\":",
        "\"shard\":",
        "\"dumped_at_us\":",
        "\"spans\":",
    ] {
        if !doc.contains(key) {
            errs.push(format!("missing top-level key {key}"));
        }
    }
    let trimmed = doc.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        errs.push("document is not one JSON object".to_string());
    }
    let spans = doc.matches("\"trace_id\":").count();
    for key in [
        "\"span_id\":",
        "\"parent_id\":",
        "\"name\":",
        "\"status\":",
        "\"start_us\":",
        "\"end_us\":",
    ] {
        let n = doc.matches(key).count();
        if n != spans {
            errs.push(format!("{key} appears {n} times for {spans} spans"));
        }
    }
    errs
}

// ---------------------------------------------------------------------
// Exemplars
// ---------------------------------------------------------------------

/// One sampled observation linked to the trace that produced it, so a
/// histogram's tail stops being anonymous: bench reports can say which
/// session on which shard produced the p99 and pull its span tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Histogram family the observation went to.
    pub metric: &'static str,
    /// The observed value.
    pub value: f64,
    /// Trace that produced it.
    pub trace_id: u64,
    /// Session attribution (`-1` = none).
    pub session: i64,
    /// Shard attribution (`-1` = none).
    pub shard: i64,
}

/// Retained exemplars (oldest evicted beyond this).
const EXEMPLAR_CAP: usize = 512;

fn exemplar_store() -> MutexGuard<'static, VecDeque<Exemplar>> {
    static E: OnceLock<Mutex<VecDeque<Exemplar>>> = OnceLock::new();
    E.get_or_init(|| Mutex::new(VecDeque::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Records an exemplar for a sampled frame (no-op when `ctx` is
/// unsampled — exemplars exist only where a trace can be pulled up).
pub fn record_exemplar(
    metric: &'static str,
    value: f64,
    ctx: TraceContext,
    session: i64,
    shard: i64,
) {
    if !ctx.is_sampled() {
        return;
    }
    let mut store = exemplar_store();
    if store.len() == EXEMPLAR_CAP {
        store.pop_front();
    }
    store.push_back(Exemplar {
        metric,
        value,
        trace_id: ctx.trace_id,
        session,
        shard,
    });
}

/// All retained exemplars, oldest first.
pub fn exemplars() -> Vec<Exemplar> {
    exemplar_store().iter().copied().collect()
}

/// The worst (largest-value) retained exemplar for one metric family —
/// the trace to pull when explaining a p99.
pub fn max_exemplar(metric: &str) -> Option<Exemplar> {
    exemplar_store()
        .iter()
        .filter(|e| e.metric == metric)
        .copied()
        .fold(None, |acc: Option<Exemplar>, e| match acc {
            Some(a) if a.value >= e.value => Some(a),
            _ => Some(e),
        })
}

/// Clears the exemplar store (bench runs isolate their windows).
pub fn clear_exemplars() {
    exemplar_store().clear();
}

// ---------------------------------------------------------------------
// Chrome trace_event exporter
// ---------------------------------------------------------------------

/// Renders spans in the Chrome `trace_event` JSON format (complete
/// `"X"` events, microsecond timestamps), loadable in
/// `chrome://tracing` and Perfetto. `tid` is the shard (+1; tid 0 is
/// the unattributed lane), so each shard renders as its own track.
pub fn render_trace_events(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = if s.shard >= 0 { s.shard + 1 } else { 0 };
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"m2ai\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}," ,
            s.name,
            s.start_us,
            s.end_us.saturating_sub(s.start_us).max(1),
            tid,
        ));
        out.push_str("\"args\":{\"trace_id\":");
        push_hex(&mut out, s.trace_id);
        out.push_str(",\"span_id\":");
        push_hex(&mut out, s.span_id);
        out.push_str(",\"parent_id\":");
        push_hex(&mut out, s.parent_id);
        out.push_str(&format!(
            ",\"status\":\"{}\",\"session\":{},\"shard\":{}}}}}",
            s.status.as_str(),
            s.session,
            s.shard,
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the process-global sampling state.
    fn trace_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sampling_off_mints_nothing() {
        let _g = trace_lock();
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        let ctx = begin_trace();
        assert_eq!(ctx, TraceContext::NONE);
        assert!(!ctx.is_sampled());
        let span = ctx.child("noop");
        assert!(!span.is_recording());
        assert!(span.end().is_none());
    }

    #[test]
    fn one_in_n_samples_every_nth() {
        let _g = trace_lock();
        seed_trace_ids(7);
        set_trace_config(TraceConfig { sample_one_in_n: 4 });
        let sampled: Vec<bool> = (0..12).map(|_| begin_trace().is_sampled()).collect();
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        assert_eq!(sampled.iter().filter(|&&s| s).count(), 3);
        assert!(sampled[0], "head sampling starts with the first arrival");
    }

    #[test]
    fn ids_are_deterministic_under_a_seed() {
        let _g = trace_lock();
        set_trace_config(TraceConfig { sample_one_in_n: 1 });
        seed_trace_ids(42);
        let a: Vec<u64> = (0..4).map(|_| begin_trace().trace_id).collect();
        seed_trace_ids(42);
        let b: Vec<u64> = (0..4).map(|_| begin_trace().trace_id).collect();
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        assert_eq!(a, b);
        assert!(a.iter().all(|&id| id != 0));
        assert_eq!(
            a.iter().collect::<std::collections::BTreeSet<_>>().len(),
            4,
            "ids must be distinct"
        );
    }

    #[test]
    fn spans_link_parents_and_reach_the_collector() {
        let _g = trace_lock();
        let _spans = take_spans();
        set_trace_config(TraceConfig { sample_one_in_n: 1 });
        seed_trace_ids(11);
        let root_ctx = begin_trace();
        let mut root = root_ctx.child("ingress");
        root.set_session(3);
        root.set_shard(1);
        let child = root.ctx().child("infer");
        let child_rec = child.end().expect("sampled span records");
        let root_rec = root.end().expect("sampled span records");
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        assert_eq!(child_rec.parent_id, root_rec.span_id);
        assert_eq!(child_rec.trace_id, root_rec.trace_id);
        assert_eq!(root_rec.parent_id, 0);
        assert_eq!(root_rec.session, 3);
        assert_eq!(root_rec.shard, 1);
        // Compare by span ID: `time_s` is NaN on these records, so
        // whole-record equality would be vacuously false.
        let collected = take_spans();
        assert!(collected.iter().any(|r| r.span_id == child_rec.span_id));
        assert!(collected.iter().any(|r| r.span_id == root_rec.span_id));
    }

    #[test]
    fn bounded_collector_drops_and_counts() {
        let _g = trace_lock();
        let _spans = take_spans();
        set_trace_config(TraceConfig { sample_one_in_n: 1 });
        seed_trace_ids(5);
        set_trace_capacity(4);
        let dropped_before = trace_counters().dropped.get();
        for _ in 0..3 * LOCAL_FLUSH {
            let ctx = begin_trace();
            ctx.child("flood").end();
        }
        flush_thread_spans();
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        set_trace_capacity(DEFAULT_CAPACITY);
        let kept = take_spans();
        assert!(kept.len() <= 4, "collector must stay bounded");
        assert!(
            trace_counters().dropped.get() > dropped_before,
            "overflow must be counted"
        );
    }

    #[test]
    fn flight_recorder_dumps_validate() {
        let _g = trace_lock();
        set_trace_config(TraceConfig { sample_one_in_n: 1 });
        seed_trace_ids(9);
        let ctx = begin_trace();
        let mut span = ctx.child("tick");
        span.set_shard(2);
        span.set_session(8);
        span.set_time_s(1.5);
        span.end_with(SpanStatus::Quarantined);
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        let _spans = take_spans();
        let doc = flightrec_dump(2, "unit-test");
        let errs = validate_flightrec_json(&doc);
        assert!(errs.is_empty(), "flightrec lint: {errs:?}");
        assert!(doc.contains("\"status\":\"quarantined\""));
        assert!(doc.contains("\"session\":8"));
        let empty = flightrec_dump(777, "no-such-shard");
        assert!(validate_flightrec_json(&empty).is_empty());
        assert!(empty.contains("\"spans\": []"));
    }

    #[test]
    fn chrome_export_renders_complete_events() {
        let rec = SpanRecord {
            trace_id: 0xABC,
            span_id: 2,
            parent_id: 1,
            name: "emit",
            status: SpanStatus::Ok,
            start_us: 10,
            end_us: 25,
            shard: 0,
            session: 4,
            time_s: 2.0,
        };
        let doc = render_trace_events(&[rec]);
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":10"));
        assert!(doc.contains("\"dur\":15"));
        assert!(doc.contains("\"tid\":1"));
        let empty = render_trace_events(&[]);
        assert!(empty.contains("\"traceEvents\":[\n]"));
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        let _g = trace_lock();
        set_trace_config(TraceConfig { sample_one_in_n: 1 });
        seed_trace_ids(21);
        let ctx = begin_trace();
        assert_eq!(current(), TraceContext::NONE);
        with_current(ctx, || {
            assert_eq!(current(), ctx);
            let sp = span("deep");
            assert!(sp.is_recording());
            assert_eq!(sp.ctx().trace_id, ctx.trace_id);
            sp.end();
        });
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        assert_eq!(current(), TraceContext::NONE);
        assert!(!span("outside").is_recording());
        let _spans = take_spans();
    }

    #[test]
    fn exemplars_keep_the_worst_per_metric() {
        let _g = trace_lock();
        clear_exemplars();
        set_trace_config(TraceConfig { sample_one_in_n: 1 });
        seed_trace_ids(31);
        let a = begin_trace();
        let b = begin_trace();
        record_exemplar("test_trace_lat_seconds", 0.002, a, 7, 0);
        record_exemplar("test_trace_lat_seconds", 0.050, b, 9, 1);
        record_exemplar("test_trace_lat_seconds", 0.001, TraceContext::NONE, 1, 0);
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        let worst = max_exemplar("test_trace_lat_seconds").expect("exemplar retained");
        assert_eq!(worst.session, 9);
        assert_eq!(worst.shard, 1);
        assert_eq!(worst.trace_id, b.trace_id);
        assert_eq!(exemplars().len(), 2, "unsampled exemplar must be dropped");
        clear_exemplars();
    }

    #[test]
    fn unsampled_context_costs_no_ids() {
        let _g = trace_lock();
        set_trace_config(TraceConfig { sample_one_in_n: 0 });
        seed_trace_ids(13);
        let before = NEXT_ID.load(Ordering::Relaxed);
        for _ in 0..100 {
            let ctx = begin_trace();
            let span = ctx.child("hot");
            drop(span);
        }
        assert_eq!(
            NEXT_ID.load(Ordering::Relaxed),
            before,
            "sampling off must not touch the mint"
        );
    }
}
