//! Zero-dependency observability for the M²AI pipeline.
//!
//! A process-wide metrics registry — atomic counters, gauges and
//! fixed-bucket latency histograms with p50/p95/p99 extraction — plus
//! lightweight scoped-span timers, all plain `std`. The read → extract
//! → serve pipeline records into it from every crate in the workspace;
//! the [`export`] module renders the whole registry as a versioned
//! JSON snapshot or Prometheus text exposition.
//!
//! ## Bit-exactness contract
//!
//! Instrumentation must never perturb the pipeline's outputs. The
//! design enforces that structurally:
//!
//! * no RNG anywhere — every primitive is a relaxed atomic;
//! * recording never feeds back into computation — handles are
//!   write-mostly, and nothing in the workspace reads a metric to make
//!   a decision;
//! * no allocation on the hot path after warmup — call sites cache
//!   their handles in `OnceLock` statics and labels are `'static`, so
//!   a record is a few atomic RMWs (plus two `Instant` reads for a
//!   span);
//! * the whole layer is switchable: [`set_enabled`]`(false)` turns
//!   every record into a load-and-branch at runtime, and the `noop`
//!   cargo feature compiles recording out entirely.
//!
//! `tests/determinism.rs` at the workspace root asserts the contract:
//! dataset generation and inference are bit-identical with
//! instrumentation fully enabled and fully disabled.
//!
//! ## Naming scheme
//!
//! `m2ai_<crate-or-stage>_<what>[_total|_seconds]`, with fixed
//! `'static` label sets for the low-cardinality dimensions (fault
//! kind, extraction stage, kernel backend, session outcome, health
//! transition). See DESIGN.md § Observability for the full inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod family;
pub mod slo;
pub mod trace;

pub use family::{CounterFamily, HistogramFamily};
pub use slo::{BurnWindow, SloMonitor, SloSpec, SloVerdict};
pub use trace::{SpanRecord, SpanStatus, TraceConfig, TraceContext};

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A fixed, `'static` set of label key/value pairs.
///
/// Keeping labels `'static` is what makes recording allocation-free:
/// a handle is resolved once per call site and the registry never has
/// to own or hash dynamic strings on the hot path.
pub type LabelSet = &'static [(&'static str, &'static str)];

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation is currently recording.
///
/// Always `false` when the `noop` cargo feature is active.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide (default: on).
///
/// Disabling does not clear anything — counts accumulated so far stay
/// visible to the exporters; see [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// What a registry entry measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Point-in-time signed level (queue depth, active backend).
    Gauge,
    /// Fixed-bucket distribution (latencies, batch sizes, ratios).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct CounterCore {
    value: AtomicU64,
}

/// Monotone event counter. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() && n != 0 {
            self.core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeCore {
    value: AtomicI64,
}

/// Point-in-time level. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.core.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() && delta != 0 {
            self.core.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Ascending finite upper bounds; an implicit +Inf bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` per-bucket counts (last = overflow).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ observed values, stored as `f64::to_bits` and updated by CAS.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn add_sum(&self, v: f64) {
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Fixed-bucket distribution. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation. Non-finite values are dropped (they
    /// carry no bucket and would poison the sum).
    #[inline]
    pub fn observe(&self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Records `n` observations of the same value — the batched-tick
    /// idiom (per-prediction latency = tick time / batch, once per
    /// row).
    pub fn observe_n(&self, v: f64, n: u64) {
        if !enabled() || n == 0 || !v.is_finite() {
            return;
        }
        let idx = self.core.bounds.partition_point(|b| v > *b);
        self.core.buckets[idx].fetch_add(n, Ordering::Relaxed);
        self.core.count.fetch_add(n, Ordering::Relaxed);
        self.core.add_sum(v * n as f64);
    }

    /// Starts a scoped timer that records elapsed seconds into this
    /// histogram when dropped. When instrumentation is disabled the
    /// guard holds nothing and the clock is never read.
    #[inline]
    pub fn time(&self) -> SpanGuard {
        SpanGuard {
            live: enabled().then(|| (self.clone(), Instant::now())),
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// A consistent point-in-time copy of the bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.core.bounds.clone(),
            buckets: self
                .core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Quantile estimate over everything observed so far; see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> Quantile {
        self.snapshot().quantile(q)
    }
}

/// Scoped span timer: records elapsed wall time (seconds) into its
/// histogram on drop.
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(Histogram, Instant)>,
}

impl SpanGuard {
    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.live.take() {
            hist.observe(start.elapsed().as_secs_f64());
        }
    }
}

/// Plain-data copy of a histogram's state, used for quantile
/// extraction and for windowing measurements via [`Self::delta`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending finite upper bounds (the +Inf bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Observations added since `earlier` (which must come from the
    /// same histogram, i.e. share bounds).
    ///
    /// # Panics
    ///
    /// Panics on mismatched bounds.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.bounds, earlier.bounds, "snapshot bounds mismatch");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
        }
    }

    /// Quantile estimate by linear interpolation inside the bucket the
    /// rank falls into (the Prometheus `histogram_quantile` rule).
    /// When the rank lands in the overflow bucket there is no finite
    /// upper edge: the result carries the largest finite bound but is
    /// tagged [`Quantile::saturated`] so callers report "≥ bound"
    /// instead of a misleadingly precise number. `NaN` (unsaturated)
    /// when empty.
    pub fn quantile(&self, q: f64) -> Quantile {
        if self.count == 0 {
            return Quantile {
                value: f64::NAN,
                saturated: false,
            };
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if next as f64 >= target {
                if i == self.bounds.len() {
                    // Overflow bucket: no finite upper edge.
                    return Quantile {
                        value: self.bounds.last().copied().unwrap_or(f64::NAN),
                        saturated: true,
                    };
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let into = (target - cum as f64) / n as f64;
                return Quantile {
                    value: lo + (hi - lo) * into.clamp(0.0, 1.0),
                    saturated: false,
                };
            }
            cum = next;
        }
        // Float-rounding fallthrough: rank past every bucket edge.
        Quantile {
            value: self.bounds.last().copied().unwrap_or(f64::NAN),
            saturated: true,
        }
    }

    /// Mean observed value (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A histogram quantile estimate tagged with whether the rank fell in
/// the overflow bucket.
///
/// A saturated quantile's `value` is the largest finite bound — a
/// *floor*, not an estimate — so gates and reports must treat it as
/// "≥ value" rather than comparing it like a measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantile {
    /// The estimate (largest finite bound when saturated; `NaN` when
    /// the histogram was empty).
    pub value: f64,
    /// `true` when the rank landed past the last finite bucket edge.
    pub saturated: bool,
}

/// Pools steady-state measurement windows from one histogram.
///
/// The benches measure in repeated passes, snapshotting a histogram
/// before and after each pass and keeping only the in-pass delta
/// ([`HistogramSnapshot::delta`]). Pooling those windows bucket-wise
/// used to be re-rolled per bench; `HistogramDelta` owns the pattern:
///
/// ```
/// # let h = m2ai_obs::histogram("example_delta_seconds", "t", &[], &m2ai_obs::latency_buckets());
/// let mut pool = m2ai_obs::HistogramDelta::new();
/// for _ in 0..3 {
///     let before = h.snapshot();
///     h.observe(0.002); // one measured pass
///     pool.accumulate(&h.snapshot().delta(&before));
/// }
/// assert_eq!(pool.count(), 3);
/// let p99 = pool.quantile(0.99);
/// # assert!(!p99.saturated);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramDelta {
    pooled: Option<HistogramSnapshot>,
}

impl HistogramDelta {
    /// An empty pool.
    pub fn new() -> Self {
        HistogramDelta::default()
    }

    /// Adds one measurement window (bucket-wise sum).
    ///
    /// # Panics
    ///
    /// Panics if `window`'s bounds differ from earlier windows'.
    pub fn accumulate(&mut self, window: &HistogramSnapshot) {
        match self.pooled.as_mut() {
            None => self.pooled = Some(window.clone()),
            Some(acc) => {
                assert_eq!(acc.bounds, window.bounds, "pooled bounds mismatch");
                for (a, b) in acc.buckets.iter_mut().zip(&window.buckets) {
                    *a += b;
                }
                acc.count += window.count;
                acc.sum += window.sum;
            }
        }
    }

    /// The pooled snapshot (`None` before any window was added).
    pub fn snapshot(&self) -> Option<&HistogramSnapshot> {
        self.pooled.as_ref()
    }

    /// Total observations across all pooled windows.
    pub fn count(&self) -> u64 {
        self.pooled.as_ref().map_or(0, |p| p.count)
    }

    /// Quantile over the pooled windows (`NaN` when empty).
    pub fn quantile(&self, q: f64) -> Quantile {
        match self.pooled.as_ref() {
            Some(p) => p.quantile(q),
            None => Quantile {
                value: f64::NAN,
                saturated: false,
            },
        }
    }

    /// Mean over the pooled windows (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.pooled.as_ref().map_or(f64::NAN, |p| p.mean())
    }
}

// ---------------------------------------------------------------------
// Bucket presets
// ---------------------------------------------------------------------

/// Log-spaced latency bounds in seconds: 1 µs → ~11 s in ×√2 steps.
/// Fine enough that interpolated p50/p99 move smoothly; coarse enough
/// that a histogram stays a few hundred bytes.
pub fn latency_buckets() -> Vec<f64> {
    (0..48).map(|i| 1e-6 * 2f64.powf(i as f64 / 2.0)).collect()
}

/// Batch-size bounds for micro-batch ticks (1 … 128 sessions).
pub fn batch_buckets() -> Vec<f64> {
    [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128]
        .iter()
        .map(|&v| v as f64)
        .collect()
}

/// Linear bounds over `[0, 1]` for ratios such as frame coverage.
pub fn ratio_buckets() -> Vec<f64> {
    (0..=20).map(|k| k as f64 * 0.05).collect()
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    pub(crate) labels: LabelSet,
    handle: MetricHandle,
}

impl Entry {
    pub(crate) fn kind(&self) -> MetricKind {
        match self.handle {
            MetricHandle::Counter(_) => MetricKind::Counter,
            MetricHandle::Gauge(_) => MetricKind::Gauge,
            MetricHandle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

fn registry() -> std::sync::MutexGuard<'static, Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    // Poison-tolerant: registration panics (name/kind clashes) happen
    // before the entry list is touched, so the guarded data is always
    // consistent even after a panicking holder.
    REGISTRY
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn assert_name_ok(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit()),
        "invalid metric name {name:?}"
    );
}

fn get_or_register(
    name: &'static str,
    help: &'static str,
    labels: LabelSet,
    make: impl FnOnce() -> MetricHandle,
) -> MetricHandle {
    assert_name_ok(name);
    let mut reg = registry();
    let mut family_kind = None;
    for e in reg.iter() {
        if e.name != name {
            continue;
        }
        family_kind.get_or_insert(e.kind());
        if e.labels == labels {
            return e.handle.clone();
        }
    }
    let handle = make();
    let entry = Entry {
        name,
        help,
        labels,
        handle: handle.clone(),
    };
    if let Some(k) = family_kind {
        assert!(
            k == entry.kind(),
            "metric family {name:?} already registered as {:?}",
            k
        );
    }
    reg.push(entry);
    handle
}

/// Returns the counter `name{labels}`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is not a valid metric name, or if the same
/// name+labels was already registered as a different kind.
pub fn counter(name: &'static str, help: &'static str, labels: LabelSet) -> Counter {
    match get_or_register(name, help, labels, || {
        MetricHandle::Counter(Counter {
            core: Arc::new(CounterCore::default()),
        })
    }) {
        MetricHandle::Counter(c) => c,
        _ => panic!("metric {name:?} is not a counter"),
    }
}

/// Returns the gauge `name{labels}`, registering it on first use.
///
/// # Panics
///
/// Same conditions as [`counter`].
pub fn gauge(name: &'static str, help: &'static str, labels: LabelSet) -> Gauge {
    match get_or_register(name, help, labels, || {
        MetricHandle::Gauge(Gauge {
            core: Arc::new(GaugeCore::default()),
        })
    }) {
        MetricHandle::Gauge(g) => g,
        _ => panic!("metric {name:?} is not a gauge"),
    }
}

/// Returns the histogram `name{labels}`, registering it on first use
/// with `bounds` (ascending finite upper bounds; an existing
/// registration keeps its original bounds).
///
/// # Panics
///
/// Same conditions as [`counter`], plus non-ascending or non-finite
/// `bounds`.
pub fn histogram(
    name: &'static str,
    help: &'static str,
    labels: LabelSet,
    bounds: &[f64],
) -> Histogram {
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
        "histogram bounds must be finite and strictly ascending"
    );
    match get_or_register(name, help, labels, || {
        MetricHandle::Histogram(Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
            }),
        })
    }) {
        MetricHandle::Histogram(h) => h,
        _ => panic!("metric {name:?} is not a histogram"),
    }
}

/// Zeroes every registered metric (handles stay valid). For benches
/// and tests that window a measurement; exporters are additive
/// otherwise.
pub fn reset() {
    let reg = registry();
    for e in reg.iter() {
        match &e.handle {
            MetricHandle::Counter(c) => c.core.value.store(0, Ordering::Relaxed),
            MetricHandle::Gauge(g) => g.core.value.store(0, Ordering::Relaxed),
            MetricHandle::Histogram(h) => {
                for b in &h.core.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.core.count.store(0, Ordering::Relaxed);
                h.core.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Current value of one registry entry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter count.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Plain-data copy of one registry entry, for programmatic assertions
/// (the exporters render these).
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric family name.
    pub name: &'static str,
    /// Help text supplied at registration.
    pub help: &'static str,
    /// Label set of this child.
    pub labels: LabelSet,
    /// Current value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// The metric kind of this entry.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// Copies the whole registry, sorted by name then label set — the
/// stable order both exporters use.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry();
    let mut out: Vec<MetricSnapshot> = reg
        .iter()
        .map(|e| MetricSnapshot {
            name: e.name,
            help: e.help,
            labels: e.labels,
            value: match &e.handle {
                MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
                MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
                MetricHandle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            },
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(b.labels)));
    out
}

/// Looks up one metric's current value by name and labels.
pub fn find(name: &str, labels: &[(&str, &str)]) -> Option<MetricValue> {
    let reg = registry();
    reg.iter()
        .find(|e| e.name == name && e.labels == labels)
        .map(|e| match &e.handle {
            MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
            MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
            MetricHandle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        })
}

/// Sum of a counter family across all label children.
pub fn counter_family_total(name: &str) -> u64 {
    let reg = registry();
    reg.iter()
        .filter(|e| e.name == name)
        .map(|e| match &e.handle {
            MetricHandle::Counter(c) => c.get(),
            _ => 0,
        })
        .sum()
}

/// Serialises tests that record or toggle the process-global state
/// (the enable flag is shared, so a concurrent `set_enabled(false)`
/// would silently drop another test's writes).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so
    // every test uses its own metric names and takes the test lock.

    #[test]
    fn counter_counts_and_survives_disable() {
        let _g = test_lock();
        let c = counter("test_obs_counter_total", "t", &[]);
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        set_enabled(false);
        c.inc();
        set_enabled(true);
        assert_eq!(c.get(), before + 5, "disabled increments must not record");
        c.inc();
        assert_eq!(c.get(), before + 6);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let _g = test_lock();
        let g = gauge("test_obs_gauge", "t", &[]);
        g.set(7);
        assert_eq!(g.get(), 7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn same_name_and_labels_share_state() {
        let _g = test_lock();
        let a = counter("test_obs_shared_total", "t", &[("k", "v")]);
        let b = counter("test_obs_shared_total", "t", &[("k", "v")]);
        let before = b.get();
        a.add(3);
        assert_eq!(b.get(), before + 3);
        // A different label child is independent.
        let c = counter("test_obs_shared_total", "t", &[("k", "w")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("test_obs_kindclash", "t", &[("a", "1")]);
        gauge("test_obs_kindclash", "t", &[("a", "2")]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        counter("test obs spaces", "t", &[]);
    }

    #[test]
    fn histogram_buckets_count_and_quantiles() {
        let _g = test_lock();
        let h = histogram("test_obs_hist", "t", &[], &[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 5.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.buckets, vec![1, 2, 3, 1, 1]);
        assert!((s.sum - 117.5).abs() < 1e-9);
        // p50 lands in the (2, 4] bucket; p100 hits the overflow
        // bucket and reports the largest finite bound, tagged
        // saturated so callers know it is a floor.
        let p50 = s.quantile(0.5);
        assert!((2.0..=4.0).contains(&p50.value), "p50 {p50:?}");
        assert!(!p50.saturated);
        let p100 = s.quantile(1.0);
        assert_eq!(p100.value, 8.0);
        assert!(p100.saturated);
        assert!((s.mean() - 117.5 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let _g = test_lock();
        let h = histogram("test_obs_hist_nan", "t", &[], &[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        let q = h.quantile(0.5);
        assert!(q.value.is_nan());
        assert!(!q.saturated);
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let _g = test_lock();
        let a = histogram("test_obs_hist_n_a", "t", &[], &[1.0, 2.0]);
        let b = histogram("test_obs_hist_n_b", "t", &[], &[1.0, 2.0]);
        a.observe_n(1.5, 5);
        for _ in 0..5 {
            b.observe(1.5);
        }
        assert_eq!(a.snapshot().buckets, b.snapshot().buckets);
        assert!((a.sum() - b.sum()).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_windows_a_measurement() {
        let _g = test_lock();
        let h = histogram("test_obs_hist_delta", "t", &[], &[1.0, 2.0, 4.0]);
        h.observe(0.5); // pre-window noise
        let s0 = h.snapshot();
        h.observe(3.0);
        h.observe(3.0);
        let d = h.snapshot().delta(&s0);
        assert_eq!(d.count, 2);
        assert_eq!(d.buckets, vec![0, 0, 2, 0]);
        let q = d.quantile(0.5);
        assert!((2.0..=4.0).contains(&q.value), "windowed p50 {q:?}");
    }

    #[test]
    fn span_records_elapsed_time() {
        let _g = test_lock();
        let h = histogram("test_obs_span", "t", &[], &latency_buckets());
        let before = h.count();
        {
            let _guard = h.time();
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), before + 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn preset_buckets_are_ascending() {
        let _g = test_lock();
        for bounds in [latency_buckets(), batch_buckets(), ratio_buckets()] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
            assert!(bounds.iter().all(|b| b.is_finite()));
        }
    }

    #[test]
    fn find_locates_registered_metrics() {
        let _g = test_lock();
        let c = counter("test_obs_find_total", "t", &[("x", "y")]);
        c.add(2);
        match find("test_obs_find_total", &[("x", "y")]) {
            Some(MetricValue::Counter(n)) => assert!(n >= 2),
            other => panic!("unexpected lookup result {other:?}"),
        }
        assert!(find("test_obs_find_total", &[("x", "z")]).is_none());
        assert!(counter_family_total("test_obs_find_total") >= 2);
    }
}
