//! Label-family helpers: one static, many label children.
//!
//! Several call sites across the workspace used to hand-roll the same
//! pattern — a `OnceLock` holding an array of handles, one per value of
//! a single label key (`stage_seconds` in `m2ai-core`, the GEMM shape
//! classes in `m2ai-kernels`, …). [`CounterFamily`] and
//! [`HistogramFamily`] fold that boilerplate into one `static`:
//!
//! ```
//! static STAGE: m2ai_obs::HistogramFamily = m2ai_obs::HistogramFamily::new(
//!     "example_stage_seconds",
//!     "stage wall time",
//!     "stage",
//!     m2ai_obs::latency_buckets,
//! );
//! let _span = STAGE.with("calibration").time();
//! ```
//!
//! `with` resolves (and on first use registers) the child for a label
//! value and caches the handle, so after warmup a lookup is one short
//! mutex-guarded scan over a handful of entries — no allocation, no
//! re-registration. Label values must be `'static`, matching the
//! registry's allocation-free contract; the one-pair label slice each
//! distinct value needs is leaked exactly once, bounded by the (small,
//! fixed) set of values a call site uses.

use crate::{Counter, Histogram, LabelSet};
use std::sync::Mutex;

/// Cached children of one family, keyed by label value.
///
/// Each distinct value leaks one single-pair label slice on first use:
/// the registry requires `'static` labels, and the value set of a
/// family is a small fixed vocabulary, so the leak is bounded.
type Cells<T> = Mutex<Vec<(&'static str, T)>>;

/// A counter family over one label key, usable as a `static`.
#[derive(Debug)]
pub struct CounterFamily {
    name: &'static str,
    help: &'static str,
    key: &'static str,
    cells: Cells<Counter>,
}

impl CounterFamily {
    /// Declares a family (no registration happens until [`Self::with`]).
    pub const fn new(name: &'static str, help: &'static str, key: &'static str) -> Self {
        CounterFamily {
            name,
            help,
            key,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// The counter `name{key=value}`, registered on first use.
    pub fn with(&self, value: &'static str) -> Counter {
        let (name, help, key) = (self.name, self.help, self.key);
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, c)) = cells.iter().find(|(v, _)| *v == value) {
            return c.clone();
        }
        let labels: LabelSet = Box::leak(Box::new([(key, value)]));
        let c = crate::counter(name, help, labels);
        cells.push((value, c.clone()));
        c
    }
}

/// A histogram family over one label key, usable as a `static`.
///
/// Bounds are supplied as a function pointer (e.g.
/// [`crate::latency_buckets`]) so the declaration stays `const`.
#[derive(Debug)]
pub struct HistogramFamily {
    name: &'static str,
    help: &'static str,
    key: &'static str,
    bounds: fn() -> Vec<f64>,
    cells: Cells<Histogram>,
}

impl HistogramFamily {
    /// Declares a family (no registration happens until [`Self::with`]).
    pub const fn new(
        name: &'static str,
        help: &'static str,
        key: &'static str,
        bounds: fn() -> Vec<f64>,
    ) -> Self {
        HistogramFamily {
            name,
            help,
            key,
            bounds,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// The histogram `name{key=value}`, registered on first use.
    pub fn with(&self, value: &'static str) -> Histogram {
        let (name, help, key, bounds) = (self.name, self.help, self.key, self.bounds);
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, h)) = cells.iter().find(|(v, _)| *v == value) {
            return h.clone();
        }
        let labels: LabelSet = Box::leak(Box::new([(key, value)]));
        let h = crate::histogram(name, help, labels, &bounds());
        cells.push((value, h.clone()));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTERS: CounterFamily = CounterFamily::new("test_obs_family_total", "t", "op");
    static TEST_HISTS: HistogramFamily = HistogramFamily::new(
        "test_obs_family_seconds",
        "t",
        "stage",
        crate::latency_buckets,
    );

    #[test]
    fn counter_children_are_cached_and_independent() {
        let _g = crate::test_lock();
        let a = TEST_COUNTERS.with("add");
        let a2 = TEST_COUNTERS.with("add");
        let r = TEST_COUNTERS.with("retire");
        let before_a = a.get();
        let before_r = r.get();
        a.add(3);
        assert_eq!(a2.get(), before_a + 3, "same value shares state");
        assert_eq!(r.get(), before_r, "different values are independent");
        assert!(crate::find("test_obs_family_total", &[("op", "add")]).is_some());
    }

    #[test]
    fn histogram_children_register_with_bounds() {
        let _g = crate::test_lock();
        let h = TEST_HISTS.with("music");
        let before = h.count();
        h.observe(0.001);
        assert_eq!(TEST_HISTS.with("music").count(), before + 1);
        assert!(crate::find("test_obs_family_seconds", &[("stage", "music")]).is_some());
    }
}
