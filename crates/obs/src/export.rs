//! Registry exporters: a versioned JSON snapshot and the Prometheus
//! text exposition format, plus line-format lints for both.
//!
//! The workspace carries no serde, so the JSON is hand-rolled with a
//! fixed key order — the same policy as the bench baselines
//! (`BENCH_*.json`). Schema version: [`SNAPSHOT_SCHEMA`]; bump it if
//! the key structure ever changes so downstream scrapers fail loudly
//! instead of misparsing.

use crate::{snapshot, HistogramSnapshot, MetricSnapshot, MetricValue};
use std::fmt::Write as _;

/// Schema tag stamped into every JSON snapshot.
pub const SNAPSHOT_SCHEMA: &str = "m2ai-obs-v1";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Finite floats render as numbers, non-finite as `null` (JSON has no
/// NaN/Inf) — the same convention as the bench reports.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure the value re-parses as a float, not an integer.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn json_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

fn json_histogram(h: &HistogramSnapshot, indent: &str) -> String {
    let mut out = String::new();
    let p99 = h.quantile(0.99);
    let _ = write!(
        out,
        "\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p99_saturated\": {},\n{indent}\"buckets\": [",
        h.count,
        json_f64(h.sum),
        json_f64(h.quantile(0.50).value),
        json_f64(h.quantile(0.95).value),
        json_f64(p99.value),
        p99.saturated,
    );
    for (i, &n) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let le = h
            .bounds
            .get(i)
            .map(|b| json_f64(*b))
            .unwrap_or_else(|| "null".to_string()); // +Inf bucket
        let _ = write!(out, "{{\"le\": {le}, \"count\": {n}}}");
    }
    out.push(']');
    out
}

/// Renders the whole registry as one JSON document (stable key and
/// entry order; see [`SNAPSHOT_SCHEMA`]).
pub fn snapshot_json() -> String {
    render_snapshot_json(&snapshot())
}

/// [`snapshot_json`] over an explicit snapshot (for tests).
pub fn render_snapshot_json(metrics: &[MetricSnapshot]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SNAPSHOT_SCHEMA}\",");
    let _ = writeln!(out, "  \"enabled\": {},", crate::enabled());
    out.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"labels\": {},\n     \"help\": \"{}\",\n     ",
            json_escape(m.name),
            m.kind().as_str(),
            json_labels(m.labels),
            json_escape(m.help),
        );
        match &m.value {
            MetricValue::Counter(n) => {
                let _ = write!(out, "\"value\": {n}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "\"value\": {v}");
            }
            MetricValue::Histogram(h) => out.push_str(&json_histogram(h, "     ")),
        }
        out.push('}');
        if i + 1 < metrics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn prom_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the whole registry in the Prometheus text exposition
/// format (one `# HELP`/`# TYPE` pair per family, children grouped).
pub fn prometheus_text() -> String {
    render_prometheus(&snapshot())
}

/// [`prometheus_text`] over an explicit snapshot (for tests).
pub fn render_prometheus(metrics: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for m in metrics {
        if last_family != Some(m.name) {
            let _ = writeln!(out, "# HELP {} {}", m.name, prom_escape(m.help));
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind().as_str());
            last_family = Some(m.name);
        }
        match &m.value {
            MetricValue::Counter(n) => {
                let _ = writeln!(out, "{}{} {n}", m.name, prom_labels(m.labels, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {v}", m.name, prom_labels(m.labels, None));
            }
            MetricValue::Histogram(h) => {
                let mut cum = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    cum += n;
                    let le = h
                        .bounds
                        .get(i)
                        .map(|b| prom_f64(*b))
                        .unwrap_or_else(|| "+Inf".to_string());
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cum}",
                        m.name,
                        prom_labels(m.labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    m.name,
                    prom_labels(m.labels, None),
                    prom_f64(h.sum)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    m.name,
                    prom_labels(m.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_block(s: &str) -> bool {
    // `{k="v",k2="v2"}` — quotes may contain escaped chars.
    let Some(inner) = s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        return false;
    };
    if inner.is_empty() {
        return false; // we never emit empty brace blocks
    }
    let mut rest = inner;
    loop {
        let Some(eq) = rest.find('=') else {
            return false;
        };
        let key = &rest[..eq];
        if !valid_metric_name(key) {
            return false;
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return false;
        }
        // Scan to the closing unescaped quote.
        let mut end = None;
        let bytes = after.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let Some(end) = end else {
            return false;
        };
        rest = &after[end + 1..];
        if rest.is_empty() {
            return true;
        }
        let Some(stripped) = rest.strip_prefix(',') else {
            return false;
        };
        rest = stripped;
    }
}

fn valid_sample_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Line-format lint for the Prometheus text exposition format.
///
/// Checks every line is a well-formed comment or sample, that sample
/// names are valid, label blocks parse, values are numeric, and that
/// every sampled family was declared with a `# TYPE` line. Returns one
/// message per violation (empty = clean).
pub fn validate_prometheus(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut typed: Vec<&str> = Vec::new();
    let mut sampled: Vec<(usize, String)> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let n = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                if !valid_metric_name(name) {
                    errors.push(format!("line {n}: bad TYPE metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    errors.push(format!("line {n}: bad TYPE kind {kind:?}"));
                }
                typed.push(name);
            } else if rest.strip_prefix("HELP ").is_none() {
                errors.push(format!("line {n}: unknown comment directive"));
            }
            continue;
        }
        if line.starts_with('#') {
            errors.push(format!("line {n}: comments must start with '# '"));
            continue;
        }
        // Sample: name[{labels}] value
        let Some(space) = line.rfind(' ') else {
            errors.push(format!("line {n}: sample has no value"));
            continue;
        };
        let (head, value) = (&line[..space], &line[space + 1..]);
        if !valid_sample_value(value) {
            errors.push(format!("line {n}: non-numeric sample value {value:?}"));
        }
        let (name, labels) = match head.find('{') {
            Some(b) => (&head[..b], &head[b..]),
            None => (head, ""),
        };
        if !valid_metric_name(name) {
            errors.push(format!("line {n}: bad sample metric name {name:?}"));
        }
        if !labels.is_empty() && !valid_label_block(labels) {
            errors.push(format!("line {n}: malformed label block {labels:?}"));
        }
        sampled.push((n, name.to_string()));
    }
    for (n, name) in &sampled {
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(f))
            .unwrap_or(name);
        if !typed.contains(&family) {
            errors.push(format!(
                "line {n}: sample {name:?} has no # TYPE declaration"
            ));
        }
    }
    errors
}

/// Structural lint for the JSON snapshot: schema tag, balanced
/// braces/brackets, and the per-kind required keys. Returns one
/// message per violation (empty = clean). This is a shape check, not a
/// JSON parser — the snapshot is machine-generated, so shape is what
/// can drift.
pub fn validate_snapshot_json(json: &str) -> Vec<String> {
    let mut errors = Vec::new();
    if !json.contains(&format!("\"schema\": \"{SNAPSHOT_SCHEMA}\"")) {
        errors.push(format!("missing schema tag {SNAPSHOT_SCHEMA:?}"));
    }
    if !json.contains("\"metrics\": [") {
        errors.push("missing metrics array".to_string());
    }
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_brace += 1,
            '}' => depth_brace -= 1,
            '[' => depth_bracket += 1,
            ']' => depth_bracket -= 1,
            _ => {}
        }
        if depth_brace < 0 || depth_bracket < 0 {
            errors.push("unbalanced braces/brackets".to_string());
            return errors;
        }
    }
    if depth_brace != 0 || depth_bracket != 0 || in_string {
        errors.push("unterminated structure".to_string());
    }
    for (kind, key) in [
        ("histogram", "\"buckets\": ["),
        ("histogram", "\"p99\": "),
        ("histogram", "\"p99_saturated\": "),
        ("counter", "\"value\": "),
    ] {
        if json.contains(&format!("\"kind\": \"{kind}\"")) && !json.contains(key) {
            errors.push(format!("{kind} entries present but no {key:?} key"));
        }
    }
    // A saturated p99 on a latency family means mass escaped past the
    // largest finite bucket — the reported number is a floor, and a
    // dashboard reading it as-is under-reports tail latency. Flag it.
    for chunk in json.split("{\"name\": \"").skip(1) {
        let name = chunk.split('"').next().unwrap_or("");
        if name.ends_with("_seconds") && chunk.contains("\"p99_saturated\": true") {
            errors.push(format!("saturated p99 on latency family {name:?}"));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, gauge, histogram, test_lock};

    fn populate() {
        counter("test_export_reads_total", "reads", &[("kind", "ok")]).add(3);
        gauge("test_export_depth", "queue depth", &[]).set(-2);
        let h = histogram(
            "test_export_lat_seconds",
            "latency",
            &[],
            &[0.001, 0.01, 0.1],
        );
        h.observe(0.005);
        h.observe(0.05);
        h.observe(0.09);
    }

    #[test]
    fn json_snapshot_is_versioned_and_lints_clean() {
        let _g = test_lock();
        populate();
        let json = snapshot_json();
        assert!(json.contains(SNAPSHOT_SCHEMA));
        assert!(json.contains("\"name\": \"test_export_reads_total\""));
        assert!(json.contains("\"kind\": \"histogram\""));
        let errors = validate_snapshot_json(&json);
        assert!(errors.is_empty(), "snapshot lint failed: {errors:?}");
    }

    #[test]
    fn prometheus_text_lints_clean_and_has_families() {
        let _g = test_lock();
        populate();
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_export_reads_total counter"));
        assert!(text.contains("test_export_reads_total{kind=\"ok\"}"));
        assert!(text.contains("# TYPE test_export_lat_seconds histogram"));
        assert!(text.contains("test_export_lat_seconds_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        let errors = validate_prometheus(&text);
        assert!(errors.is_empty(), "prometheus lint failed: {errors:?}");
    }

    #[test]
    fn histogram_bucket_lines_are_cumulative() {
        let _g = test_lock();
        populate();
        let text = prometheus_text();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("test_export_lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), 4, "3 finite bounds + the +Inf bucket");
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 3);
    }

    #[test]
    fn lint_catches_malformed_lines() {
        let _g = test_lock();
        let bad = "##nope\nmetric_without_value\n1bad_name 3\nok_metric{k=} 1\nunknown_family 1\n";
        let errors = validate_prometheus(bad);
        assert!(errors.len() >= 5, "expected many violations: {errors:?}");
        let good = "# HELP m 1\n# TYPE m counter\nm{a=\"b\"} 4\n";
        assert!(validate_prometheus(good).is_empty());
    }

    #[test]
    fn snapshot_lint_catches_truncation() {
        let _g = test_lock();
        populate();
        let json = snapshot_json();
        let truncated = &json[..json.len() / 2];
        assert!(!validate_snapshot_json(truncated).is_empty());
        assert!(!validate_snapshot_json("{}").is_empty());
    }

    #[test]
    fn json_f64_stays_a_float() {
        let _g = test_lock();
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5e-7).parse::<f64>().unwrap(), 1.5e-7);
    }

    /// A session/shard label value with every awkward character class:
    /// quotes, backslashes, a newline, and a control byte.
    const HOSTILE: &str = "sess\"7\\path\nline\x01end";

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let _g = test_lock();
        counter(
            "test_export_hostile_total",
            "hostile labels",
            &[("session", HOSTILE), ("shard", "s\\3\"")],
        )
        .inc();
        let text = prometheus_text();
        let line = text
            .lines()
            .find(|l| l.starts_with("test_export_hostile_total{"))
            .expect("sample line present");
        // Quotes and backslashes must arrive escaped, newlines as \n —
        // the exposition format is line-oriented, so a raw newline
        // would split the sample in two.
        assert!(line.contains("session=\"sess\\\"7\\\\path\\nline\x01end\""));
        assert!(line.contains("shard=\"s\\\\3\\\"\""));
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("test_export_hostile_total"))
                .count(),
            3,
            "HELP + TYPE + one sample line, nothing split"
        );
        let errors = validate_prometheus(&text);
        assert!(
            errors.is_empty(),
            "hostile labels broke the lint: {errors:?}"
        );
    }

    #[test]
    fn json_escapes_hostile_label_values() {
        let _g = test_lock();
        counter(
            "test_export_hostile_json_total",
            "hostile labels",
            &[("session", HOSTILE)],
        )
        .inc();
        let json = snapshot_json();
        // \x01 is below 0x20 so it must render as a \u escape; quotes
        // and backslashes escaped; the raw newline must not appear
        // inside the string.
        assert!(json.contains("\"session\": \"sess\\\"7\\\\path\\nline\\u0001end\""));
        let errors = validate_snapshot_json(&json);
        assert!(
            errors.is_empty(),
            "hostile labels broke the lint: {errors:?}"
        );
    }

    #[test]
    fn snapshot_lint_flags_saturated_latency_p99() {
        // An explicit snapshot (not the global registry) so the
        // deliberately-saturated family doesn't fail the other tests'
        // whole-registry lint checks.
        let sat = MetricSnapshot {
            name: "test_export_sat_seconds",
            help: "saturating latency",
            labels: &[],
            value: MetricValue::Histogram(HistogramSnapshot {
                bounds: vec![0.001, 0.01],
                buckets: vec![0, 0, 10], // all mass in the +Inf bucket
                count: 10,
                sum: 50.0,
            }),
        };
        let json = render_snapshot_json(&[sat]);
        let errors = validate_snapshot_json(&json);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("saturated p99") && e.contains("test_export_sat_seconds")),
            "lint must flag the saturated family: {errors:?}"
        );
        // The same mass under a non-latency name is not an error.
        let batch = MetricSnapshot {
            name: "test_export_sat_batch",
            help: "batch sizes",
            labels: &[],
            value: MetricValue::Histogram(HistogramSnapshot {
                bounds: vec![1.0, 2.0],
                buckets: vec![0, 0, 10],
                count: 10,
                sum: 50.0,
            }),
        };
        let json = render_snapshot_json(&[batch]);
        assert!(validate_snapshot_json(&json).is_empty());
    }
}
