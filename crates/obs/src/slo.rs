//! SLO specification and multi-window burn-rate evaluation over
//! histogram snapshots.
//!
//! An [`SloSpec`] names a latency target and an error budget (the
//! tolerated fraction of requests slower than the target). An
//! [`SloMonitor`] ingests timestamped [`HistogramSnapshot`]s of a
//! latency histogram and computes *burn rates*: how fast the error
//! budget is being consumed over a trailing window, normalised so that
//! `1.0` means "exactly on budget" and `14.4` means "burning 14.4× too
//! fast" (the classic fast-burn page threshold). Evaluating several
//! windows at once ([`SloMonitor::evaluate`]) gives the standard
//! multi-window alert shape: a short window to catch fresh regressions
//! quickly, a long window to reject blips.
//!
//! The monitor publishes its latest long-window burn rate to the
//! `m2ai_slo_burn_rate{slo=...}` gauge in *thousandths* (the registry's
//! gauges are integral): a reading of `1000` is burn rate 1.0.

use crate::{HistogramSnapshot, Quantile};

/// A latency SLO: target bound plus tolerated violation fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Stable name (labels the burn-rate gauge).
    pub name: &'static str,
    /// Requests must complete within this many seconds…
    pub target_latency_s: f64,
    /// …except for this fraction of them (e.g. `0.01` = 99% SLO).
    pub error_budget: f64,
}

/// One evaluation window: trailing width plus the burn-rate threshold
/// above which the window counts as breached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Trailing window width, microseconds on the trace clock.
    pub window_us: u64,
    /// Breach when the window's burn rate exceeds this.
    pub threshold: f64,
}

/// Result of one multi-window evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// Burn rate per evaluated window, same order as the input.
    pub burn_rates: Vec<f64>,
    /// `true` when *every* window exceeded its threshold (the
    /// multi-window AND that makes alerts robust to blips).
    pub breached: bool,
}

/// Burn-rate evaluator over a stream of histogram snapshots.
///
/// Feed it cumulative snapshots of one latency histogram via
/// [`SloMonitor::observe`]; it retains a bounded history and answers
/// burn-rate queries over any trailing window.
#[derive(Debug)]
pub struct SloMonitor {
    spec: SloSpec,
    samples: Vec<(u64, HistogramSnapshot)>,
    gauge: crate::Gauge,
}

/// Retained snapshot history (oldest evicted beyond this).
const MAX_SAMPLES: usize = 4096;

impl SloMonitor {
    /// Creates a monitor and registers its burn-rate gauge
    /// (`m2ai_slo_burn_rate{slo=<name>}`).
    pub fn new(spec: SloSpec) -> SloMonitor {
        let labels: crate::LabelSet = Box::leak(Box::new([("slo", spec.name)]));
        SloMonitor {
            spec,
            samples: Vec::new(),
            gauge: crate::gauge(
                "m2ai_slo_burn_rate",
                "long-window SLO burn rate, thousandths (1000 = on budget)",
                labels,
            ),
        }
    }

    /// The spec this monitor evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Ingests a cumulative snapshot taken at `at_us` on the trace
    /// clock ([`crate::trace::clock_us`]).
    pub fn observe(&mut self, at_us: u64, snapshot: HistogramSnapshot) {
        self.samples.push((at_us, snapshot));
        if self.samples.len() > MAX_SAMPLES {
            self.samples.remove(0);
        }
    }

    /// Fraction of observations in `delta` slower than the target
    /// (counted conservatively: an observation is "good" only if its
    /// bucket's upper bound is within the target).
    fn bad_fraction(&self, delta: &HistogramSnapshot) -> f64 {
        if delta.count == 0 {
            return 0.0;
        }
        let mut good = 0u64;
        for (i, &n) in delta.buckets.iter().enumerate() {
            if i < delta.bounds.len() && delta.bounds[i] <= self.spec.target_latency_s {
                good += n;
            }
        }
        1.0 - good as f64 / delta.count as f64
    }

    /// Burn rate over the trailing `window_us` ending at `now_us`:
    /// the window's bad fraction divided by the error budget. `0.0`
    /// when the window holds fewer than two samples or no new
    /// observations (no data is not a breach).
    pub fn burn_rate(&self, now_us: u64, window_us: u64) -> f64 {
        let start = now_us.saturating_sub(window_us);
        let latest = match self.samples.last() {
            Some(l) => l,
            None => return 0.0,
        };
        // Baseline: the retained sample closest to the window start
        // (either side), so a sparse history neither widens a short
        // window to the whole run nor collapses it to nothing.
        let mut base: Option<&(u64, HistogramSnapshot)> = None;
        for s in &self.samples[..self.samples.len() - 1] {
            let better = match base {
                None => true,
                Some(b) => s.0.abs_diff(start) <= b.0.abs_diff(start),
            };
            if better {
                base = Some(s);
            }
        }
        let base = match base {
            Some(b) if latest.0 > b.0 => b,
            _ => return 0.0,
        };
        let delta = latest.1.delta(&base.1);
        if self.spec.error_budget <= 0.0 {
            return if self.bad_fraction(&delta) > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.bad_fraction(&delta) / self.spec.error_budget
    }

    /// Evaluates every window and publishes the *last* window's burn
    /// rate (by convention the longest) to the gauge in thousandths.
    pub fn evaluate(&mut self, now_us: u64, windows: &[BurnWindow]) -> SloVerdict {
        let burn_rates: Vec<f64> = windows
            .iter()
            .map(|w| self.burn_rate(now_us, w.window_us))
            .collect();
        let breached = !windows.is_empty()
            && windows
                .iter()
                .zip(&burn_rates)
                .all(|(w, &b)| b > w.threshold);
        if let Some(&last) = burn_rates.last() {
            let scaled = if last.is_finite() {
                (last * 1000.0)
                    .round()
                    .clamp(i64::MIN as f64, i64::MAX as f64) as i64
            } else {
                i64::MAX
            };
            self.gauge.set(scaled);
        }
        SloVerdict {
            burn_rates,
            breached,
        }
    }

    /// Convenience: latest cumulative quantile of the watched
    /// histogram ([`Quantile::saturated`]-aware), `NaN` with no data.
    pub fn latest_quantile(&self, q: f64) -> Quantile {
        match self.samples.last() {
            Some((_, s)) => s.quantile(q),
            None => Quantile {
                value: f64::NAN,
                saturated: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(bounds: &[f64], buckets: &[u64]) -> HistogramSnapshot {
        let count = buckets.iter().sum();
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            buckets: buckets.to_vec(),
            count,
            sum: 0.0,
        }
    }

    fn spec() -> SloSpec {
        SloSpec {
            name: "test_slo",
            target_latency_s: 0.010,
            error_budget: 0.01,
        }
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let _g = crate::test_lock();
        let bounds = [0.001, 0.010, 0.100];
        let mut m = SloMonitor::new(spec());
        m.observe(0, snap(&bounds, &[0, 0, 0, 0]));
        // 100 requests, 2 slower than 10ms → bad fraction 0.02, budget
        // 0.01 → burn rate 2.0.
        m.observe(1_000_000, snap(&bounds, &[50, 48, 2, 0]));
        let b = m.burn_rate(1_000_000, 1_000_000);
        assert!((b - 2.0).abs() < 1e-9, "burn {b}");
    }

    #[test]
    fn no_data_is_not_a_breach() {
        let _g = crate::test_lock();
        let m = SloMonitor::new(spec());
        assert_eq!(m.burn_rate(5_000_000, 1_000_000), 0.0);
    }

    #[test]
    fn multi_window_needs_both_to_breach() {
        let _g = crate::test_lock();
        let bounds = [0.001, 0.010, 0.100];
        let mut m = SloMonitor::new(spec());
        // Long clean history, then a short burst of slowness.
        m.observe(0, snap(&bounds, &[0, 0, 0, 0]));
        m.observe(8_000_000, snap(&bounds, &[1000, 0, 0, 0]));
        m.observe(10_000_000, snap(&bounds, &[1000, 0, 100, 0]));
        let windows = [
            BurnWindow {
                window_us: 2_500_000,
                threshold: 14.4,
            },
            BurnWindow {
                window_us: 10_000_000,
                threshold: 6.0,
            },
        ];
        let v = m.evaluate(10_000_000, &windows);
        // Short window: all 100 new requests bad → burn 100. Long
        // window: 100/1100 bad → burn ≈ 9.1. Both exceed → breach.
        assert!(v.burn_rates[0] > 14.4, "short {v:?}");
        assert!(v.burn_rates[1] > 6.0, "long {v:?}");
        assert!(v.breached);
        // Gauge carries the long-window rate in thousandths.
        let g = crate::find("m2ai_slo_burn_rate", &[("slo", "test_slo")]);
        match g {
            Some(crate::MetricValue::Gauge(v)) => assert!(v > 6000, "gauge {v}"),
            other => panic!("gauge missing: {other:?}"),
        }
    }

    #[test]
    fn clean_window_does_not_breach() {
        let _g = crate::test_lock();
        let bounds = [0.001, 0.010, 0.100];
        let mut m = SloMonitor::new(spec());
        m.observe(0, snap(&bounds, &[0, 0, 0, 0]));
        m.observe(1_000_000, snap(&bounds, &[500, 500, 0, 0]));
        let v = m.evaluate(
            1_000_000,
            &[BurnWindow {
                window_us: 1_000_000,
                threshold: 1.0,
            }],
        );
        assert_eq!(v.burn_rates[0], 0.0);
        assert!(!v.breached);
    }
}
