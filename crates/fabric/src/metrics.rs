//! Per-shard and fabric-wide instrument families.
//!
//! The fabric extends the serving metric surface with *per-shard
//! labels*: every shard gets its own `{shard="<i>"}` series of the
//! ingress queue-depth, shed and tick-latency families, so a scrape
//! shows load imbalance and per-shard saturation directly, while the
//! engine-level families (`m2ai_serve_*`, registered without labels)
//! keep aggregating across all shards.
//!
//! `m2ai-obs` requires `'static` label sets; shard labels are interned
//! once per shard index in a process-wide cache, so every fabric (and
//! every test in a process) shares the same registry entries.

use std::sync::{Mutex, OnceLock};

/// Interned `[("shard", "<i>")]` label set for a shard index.
fn shard_labels(shard: usize) -> m2ai_obs::LabelSet {
    static CACHE: OnceLock<Mutex<Vec<m2ai_obs::LabelSet>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    while cache.len() <= shard {
        let value: &'static str = Box::leak(cache.len().to_string().into_boxed_str());
        let set: m2ai_obs::LabelSet = Box::leak(vec![("shard", value)].into_boxed_slice());
        cache.push(set);
    }
    cache[shard]
}

/// Instrument handles for one shard, cloned into its worker thread.
#[derive(Debug, Clone)]
pub(crate) struct ShardInstruments {
    /// Data events sitting in the shard's bounded ingress queue.
    pub ingress_depth: m2ai_obs::Gauge,
    /// Data events dropped at the ingress because the queue was full.
    pub ingress_shed: m2ai_obs::Counter,
    /// Sessions currently assigned to the shard.
    pub sessions: m2ai_obs::Gauge,
    /// Predictions the shard's engine has emitted.
    pub predictions: m2ai_obs::Counter,
    /// Wall time of each engine tick on this shard's worker.
    pub tick_seconds: m2ai_obs::Histogram,
    /// Queue wait of sampled data events between fabric-edge enqueue
    /// and worker-side drain (observed only for trace-sampled events).
    pub ingress_wait_seconds: m2ai_obs::Histogram,
    /// Worker loop heartbeats (the liveness signal the supervisor
    /// watches; a flat-lining series is a stalled shard).
    pub heartbeats: m2ai_obs::Counter,
    /// Times the supervisor restarted this shard's worker.
    pub restarts: m2ai_obs::Counter,
}

pub(crate) fn shard_instruments(shard: usize) -> ShardInstruments {
    let labels = shard_labels(shard);
    ShardInstruments {
        ingress_depth: m2ai_obs::gauge(
            "m2ai_fabric_ingress_depth",
            "data events queued in a shard's bounded ingress",
            labels,
        ),
        ingress_shed: m2ai_obs::counter(
            "m2ai_fabric_ingress_shed_total",
            "data events dropped at a full shard ingress",
            labels,
        ),
        sessions: m2ai_obs::gauge(
            "m2ai_fabric_sessions",
            "sessions currently assigned to a shard",
            labels,
        ),
        predictions: m2ai_obs::counter(
            "m2ai_fabric_predictions_total",
            "predictions emitted by a shard's engine",
            labels,
        ),
        tick_seconds: m2ai_obs::histogram(
            "m2ai_fabric_tick_seconds",
            "engine tick wall time on a shard worker",
            labels,
            &m2ai_obs::latency_buckets(),
        ),
        ingress_wait_seconds: m2ai_obs::histogram(
            "m2ai_fabric_ingress_wait_seconds",
            "sampled data-event wait between ingress enqueue and worker drain",
            labels,
            &m2ai_obs::latency_buckets(),
        ),
        heartbeats: m2ai_obs::counter(
            "m2ai_fabric_heartbeats_total",
            "shard worker loop heartbeats observed by the supervisor",
            labels,
        ),
        restarts: m2ai_obs::counter(
            "m2ai_fabric_restarts_total",
            "shard worker restarts performed by the supervisor",
            labels,
        ),
    }
}

/// Fabric-wide (unlabelled) instruments.
#[derive(Debug)]
pub(crate) struct FabricInstruments {
    /// Sessions admitted onto a ring successor because the preferred
    /// shard was at capacity.
    pub spills: m2ai_obs::Counter,
    /// Admissions refused because every shard was at capacity.
    pub rejections: m2ai_obs::Counter,
    /// Session snapshots written into the checkpoint store.
    pub checkpoints: m2ai_obs::Counter,
    /// Wall time of one fabric-wide checkpoint sweep.
    pub checkpoint_seconds: m2ai_obs::Histogram,
    /// Sessions quarantined after repeatedly panicking the engine.
    pub quarantined: m2ai_obs::Counter,
    /// Shard death-to-serving recovery wall time (spawn through
    /// checkpoint restore of every resident session).
    pub recovery_seconds: m2ai_obs::Histogram,
}

pub(crate) fn fabric_instruments() -> &'static FabricInstruments {
    static M: OnceLock<FabricInstruments> = OnceLock::new();
    M.get_or_init(|| FabricInstruments {
        spills: m2ai_obs::counter(
            "m2ai_fabric_spill_total",
            "sessions spilled past a full preferred shard",
            &[],
        ),
        rejections: m2ai_obs::counter(
            "m2ai_fabric_rejections_total",
            "fabric admissions refused with every shard full",
            &[("reason", "fabric_full")],
        ),
        checkpoints: m2ai_obs::counter(
            "m2ai_fabric_checkpoints_total",
            "session snapshots captured into the checkpoint store",
            &[],
        ),
        checkpoint_seconds: m2ai_obs::histogram(
            "m2ai_fabric_checkpoint_seconds",
            "wall time of a fabric-wide checkpoint sweep",
            &[],
            &m2ai_obs::latency_buckets(),
        ),
        quarantined: m2ai_obs::counter(
            "m2ai_fabric_quarantined_total",
            "sessions quarantined after repeated engine panics",
            &[],
        ),
        recovery_seconds: m2ai_obs::histogram(
            "m2ai_fabric_recovery_seconds",
            "shard death-to-serving recovery wall time",
            &[],
            &m2ai_obs::latency_buckets(),
        ),
    })
}
