//! Consistent-hash session→shard routing.
//!
//! Two layers, deliberately separate:
//!
//! * [`HashRing`] — the pure consistent-hash structure: every shard
//!   owns [`HashRing::vnodes`] pseudo-random points on a `u64` ring,
//!   and a session key routes to the owner of the first ring point at
//!   or after the key's hash (wrapping). Adding a shard only *steals*
//!   keys (a rerouted key can only move to the new shard), so roughly
//!   `1/N` of sessions move when a shard joins — the classic
//!   stability property. Retired shards are skipped by walking to the
//!   next alive successor.
//! * [`RoutingTable`] — the *explicit* assignment record the fabric
//!   actually serves from. The ring only expresses a preference; the
//!   table pins each session to the shard that admitted it, tracks
//!   per-shard load against a capacity, and **spills** a session to
//!   the next alive successor shard when its preferred shard is full.
//!   Admission fails only when every alive shard is at capacity — the
//!   fabric degrades by spreading load, not by refusing globally.
//!
//! Hashing is a fixed-salt splitmix64, so placement is a pure function
//! of `(key, shard count, vnodes)` — identical across processes and
//! runs, which is what makes the router property-testable and the
//! fabric's placement reproducible.

use std::collections::HashMap;

/// Salt mixed into ring-point hashes (arbitrary, fixed forever).
const RING_SALT: u64 = 0x5143_8D1E_2F96_B0A7;
/// Salt mixed into session-key hashes (distinct from [`RING_SALT`] so
/// keys never collide with ring points structurally).
const KEY_SALT: u64 = 0xA076_1D64_78BD_642F;

/// The finalizer of splitmix64 — a high-quality 64-bit mixer.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Consistent-hash ring over shard indices with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring point, shard)` pairs, sorted by point (ties broken by
    /// shard index via the tuple sort — deterministic either way).
    points: Vec<(u64, usize)>,
    /// Liveness per shard index; retired shards keep their points but
    /// are skipped at routing time.
    alive: Vec<bool>,
    /// Ring points per shard.
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring of `shards` shards with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(vnodes > 0, "need at least one virtual node per shard");
        let mut ring = HashRing {
            points: Vec::with_capacity(shards * vnodes),
            alive: Vec::with_capacity(shards),
            vnodes,
        };
        for _ in 0..shards {
            ring.add_shard();
        }
        ring
    }

    /// Ring points per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Total shards ever added (alive or retired).
    pub fn n_shards(&self) -> usize {
        self.alive.len()
    }

    /// Whether `shard` is alive (routable).
    pub fn is_alive(&self, shard: usize) -> bool {
        self.alive.get(shard).copied().unwrap_or(false)
    }

    /// Number of alive shards.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Adds a shard, returning its index. Existing keys reroute only
    /// onto the new shard (consistent-hash stability).
    pub fn add_shard(&mut self) -> usize {
        let shard = self.alive.len();
        self.alive.push(true);
        for replica in 0..self.vnodes {
            let p = splitmix64(RING_SALT ^ ((shard as u64) << 32) ^ replica as u64);
            self.points.push((p, shard));
        }
        self.points.sort_unstable();
        shard
    }

    /// Marks a shard dead; its keys reroute to alive successors.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn retire_shard(&mut self, shard: usize) {
        self.alive[shard] = false;
    }

    /// First ring position at or after the key's hash.
    fn start_index(&self, key: u64) -> usize {
        let h = splitmix64(key ^ KEY_SALT);
        let i = self.points.partition_point(|&(p, _)| p < h);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// The preferred alive shard for `key`, or `None` if every shard
    /// is retired.
    pub fn route(&self, key: u64) -> Option<usize> {
        self.candidates(key).next()
    }

    /// Distinct alive shards in ring-successor order starting from the
    /// key's position — the preferred shard first, then the spill
    /// order the [`RoutingTable`] walks when shards fill up.
    pub fn candidates(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.start_index(key);
        let n = self.points.len();
        let mut seen = vec![false; self.alive.len()];
        (0..n).filter_map(move |off| {
            let (_, shard) = self.points[(start + off) % n];
            if self.alive[shard] && !seen[shard] {
                seen[shard] = true;
                Some(shard)
            } else {
                None
            }
        })
    }
}

/// Why a session could not be assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Every alive shard is at session capacity.
    Full,
    /// The key already has an assignment.
    DuplicateKey,
    /// Every shard in the ring is retired.
    NoAliveShard,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Full => write!(f, "every alive shard is at capacity"),
            RouteError::DuplicateKey => write!(f, "key is already assigned"),
            RouteError::NoAliveShard => write!(f, "no alive shard in the ring"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Where a session landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The shard hosting the session.
    pub shard: usize,
    /// `true` when the preferred shard was full and the session was
    /// spilled to a ring successor.
    pub spilled: bool,
}

/// Explicit session→shard assignments with capacity-aware admission.
///
/// See the module docs for how this relates to the [`HashRing`]: the
/// ring proposes, the table disposes (and records).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    ring: HashRing,
    assignments: HashMap<u64, usize>,
    /// Open sessions per shard index.
    load: Vec<usize>,
    /// Per-shard session capacity.
    capacity: usize,
}

impl RoutingTable {
    /// Builds a table over a fresh ring.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `vnodes` or `capacity_per_shard` is zero.
    pub fn new(shards: usize, vnodes: usize, capacity_per_shard: usize) -> Self {
        assert!(capacity_per_shard > 0, "shards must hold sessions");
        RoutingTable {
            ring: HashRing::new(shards, vnodes),
            assignments: HashMap::new(),
            load: vec![0; shards],
            capacity: capacity_per_shard,
        }
    }

    /// The underlying ring (read-only; mutate via
    /// [`RoutingTable::add_shard`] / [`RoutingTable::retire_shard`] so
    /// load tracking stays in sync).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Per-shard session capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Open sessions currently assigned to `shard`.
    pub fn load(&self, shard: usize) -> usize {
        self.load.get(shard).copied().unwrap_or(0)
    }

    /// Total assigned sessions.
    pub fn assigned(&self) -> usize {
        self.assignments.len()
    }

    /// The shard hosting `key`, if assigned.
    pub fn shard_of(&self, key: u64) -> Option<usize> {
        self.assignments.get(&key).copied()
    }

    /// Adds a shard to the ring (returns its index).
    pub fn add_shard(&mut self) -> usize {
        self.load.push(0);
        self.ring.add_shard()
    }

    /// Retires a shard: no *new* sessions route to it. Existing
    /// assignments are pinned by this table and unaffected — draining
    /// them is the fabric's job, not the router's.
    pub fn retire_shard(&mut self, shard: usize) {
        self.ring.retire_shard(shard);
    }

    /// Assigns `key` to its preferred shard, spilling along the ring
    /// when shards are at capacity. Fails only when every alive shard
    /// is full.
    pub fn assign(&mut self, key: u64) -> Result<Placement, RouteError> {
        if self.assignments.contains_key(&key) {
            return Err(RouteError::DuplicateKey);
        }
        let mut any_alive = false;
        let mut placed = None;
        for (rank, shard) in self.ring.candidates(key).enumerate() {
            any_alive = true;
            if self.load[shard] < self.capacity {
                placed = Some(Placement {
                    shard,
                    spilled: rank > 0,
                });
                break;
            }
        }
        match placed {
            Some(p) => {
                self.assignments.insert(key, p.shard);
                self.load[p.shard] += 1;
                Ok(p)
            }
            None if any_alive => Err(RouteError::Full),
            None => Err(RouteError::NoAliveShard),
        }
    }

    /// Releases `key`'s assignment, returning the shard it was on.
    pub fn release(&mut self, key: u64) -> Option<usize> {
        let shard = self.assignments.remove(&key)?;
        self.load[shard] -= 1;
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_deterministic_and_alive() {
        let ring = HashRing::new(4, 32);
        for key in 0..200u64 {
            let a = ring.route(key).expect("alive shards exist");
            let b = ring.route(key).expect("alive shards exist");
            assert_eq!(a, b);
            assert!(ring.is_alive(a));
        }
    }

    #[test]
    fn retiring_all_shards_routes_nowhere() {
        let mut ring = HashRing::new(2, 8);
        ring.retire_shard(0);
        ring.retire_shard(1);
        assert_eq!(ring.route(7), None);
        assert_eq!(ring.alive_count(), 0);
    }

    #[test]
    fn candidates_cover_all_alive_shards_once() {
        let mut ring = HashRing::new(5, 16);
        ring.retire_shard(2);
        let c: Vec<usize> = ring.candidates(42).collect();
        let mut sorted = c.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), c.len(), "no duplicates");
        assert_eq!(c.len(), 4, "every alive shard appears");
        assert!(!c.contains(&2), "retired shard is excluded");
    }

    #[test]
    fn table_spills_then_fills() {
        let mut table = RoutingTable::new(2, 16, 1);
        let a = table.assign(0).expect("room");
        let b = table.assign(1).expect("second shard has room");
        assert_ne!(a.shard, b.shard, "capacity 1 forces distinct shards");
        assert_eq!(table.assign(2), Err(RouteError::Full));
        assert_eq!(table.release(0), Some(a.shard));
        let c = table.assign(2).expect("released capacity is reusable");
        assert_eq!(c.shard, a.shard);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let mut table = RoutingTable::new(2, 16, 4);
        table.assign(9).expect("room");
        assert_eq!(table.assign(9), Err(RouteError::DuplicateKey));
    }
}
