//! The fabric supervisor: watches shard-worker heartbeats, restarts
//! crashed or stalled workers with exponential backoff under a
//! restart budget, sweeps periodic session checkpoints, and — when a
//! shard exhausts its budget — migrates its sessions to ring
//! successors via the routing table.
//!
//! One supervisor thread per fabric. Workers report every exit as a
//! [`ShardEvent`]; the supervisor is the only component that spawns
//! replacement workers, so all restart bookkeeping is single-threaded.

use crate::fabric::{FabricStats, Inner, ShardCmd, ShardStats, ShardThrottle};
use crate::worker::{spawn_worker, WorkerSpawn};
use m2ai_core::serve::SessionCheckpoint;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Self-healing knobs for the fabric (see [`crate::supervisor`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Master switch. Disabled, the fabric behaves like the
    /// pre-supervision design: a crashed or stalled shard stays down
    /// (statistics are still collected at shutdown).
    pub enabled: bool,
    /// Supervisor scan cadence: how often heartbeats, due restarts
    /// and the checkpoint timer are checked.
    pub heartbeat_interval: Duration,
    /// A live worker whose heartbeat counter does not advance for
    /// this long is declared stalled: its queue is abandoned (lost
    /// in-flight events are counted), its output fenced off by epoch,
    /// and a replacement scheduled.
    pub stall_deadline: Duration,
    /// Cadence of the periodic checkpoint sweep. `Duration::ZERO`
    /// disables periodic sweeps ([`crate::ServeFabric::checkpoint_now`]
    /// still works).
    pub checkpoint_interval: Duration,
    /// Delay before the first restart of a shard; doubles per restart
    /// up to [`SupervisionConfig::backoff_max`].
    pub restart_backoff: Duration,
    /// Upper bound on the exponential restart backoff.
    pub backoff_max: Duration,
    /// Restarts allowed per shard over the fabric's lifetime; once
    /// exhausted the shard is declared dead and its sessions migrate
    /// to ring successors.
    pub restart_budget: u32,
    /// Attributed engine panics before a session is quarantined.
    pub poison_threshold: u32,
    /// Single-event probation ticks after a panic restart (exact
    /// poison attribution window).
    pub probation_ticks: u32,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            enabled: true,
            heartbeat_interval: Duration::from_millis(5),
            stall_deadline: Duration::from_millis(1000),
            checkpoint_interval: Duration::from_millis(250),
            restart_backoff: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            restart_budget: 5,
            poison_threshold: 3,
            probation_ticks: 64,
        }
    }
}

/// Why a shard worker exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExitCause {
    /// Fabric shutdown or channel teardown — no restart.
    Shutdown,
    /// `ShardCmd::Die` test hook — restart as a crash.
    Killed,
    /// The engine panicked outside probation — restart into probation.
    Panicked,
    /// The supervisor abandoned this incarnation after a missed
    /// heartbeat deadline; a replacement is already scheduled.
    Retired,
}

/// Worker-to-supervisor notifications.
pub(crate) enum ShardEvent {
    Exited {
        shard: usize,
        epoch: u64,
        cause: ExitCause,
        stats: ShardStats,
        /// The worker's ingress receiver, handed back so a restarted
        /// worker inherits the un-drained queue (absent for retired
        /// incarnations whose queue was already replaced).
        rx: Option<Receiver<ShardCmd>>,
    },
}

struct PendingRestart {
    at: Instant,
    rx: Option<Receiver<ShardCmd>>,
    probation: bool,
}

/// Supervisor-side view of one shard.
struct ShardSup {
    /// A live worker incarnation is believed to be running.
    up: bool,
    /// Permanently failed (budget exhausted, sessions migrated away).
    dead: bool,
    restarts_left: u32,
    backoff: Duration,
    pending: Option<PendingRestart>,
    last_beat: u64,
    beat_seen_at: Instant,
    /// When the shard most recently went down (for recovery latency).
    down_since: Option<Instant>,
    /// The current incarnation's retire flag.
    retired: Arc<AtomicBool>,
    /// Statistics merged across every incarnation.
    stats: ShardStats,
}

pub(crate) struct Supervisor {
    inner: Arc<Inner>,
    events_tx: Sender<ShardEvent>,
    events_rx: Receiver<ShardEvent>,
    states: Vec<ShardSup>,
    last_checkpoint: Instant,
    close_deadline: Option<Instant>,
}

impl Supervisor {
    pub(crate) fn new(
        inner: Arc<Inner>,
        events_tx: Sender<ShardEvent>,
        events_rx: Receiver<ShardEvent>,
        retired_flags: Vec<Arc<AtomicBool>>,
    ) -> Supervisor {
        let now = Instant::now();
        let sup = &inner.cfg.supervision;
        let states = retired_flags
            .into_iter()
            .enumerate()
            .map(|(shard, retired)| ShardSup {
                up: true,
                dead: false,
                restarts_left: sup.restart_budget,
                backoff: sup.restart_backoff,
                pending: None,
                last_beat: 0,
                beat_seen_at: now,
                down_since: None,
                retired,
                stats: ShardStats {
                    shard,
                    ..ShardStats::default()
                },
            })
            .collect();
        Supervisor {
            inner,
            events_tx,
            events_rx,
            states,
            last_checkpoint: now,
            close_deadline: None,
        }
    }

    pub(crate) fn run(mut self) -> FabricStats {
        let scan = self
            .inner
            .cfg
            .supervision
            .heartbeat_interval
            .max(Duration::from_millis(1));
        loop {
            match self.events_rx.recv_timeout(scan) {
                Ok(ev) => self.on_event(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            while let Ok(ev) = self.events_rx.try_recv() {
                self.on_event(ev);
            }
            if self.inner.closing.load(Ordering::SeqCst) {
                if self.ready_to_close() {
                    break;
                }
                continue;
            }
            if self.inner.cfg.supervision.enabled {
                let now = Instant::now();
                self.scan_stalls(now);
                self.run_due_restarts(now);
                self.maybe_checkpoint(now);
            }
        }
        self.final_stats()
    }

    /// During shutdown: wait (bounded) for every live incarnation to
    /// report its exit so the final statistics are complete.
    fn ready_to_close(&mut self) -> bool {
        let deadline = *self
            .close_deadline
            .get_or_insert_with(|| Instant::now() + Duration::from_secs(10));
        self.states.iter().all(|s| !s.up) || Instant::now() >= deadline
    }

    fn on_event(&mut self, ev: ShardEvent) {
        let ShardEvent::Exited {
            shard,
            epoch,
            cause,
            stats,
            rx,
        } = ev;
        merge_stats(&mut self.states[shard].stats, stats);
        let slot = &self.inner.shards[shard];
        if epoch != slot.epoch.load(Ordering::SeqCst) {
            // An abandoned incarnation finally exited; its replacement
            // is already managed, so only its stats matter.
            return;
        }
        slot.down.store(true, Ordering::SeqCst);
        {
            let st = &mut self.states[shard];
            st.up = false;
            if st.down_since.is_none() {
                st.down_since = Some(Instant::now());
            }
        }
        match cause {
            ExitCause::Shutdown | ExitCause::Retired => {}
            ExitCause::Killed | ExitCause::Panicked => {
                if !self.inner.closing.load(Ordering::SeqCst) && self.inner.cfg.supervision.enabled
                {
                    self.schedule_restart(shard, rx, cause == ExitCause::Panicked);
                }
            }
        }
    }

    fn schedule_restart(&mut self, shard: usize, rx: Option<Receiver<ShardCmd>>, probation: bool) {
        if self.states[shard].dead || self.states[shard].pending.is_some() {
            return;
        }
        if self.states[shard].restarts_left == 0 {
            self.declare_dead(shard);
            return;
        }
        let st = &mut self.states[shard];
        st.restarts_left -= 1;
        let delay = st.backoff;
        st.backoff = (st.backoff * 2).min(self.inner.cfg.supervision.backoff_max);
        st.pending = Some(PendingRestart {
            at: Instant::now() + delay,
            rx,
            probation,
        });
    }

    fn scan_stalls(&mut self, now: Instant) {
        let deadline = self.inner.cfg.supervision.stall_deadline;
        for shard in 0..self.states.len() {
            if !self.states[shard].up || self.states[shard].dead {
                continue;
            }
            let beat = self.inner.shards[shard].heartbeat.load(Ordering::Relaxed);
            let st = &mut self.states[shard];
            if beat != st.last_beat {
                st.last_beat = beat;
                st.beat_seen_at = now;
                continue;
            }
            if now.duration_since(st.beat_seen_at) < deadline {
                continue;
            }
            self.abandon_stalled(shard, now);
        }
    }

    /// Declares a live worker stalled: flags it retired, resets its
    /// throttle, swaps in a fresh ingress queue (counting the
    /// abandoned in-flight events as lost), fences its future output
    /// behind the epoch floor, and schedules a replacement.
    fn abandon_stalled(&mut self, shard: usize, now: Instant) {
        self.states[shard].retired.store(true, Ordering::SeqCst);
        let slot = &self.inner.shards[shard];
        slot.throttle
            .store(ShardThrottle::Run as u8, Ordering::SeqCst);
        let lost = slot.depth.swap(0, Ordering::SeqCst);
        if lost > 0 {
            slot.ins.ingress_depth.add(-lost);
            self.inner
                .ground
                .lost_inflight
                .fetch_add(lost as u64, Ordering::Relaxed);
        }
        let (tx, rx) = sync_channel(self.inner.cfg.ingress_capacity);
        slot.swap_sender(tx);
        let epoch = slot.epoch.load(Ordering::SeqCst);
        slot.min_live_epoch.store(epoch + 1, Ordering::SeqCst);
        slot.down.store(true, Ordering::SeqCst);
        self.inner.ground.stalls.fetch_add(1, Ordering::Relaxed);
        // The wedged incarnation will never flush its own recorder;
        // dump what its spans already fed into the shard ring. The
        // swapped-away in-flight events are unrecoverable (counted in
        // `lost_inflight` above) — `SpanStatus::Lost` stays reserved.
        let _ = m2ai_obs::trace::flightrec_dump(shard, "stall");
        let st = &mut self.states[shard];
        st.up = false;
        st.down_since = Some(now);
        self.schedule_restart(shard, Some(rx), false);
    }

    fn run_due_restarts(&mut self, now: Instant) {
        for shard in 0..self.states.len() {
            let due = matches!(&self.states[shard].pending, Some(p) if p.at <= now);
            if !due {
                continue;
            }
            let p = self.states[shard]
                .pending
                .take()
                .expect("checked by `due` above");
            let slot = &self.inner.shards[shard];
            let epoch = slot.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            let rx = match p.rx {
                Some(rx) => rx,
                None => {
                    let (tx, rx) = sync_channel(self.inner.cfg.ingress_capacity);
                    slot.swap_sender(tx);
                    rx
                }
            };
            // Resurrect every session the control plane still assigns
            // here, from its latest checkpoint when one exists.
            let restores: Vec<(u64, Option<SessionCheckpoint>)> = {
                let c = self.inner.lock_control();
                let ckpts = self.inner.lock_checkpoints();
                c.entries
                    .iter()
                    .filter(|(_, e)| e.shard == shard)
                    .map(|(k, _)| (*k, ckpts.get(k).cloned()))
                    .collect()
            };
            let retired = Arc::new(AtomicBool::new(false));
            self.states[shard].retired = Arc::clone(&retired);
            let down_since = self.states[shard].down_since.take();
            slot.ins.restarts.inc();
            self.inner.ground.restarts.fetch_add(1, Ordering::Relaxed);
            // Marker span so a trace timeline shows exactly when the
            // shard's replacement worker was launched (no-op when
            // sampling is off).
            {
                let ctx = m2ai_obs::trace::begin_trace();
                if ctx.is_sampled() {
                    let mut sp = ctx.child("shard_restart");
                    sp.set_shard(shard);
                    sp.end();
                }
            }
            spawn_worker(
                Arc::clone(&self.inner),
                self.events_tx.clone(),
                WorkerSpawn {
                    shard,
                    epoch,
                    rx,
                    restores,
                    probation: p.probation,
                    retired,
                    down_since,
                },
            );
            let st = &mut self.states[shard];
            st.up = true;
            st.last_beat = self.inner.shards[shard].heartbeat.load(Ordering::Relaxed);
            st.beat_seen_at = now;
        }
    }

    /// Restart budget exhausted: retire the shard from the ring and
    /// migrate its sessions to ring successors, restoring each from
    /// its last checkpoint on the target shard. Sessions that no shard
    /// can take are evicted (counted).
    fn declare_dead(&mut self, shard: usize) {
        self.states[shard].dead = true;
        let slot = &self.inner.shards[shard];
        slot.dead.store(true, Ordering::SeqCst);
        slot.down.store(true, Ordering::SeqCst);
        let lost = slot.depth.swap(0, Ordering::SeqCst);
        if lost > 0 {
            slot.ins.ingress_depth.add(-lost);
            self.inner
                .ground
                .lost_inflight
                .fetch_add(lost as u64, Ordering::Relaxed);
        }
        let moved: Vec<(u64, usize, bool)> = {
            let mut c = self.inner.lock_control();
            c.table.retire_shard(shard);
            let keys: Vec<u64> = c
                .entries
                .iter()
                .filter(|(_, e)| e.shard == shard)
                .map(|(k, _)| *k)
                .collect();
            let mut moved = Vec::new();
            for key in keys {
                c.table.release(key);
                match c.table.assign(key) {
                    Ok(p) => {
                        if let Some(e) = c.entries.get_mut(&key) {
                            e.shard = p.shard;
                        }
                        moved.push((key, p.shard, p.spilled));
                    }
                    Err(_) => {
                        c.entries.remove(&key);
                        slot.ins.sessions.add(-1);
                        self.inner.ground.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            moved
        };
        for (key, target, spilled) in moved {
            slot.ins.sessions.add(-1);
            self.inner.shards[target].ins.sessions.add(1);
            if spilled {
                self.inner.ground.spills.fetch_add(1, Ordering::Relaxed);
                self.inner.glob.spills.inc();
            }
            let ckpt = self
                .inner
                .lock_checkpoints()
                .get(&key)
                .cloned()
                .map(Box::new);
            let (tx, rx) = sync_channel(1);
            let delivered = self
                .inner
                .send_with_deadline(
                    target,
                    ShardCmd::Restore {
                        key,
                        ckpt,
                        reply: tx,
                    },
                    Duration::from_millis(500),
                )
                .is_ok()
                && matches!(rx.recv_timeout(Duration::from_secs(2)), Ok(true));
            if !delivered {
                let mut c = self.inner.lock_control();
                if c.entries.remove(&key).is_some() {
                    c.table.release(key);
                    drop(c);
                    self.inner.shards[target].ins.sessions.add(-1);
                    self.inner.ground.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn maybe_checkpoint(&mut self, now: Instant) {
        let interval = self.inner.cfg.supervision.checkpoint_interval;
        if interval.is_zero() || now.duration_since(self.last_checkpoint) < interval {
            return;
        }
        self.last_checkpoint = now;
        // Best-effort: a shard that cannot reply in time keeps its
        // previous checkpoints.
        let _ = self.inner.checkpoint_all(Duration::from_millis(250));
    }

    fn final_stats(self) -> FabricStats {
        let Supervisor { inner, states, .. } = self;
        let g = &inner.ground;
        FabricStats {
            shards: states.into_iter().map(|s| s.stats).collect(),
            ingress_shed: g.ingress_shed.load(Ordering::Relaxed),
            spills: g.spills.load(Ordering::Relaxed),
            rejections: g.rejections.load(Ordering::Relaxed),
            restarts: g.restarts.load(Ordering::Relaxed),
            stalls: g.stalls.load(Ordering::Relaxed),
            quarantined: g.quarantined.load(Ordering::Relaxed),
            evicted: g.evicted.load(Ordering::Relaxed),
            lost_inflight: g.lost_inflight.load(Ordering::Relaxed),
        }
    }
}

fn merge_stats(acc: &mut ShardStats, s: ShardStats) {
    acc.opened += s.opened;
    acc.closed += s.closed;
    acc.predictions += s.predictions;
    acc.suppressed += s.suppressed;
    acc.engine_shed += s.engine_shed;
    acc.ingress_drained += s.ingress_drained;
    acc.restored += s.restored;
    acc.quarantined += s.quarantined;
    acc.poison_events += s.poison_events;
    acc.session_engine_shed.extend(s.session_engine_shed);
}
