//! Sharded serve fabric: from one `ServeEngine` to N of them.
//!
//! A single [`ServeEngine`](m2ai_core::serve::ServeEngine) is a
//! single-threaded tick loop — one core's worth of micro-batched
//! incremental inference over at most `max_sessions` streams. The
//! fabric scales that out: **N engine shards pinned to dedicated
//! worker threads**, a consistent-hash router deciding which shard
//! owns which session, a **bounded ingress queue per shard**, and an
//! admission/shed policy that degrades gracefully under overload
//! instead of refusing globally.
//!
//! ```text
//!                 ┌────────────────────────────────────────────┐
//!  open/close ───►│ RoutingTable (hash ring + explicit pins,   │
//!                 │ per-shard load, capacity spill)            │
//!                 └──────────────┬─────────────────────────────┘
//!                                │ session → shard
//!  push/push_frame ──────────────┤
//!                ┌───────────────┼───────────────┐
//!                ▼               ▼               ▼
//!        bounded ingress   bounded ingress  bounded ingress   (try_send;
//!             │                  │               │             full ⇒ shed)
//!        ┌────▼─────┐      ┌─────▼────┐     ┌────▼─────┐
//!        │ worker 0 │      │ worker 1 │     │ worker N │  one thread each:
//!        │ServeEngine│     │ServeEngine│    │ServeEngine│ drain cmds, tick
//!        └────┬─────┘      └─────┬────┘     └────┬─────┘
//!             └──────────────────┴───────────────┘
//!                                │ Vec<FabricPrediction>
//!                                ▼
//!                        collector channel  ──► poll() / flush()
//! ```
//!
//! ## Routing
//!
//! Placement is two-layered ([`router`]): a salted-splitmix64
//! consistent-hash ring proposes a shard (stable under shard
//! addition: only ~1/N of sessions move), and an **explicit routing
//! table** records where each session actually lives. The two differ
//! exactly when admission *spilled* a session: if the preferred shard
//! is at `serve.max_sessions`, the session walks the ring to the next
//! alive shard with room. Only when every shard is full does
//! [`ServeFabric::open_session`] refuse with
//! [`FabricError::FabricFull`].
//!
//! ## Overload & shed policy
//!
//! Two bounded queues stand between a producer and a prediction, and
//! each sheds differently:
//!
//! * the **shard ingress** (capacity [`FabricConfig::ingress_capacity`])
//!   drops the *arriving* event when full ([`PushOutcome::Shed`]) —
//!   the edge never blocks a producer and never grows unbounded;
//! * the **per-session engine queue** (capacity
//!   `serve.queue_capacity`) sheds its *oldest* pending event —
//!   freshest data wins inside an admitted session.
//!
//! Both shed points are counted per session and exported through
//! `m2ai-obs` (per-shard `m2ai_fabric_*` families; see
//! [`ServeFabric::session_shed`] and [`ShardStats`]).
//!
//! ## Determinism boundary
//!
//! *Per-session* prediction order is guaranteed: a session's events
//! traverse one FIFO ingress into one engine, and the engine steps
//! them in order. *Numerics* are batching-invariant: the kernels
//! compute each output row as one accumulator chain, so whatever
//! micro-batches the scheduler happens to form, a session's
//! prediction values are bit-identical to the same frames stepped
//! serially — a fabric with one shard reproduces a bare `ServeEngine`
//! bit-for-bit (pinned by `tests/fabric_equivalence.rs`).
//! *Cross-session* (and cross-shard) interleaving in
//! [`ServeFabric::poll`] output is **not** deterministic; consumers
//! needing a global order must sort on `(time_s, session)` themselves.
//!
//! ## Self-healing (supervision)
//!
//! Worker failure is a first-class input ([`supervisor`] module): every
//! engine call runs under `catch_unwind`, workers heartbeat once per
//! loop, and a dedicated supervisor thread
//!
//! * **restarts** a crashed worker (panic or [`ServeFabric::kill_shard`])
//!   with exponential backoff under a per-shard restart budget — the
//!   replacement inherits the un-drained ingress queue and resurrects
//!   every resident session from its last checkpoint;
//! * **abandons** a stalled worker whose heartbeat misses
//!   [`SupervisionConfig::stall_deadline`]: its queue is swapped out
//!   (in-flight events counted as lost), its late output fenced off by
//!   an epoch floor, and a replacement scheduled;
//! * **migrates** sessions off a shard that exhausts its budget: the
//!   routing table retires the shard and each session re-assigns to a
//!   ring successor, restored from checkpoint;
//! * **checkpoints** sessions periodically
//!   ([`SupervisionConfig::checkpoint_interval`], or on demand via
//!   [`ServeFabric::checkpoint_now`]) so restarts resume streams
//!   instead of losing context;
//! * **quarantines** poison inputs: a session whose data panics the
//!   engine [`SupervisionConfig::poison_threshold`] times (attributed
//!   exactly during single-event post-restart probation) is ejected and
//!   its key refuses further data with [`FabricError::Quarantined`].
//!
//! Supervision preserves the determinism contract: heartbeats,
//! checkpoints (clones) and probation (a batch-size cap) change
//! scheduling, never values.
//!
//! ## Test hooks
//!
//! [`ServeFabric::set_throttle`] can hold a shard's ticks
//! ([`ShardThrottle::HoldTicks`]), freeze its ingress consumption
//! entirely ([`ShardThrottle::Freeze`]), or simulate a wedged worker
//! ([`ShardThrottle::Stall`]); [`ServeFabric::kill_shard`] simulates a
//! crash. Together they make shed points, stall detection and the
//! restart path deterministic for the concurrency test battery — and
//! the throttles double as operational drain/brownout controls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod metrics;
pub mod router;
mod supervisor;
mod worker;

pub use fabric::{
    FabricConfig, FabricError, FabricPrediction, FabricStats, PushOutcome, ServeFabric, SessionKey,
    ShardStats, ShardThrottle,
};
pub use supervisor::SupervisionConfig;
