//! The shard worker: owns one [`ServeEngine`], drains its bounded
//! ingress queue, and runs every engine call under `catch_unwind` so
//! a poisoned input cannot take the thread (and 1/N of all sessions)
//! down with it. Exits — normal or abnormal — are reported to the
//! supervisor as [`ShardEvent`]s.

use crate::fabric::{
    FabricPrediction, Inner, OutBatch, SessionKey, ShardCmd, ShardStats, ShardThrottle,
};
use crate::metrics::ShardInstruments;
use crate::supervisor::{ExitCause, ShardEvent};
use m2ai_core::serve::{ServeEngine, ServePrediction, SessionCheckpoint, SessionId};
use m2ai_obs::trace::{self, SpanStatus, TraceContext};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Commands drained per worker loop iteration before a tick gets a
/// chance to run — bounds ingress-vs-tick starvation both ways.
const CMD_BUDGET: usize = 64;

/// Everything a (re)spawned worker needs beyond the shared [`Inner`].
pub(crate) struct WorkerSpawn {
    pub shard: usize,
    /// Incarnation number, stamped on every output batch.
    pub epoch: u64,
    /// The ingress receiver — the original queue on first spawn, the
    /// inherited queue after a crash restart, or a fresh one after a
    /// stall abandonment.
    pub rx: Receiver<ShardCmd>,
    /// Sessions to resurrect before serving: `(key, checkpoint)`.
    /// `None` means no checkpoint existed — the session restarts with
    /// fresh stream context.
    pub restores: Vec<(u64, Option<SessionCheckpoint>)>,
    /// Restarting after an engine panic: tick one event at a time for
    /// a while so a recurring poison input is attributed exactly.
    pub probation: bool,
    /// Set by the supervisor when this incarnation has been abandoned
    /// (stall path) and must exit without touching shared state.
    pub retired: Arc<AtomicBool>,
    /// When the shard went down, for the recovery-latency histogram
    /// (`None` on first spawn).
    pub down_since: Option<Instant>,
}

/// Spawns a shard worker thread. Session restores run before the
/// first command is drained, so per-session FIFO order is preserved
/// across a restart: queued events land in an engine that has already
/// resumed from checkpoint.
pub(crate) fn spawn_worker(inner: Arc<Inner>, events: Sender<ShardEvent>, spawn: WorkerSpawn) {
    let name = format!("m2ai-shard-{}", spawn.shard);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let shard = spawn.shard;
            // Spans recorded on this thread (engine infer/emit spans)
            // carry the shard attribution and land in the shard's
            // flight-recorder ring.
            trace::set_thread_shard(Some(shard));
            let mut engine = inner.new_engine();
            let mut ids = HashMap::new();
            let mut keys = HashMap::new();
            let mut stats = ShardStats {
                shard,
                ..ShardStats::default()
            };
            let mut evict: Vec<u64> = Vec::new();
            for (key, ckpt) in spawn.restores {
                let admitted = match ckpt {
                    Some(c) => engine
                        .restore_session(c)
                        .inspect(|_| stats.restored += 1)
                        .or_else(|_| engine.open_session()),
                    None => engine.open_session(),
                };
                match admitted {
                    Ok(id) => {
                        ids.insert(key, id);
                        keys.insert(id, key);
                    }
                    Err(_) => evict.push(key),
                }
            }
            if !evict.is_empty() {
                // Routing admission reserves engine capacity, so this
                // is unreachable in practice — degrade gracefully
                // rather than panicking the fresh worker.
                let mut c = inner.lock_control();
                for key in evict {
                    if c.entries.remove(&key).is_some() {
                        c.table.release(key);
                        inner.shards[shard].ins.sessions.add(-1);
                        inner.ground.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if let Some(t0) = spawn.down_since {
                inner
                    .glob
                    .recovery_seconds
                    .observe(t0.elapsed().as_secs_f64());
            }
            let slot = &inner.shards[shard];
            let throttle = Arc::clone(&slot.throttle);
            let ack = Arc::clone(&slot.ack);
            let heartbeat = Arc::clone(&slot.heartbeat);
            let ins = slot.ins.clone();
            slot.down.store(false, Ordering::SeqCst);
            let worker = Worker {
                shard,
                epoch: spawn.epoch,
                engine,
                rx: spawn.rx,
                events,
                out: inner.out_tx.clone(),
                throttle,
                ack,
                heartbeat,
                retired: spawn.retired,
                ins,
                ids,
                keys,
                stats,
                probation_left: if spawn.probation {
                    inner.cfg.supervision.probation_ticks
                } else {
                    0
                },
                inner: Arc::clone(&inner),
            };
            worker.run();
        })
        .expect("spawn shard worker");
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum TickOutcome {
    /// Tick ran (possibly emitting predictions).
    Ok,
    /// Tick panicked but was attributed under probation; the worker
    /// keeps running.
    Handled,
    /// Tick panicked outside probation; the worker must exit and let
    /// the supervisor restart it.
    Fatal,
}

/// One shard's worker: owns the engine, its ingress receiver and the
/// key↔slot maps.
struct Worker {
    shard: usize,
    epoch: u64,
    engine: ServeEngine,
    rx: Receiver<ShardCmd>,
    events: Sender<ShardEvent>,
    out: Sender<OutBatch>,
    throttle: Arc<AtomicU8>,
    ack: Arc<AtomicU8>,
    heartbeat: Arc<AtomicU64>,
    retired: Arc<AtomicBool>,
    ins: ShardInstruments,
    ids: HashMap<u64, SessionId>,
    keys: HashMap<SessionId, u64>,
    stats: ShardStats,
    /// Remaining single-event probation ticks after a panic restart.
    probation_left: u32,
    inner: Arc<Inner>,
}

impl Worker {
    fn run(mut self) {
        loop {
            if self.inner.closing.load(Ordering::SeqCst) {
                return self.finish(ExitCause::Shutdown);
            }
            if self.retired.load(Ordering::SeqCst) {
                return self.finish(ExitCause::Retired);
            }
            let throttle = ShardThrottle::from_u8(self.throttle.load(Ordering::SeqCst));
            self.ack.store(throttle as u8, Ordering::SeqCst);
            if throttle == ShardThrottle::Stall {
                // Simulated wedge: acknowledged, then neither
                // heartbeats nor consumes. Only `closing` or the
                // supervisor's retire flag gets us out.
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            self.heartbeat.fetch_add(1, Ordering::Relaxed);
            self.ins.heartbeats.inc();
            // Drain this thread's span buffer once per loop so sampled
            // spans reach the collector promptly (no-op when empty).
            trace::flush_thread_spans();
            if throttle == ShardThrottle::Freeze {
                std::thread::sleep(Duration::from_micros(100));
                continue;
            }
            let mut worked = false;
            for _ in 0..CMD_BUDGET {
                match self.rx.try_recv() {
                    Ok(cmd) => {
                        worked = true;
                        if let Some(cause) = self.apply(cmd) {
                            return self.finish(cause);
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return self.finish(ExitCause::Shutdown),
                }
            }
            if throttle != ShardThrottle::HoldTicks && self.engine.pending() > 0 {
                match self.guarded_tick() {
                    TickOutcome::Fatal => return self.finish(ExitCause::Panicked),
                    TickOutcome::Ok | TickOutcome::Handled => {}
                }
                worked = true;
            }
            if !worked {
                // Idle: block briefly so an idle shard costs ~nothing
                // but still re-reads its throttle regularly.
                match self.rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(cmd) => {
                        if let Some(cause) = self.apply(cmd) {
                            return self.finish(cause);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return self.finish(ExitCause::Shutdown),
                }
            }
        }
    }

    /// Applies one command; `Some(cause)` means the worker must exit.
    fn apply(&mut self, cmd: ShardCmd) -> Option<ExitCause> {
        match cmd {
            ShardCmd::Open { key, reply } => {
                // The key may already be resident if this worker
                // restored it from the control table before the queued
                // Open was drained; the open still counts (it is the
                // one-to-one record of a successful `open_session`).
                if self.ids.contains_key(&key) {
                    self.stats.opened += 1;
                    let _ = reply.send(true);
                } else {
                    match self.engine.open_session() {
                        Ok(id) => {
                            self.ids.insert(key, id);
                            self.keys.insert(id, key);
                            self.stats.opened += 1;
                            let _ = reply.send(true);
                        }
                        Err(_) => {
                            let _ = reply.send(false);
                        }
                    }
                }
            }
            ShardCmd::Restore { key, ckpt, reply } => {
                if self.ids.contains_key(&key) {
                    let _ = reply.send(true);
                    return None;
                }
                let admitted = match ckpt {
                    Some(c) => self
                        .engine
                        .restore_session(*c)
                        .inspect(|_| self.stats.restored += 1)
                        .or_else(|_| self.engine.open_session()),
                    None => self.engine.open_session(),
                };
                match admitted {
                    Ok(id) => {
                        self.ids.insert(key, id);
                        self.keys.insert(id, key);
                        let _ = reply.send(true);
                    }
                    Err(_) => {
                        let _ = reply.send(false);
                    }
                }
            }
            ShardCmd::Close { key } => {
                if let Some(id) = self.ids.remove(&key) {
                    self.harvest_engine_shed(key, id);
                    self.keys.remove(&id);
                    let _ = self.engine.close_session(id);
                    self.stats.closed += 1;
                }
            }
            ShardCmd::Frame {
                key,
                time_s,
                frame,
                health,
                ctx,
                enqueued_us,
            } => {
                self.note_drained();
                let ictx = self.finish_ingress(ctx, enqueued_us, key);
                if let Some(&id) = self.ids.get(&key) {
                    let engine = &mut self.engine;
                    match catch_unwind(AssertUnwindSafe(|| {
                        engine.push_frame_traced(id, time_s, frame, health, ictx)
                    })) {
                        Ok(Ok(report)) => self.stats.engine_shed += report.shed as u64,
                        Ok(Err(_)) => {}
                        Err(_) => self.note_poison(Some(key)),
                    }
                }
            }
            ShardCmd::Readings {
                key,
                readings,
                ctx,
                enqueued_us,
            } => {
                self.note_drained();
                let ictx = self.finish_ingress(ctx, enqueued_us, key);
                if let Some(&id) = self.ids.get(&key) {
                    let engine = &mut self.engine;
                    match catch_unwind(AssertUnwindSafe(|| engine.push_traced(id, &readings, ictx)))
                    {
                        Ok(Ok(report)) => self.stats.engine_shed += report.shed as u64,
                        Ok(Err(_)) => {}
                        Err(_) => self.note_poison(Some(key)),
                    }
                }
            }
            ShardCmd::Checkpoint { reply } => {
                let snaps: Vec<(u64, SessionCheckpoint)> = self
                    .engine
                    .export_sessions()
                    .into_iter()
                    .filter_map(|(id, ck)| self.keys.get(&id).map(|&k| (k, ck)))
                    .collect();
                let _ = reply.send(snaps);
            }
            ShardCmd::Flush { reply } => {
                while self.engine.pending() > 0 {
                    // A long drain must not read as a stall.
                    self.heartbeat.fetch_add(1, Ordering::Relaxed);
                    match self.guarded_tick() {
                        TickOutcome::Fatal => return Some(ExitCause::Panicked),
                        TickOutcome::Ok | TickOutcome::Handled => {}
                    }
                }
                let _ = reply.send(());
            }
            ShardCmd::Die => {
                // Chaos-injected kill: leave a postmortem artifact
                // before the supervisor sees the abnormal exit.
                trace::flush_thread_spans();
                let _ = trace::flightrec_dump(self.shard, "kill");
                return Some(ExitCause::Killed);
            }
        }
        None
    }

    fn note_drained(&mut self) {
        self.ins.ingress_depth.add(-1);
        self.inner.shards[self.shard]
            .depth
            .fetch_sub(1, Ordering::Relaxed);
        self.stats.ingress_drained += 1;
    }

    /// Closes the queue-wait leg of a sampled data event: records an
    /// "ingress" span from `enqueued_us` (stamped at the fabric edge)
    /// to now, observes the wait in the shard's ingress-wait histogram
    /// (with a trace exemplar), and returns the span's context so the
    /// engine's extract/infer/emit spans parent under it. Unsampled
    /// events pass straight through as [`TraceContext::NONE`].
    fn finish_ingress(&self, ctx: TraceContext, enqueued_us: u64, key: u64) -> TraceContext {
        if !ctx.is_sampled() {
            return ctx;
        }
        let now = trace::clock_us();
        let mut sp = ctx.child_at("ingress", enqueued_us);
        sp.set_session(key);
        sp.set_shard(self.shard);
        let out = sp.ctx();
        sp.end_at(now, SpanStatus::Ok);
        let wait_s = now.saturating_sub(enqueued_us) as f64 * 1e-6;
        self.ins.ingress_wait_seconds.observe(wait_s);
        trace::record_exemplar(
            "m2ai_fabric_ingress_wait_seconds",
            wait_s,
            ctx,
            key as i64,
            self.shard as i64,
        );
        out
    }

    /// One engine tick under `catch_unwind`. Under probation the tick
    /// is capped at a single event, with the culprit session computed
    /// beforehand ([`ServeEngine::next_ready`]) so a panic is
    /// attributed *exactly*; probation changes scheduling, never
    /// values (see the determinism contract).
    fn guarded_tick(&mut self) -> TickOutcome {
        if self.probation_left > 0 {
            let suspect = self
                .engine
                .next_ready()
                .and_then(|id| self.keys.get(&id).copied());
            let span = self.ins.tick_seconds.time();
            let engine = &mut self.engine;
            let result = catch_unwind(AssertUnwindSafe(|| engine.tick_limited(1)));
            span.end();
            match result {
                Ok(preds) => {
                    self.probation_left -= 1;
                    self.emit(preds);
                    TickOutcome::Ok
                }
                Err(_) => {
                    trace::flush_thread_spans();
                    let _ = trace::flightrec_dump(self.shard, "panic");
                    self.note_poison(suspect);
                    TickOutcome::Handled
                }
            }
        } else {
            let span = self.ins.tick_seconds.time();
            let engine = &mut self.engine;
            let result = catch_unwind(AssertUnwindSafe(|| engine.tick()));
            span.end();
            match result {
                Ok(preds) => {
                    self.emit(preds);
                    TickOutcome::Ok
                }
                Err(_) => {
                    // A full batch spans sessions, so the culprit is
                    // ambiguous — restart into probation and let the
                    // single-event ticks attribute it.
                    trace::flush_thread_spans();
                    let _ = trace::flightrec_dump(self.shard, "panic");
                    self.stats.poison_events += 1;
                    TickOutcome::Fatal
                }
            }
        }
    }

    /// Records an attributed engine panic against `key`; at the
    /// configured threshold the session is quarantined: ejected from
    /// the engine, the routing table and the checkpoint store, and its
    /// key permanently refuses data.
    fn note_poison(&mut self, suspect: Option<u64>) {
        self.stats.poison_events += 1;
        let Some(key) = suspect else { return };
        let threshold = self.inner.cfg.supervision.poison_threshold.max(1);
        let mut entry_existed = false;
        let tripped = {
            let mut c = self.inner.lock_control();
            let count = {
                let n = c.poison_counts.entry(key).or_insert(0);
                *n += 1;
                *n
            };
            if count < threshold || c.quarantined.contains(&key) {
                None
            } else {
                c.quarantined.insert(key);
                if c.entries.remove(&key).is_some() {
                    c.table.release(key);
                    entry_existed = true;
                }
                Some(count)
            }
        };
        let Some(count) = tripped else { return };
        if let Some(id) = self.ids.remove(&key) {
            self.harvest_engine_shed(key, id);
            self.keys.remove(&id);
            let _ = self.engine.close_session(id);
        }
        if entry_existed {
            self.ins.sessions.add(-1);
        }
        self.inner.lock_checkpoints().remove(&key);
        self.stats.quarantined += 1;
        self.inner
            .ground
            .quarantined
            .fetch_add(1, Ordering::Relaxed);
        self.inner.glob.quarantined.inc();
        trace::flush_thread_spans();
        let _ = trace::flightrec_dump(self.shard, "quarantine");
        eprintln!(
            "m2ai-fabric: shard {}: quarantined session {key} after {count} engine panics",
            self.shard
        );
    }

    fn emit(&mut self, preds: Vec<ServePrediction>) {
        if preds.is_empty() {
            return;
        }
        self.stats.predictions += preds.len() as u64;
        self.ins.predictions.add(preds.len() as u64);
        let batch: Vec<FabricPrediction> = preds
            .into_iter()
            .map(|p| FabricPrediction {
                session: SessionKey(self.keys[&p.session]),
                shard: self.shard,
                prediction: p,
            })
            .collect();
        // The collector may already be gone during teardown; the
        // predictions are simply dropped then.
        let _ = self.out.send((self.shard, self.epoch, batch));
    }

    /// Records a closing session's engine-side shed count into the
    /// shard stats (the engine forgets the count when the slot frees).
    fn harvest_engine_shed(&mut self, key: u64, id: SessionId) {
        if let Ok(shed) = self.engine.session_shed(id) {
            if shed > 0 {
                self.stats.session_engine_shed.push((key, shed as u64));
            }
        }
    }

    fn finish(mut self, cause: ExitCause) {
        // Whatever the exit cause, sampled spans buffered on this
        // thread must not die with it.
        trace::flush_thread_spans();
        let open: Vec<(u64, SessionId)> = self.ids.drain().collect();
        for (key, id) in open {
            self.harvest_engine_shed(key, id);
        }
        self.stats.suppressed = self.engine.suppressed() as u64;
        self.stats.engine_shed = self.engine.shed() as u64;
        let Worker {
            rx,
            events,
            stats,
            shard,
            epoch,
            ..
        } = self;
        // A retired (abandoned) incarnation's queue was already
        // replaced — dropping it here discards only already-counted
        // lost in-flight events. Every other exit hands the queue back
        // so a restarted worker inherits the un-drained commands.
        let rx = match cause {
            ExitCause::Retired => None,
            _ => Some(rx),
        };
        let _ = events.send(ShardEvent::Exited {
            shard,
            epoch,
            cause,
            stats,
            rx,
        });
    }
}
