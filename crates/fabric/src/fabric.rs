//! The sharded serve fabric: N [`ServeEngine`] shards on dedicated
//! worker threads behind consistent-hash routing.
//!
//! See the crate docs for the architecture and the determinism
//! contract; this module holds the moving parts.

use crate::metrics::{fabric_instruments, shard_instruments, FabricInstruments, ShardInstruments};
use crate::router::{RouteError, RoutingTable};
use m2ai_core::frames::FrameBuilder;
use m2ai_core::online::HealthState;
use m2ai_core::serve::{ServeConfig, ServeEngine, ServePrediction, SessionId};
use m2ai_nn::model::SequenceClassifier;
use m2ai_rfsim::reading::TagReading;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError,
    TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Commands a shard worker drains from its bounded ingress queue.
enum ShardCmd {
    /// Open an engine session for `key`; ack when the slot exists.
    Open {
        key: u64,
        reply: SyncSender<()>,
    },
    /// Close `key`'s engine session (pending events are discarded).
    Close {
        key: u64,
    },
    /// One pre-extracted frame for `key`.
    Frame {
        key: u64,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
    },
    /// A batch of raw tag readings for `key`.
    Readings {
        key: u64,
        readings: Vec<TagReading>,
    },
    /// Tick until every pending queue is empty, then ack — the
    /// fabric-wide barrier underneath [`ServeFabric::flush`].
    Flush {
        reply: SyncSender<()>,
    },
    Shutdown,
}

/// Worker throttle states, used by tests and operational drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardThrottle {
    /// Normal operation: drain ingress, tick the engine.
    Run,
    /// Keep draining ingress into the engine, but do not tick — events
    /// pile up in the per-session queues (engine-side backpressure
    /// becomes deterministic).
    HoldTicks,
    /// Stop consuming the ingress entirely — the bounded queue fills
    /// and pushes shed at the fabric edge (ingress backpressure
    /// becomes deterministic).
    Freeze,
}

impl ShardThrottle {
    fn from_u8(v: u8) -> ShardThrottle {
        match v {
            1 => ShardThrottle::HoldTicks,
            2 => ShardThrottle::Freeze,
            _ => ShardThrottle::Run,
        }
    }
}

/// Errors surfaced by the fabric's control and data planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// Admission refused: every alive shard is at session capacity.
    FabricFull,
    /// The key does not name an open fabric session.
    UnknownSession,
    /// The session's shard worker has terminated.
    ShardDown,
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::FabricFull => write!(f, "admission refused: every shard is full"),
            FabricError::UnknownSession => write!(f, "no such fabric session"),
            FabricError::ShardDown => write!(f, "shard worker terminated"),
        }
    }
}

impl std::error::Error for FabricError {}

/// Outcome of a data-plane push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The event was queued on the session's shard.
    Enqueued,
    /// The shard's ingress queue was full; the event was dropped at
    /// the fabric edge and counted against the session.
    Shed,
}

/// Opaque fabric-wide session handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionKey(u64);

impl SessionKey {
    /// The raw routing key (stable for the session's lifetime).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A prediction emitted by some shard's engine, tagged with its fabric
/// session and shard.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricPrediction {
    /// Fabric-wide session handle the prediction belongs to.
    pub session: SessionKey,
    /// Shard index that served it.
    pub shard: usize,
    /// The engine's prediction (its `session` field is the *engine
    /// local* slot id, only unique within one shard).
    pub prediction: ServePrediction,
}

/// Fabric sizing knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Number of engine shards (worker threads).
    pub shards: usize,
    /// Consistent-hash ring points per shard.
    pub vnodes: usize,
    /// Bound on each shard's ingress command queue; data pushed at a
    /// full queue is shed at the fabric edge.
    pub ingress_capacity: usize,
    /// Per-shard engine configuration. `serve.max_sessions` doubles as
    /// the router's per-shard session capacity.
    pub serve: ServeConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            shards: 4,
            vnodes: 64,
            ingress_capacity: 256,
            serve: ServeConfig::default(),
        }
    }
}

/// End-of-life statistics for one shard, returned by
/// [`ServeFabric::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Sessions opened on this shard.
    pub opened: u64,
    /// Sessions closed on this shard.
    pub closed: u64,
    /// Predictions its engine emitted.
    pub predictions: u64,
    /// Predictions its engine suppressed (stale / non-finite /
    /// low-confidence).
    pub suppressed: u64,
    /// Events shed from per-session engine queues (oldest-first
    /// backpressure inside the engine).
    pub engine_shed: u64,
    /// Data events the worker drained from its ingress queue.
    pub ingress_drained: u64,
    /// Engine-side sheds per session key (non-zero entries only,
    /// harvested when sessions close and at shutdown).
    pub session_engine_shed: Vec<(u64, u64)>,
}

/// Whole-fabric statistics returned by [`ServeFabric::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Data events shed at shard ingresses (fabric edge).
    pub ingress_shed: u64,
    /// Sessions admitted by spilling past a full preferred shard.
    pub spills: u64,
    /// Admissions refused with every shard full.
    pub rejections: u64,
}

/// Control-plane state guarded by one mutex: the routing table plus
/// the per-session shed counters shared with the data plane.
struct ControlState {
    table: RoutingTable,
    entries: HashMap<u64, SessionEntry>,
    next_key: u64,
}

struct SessionEntry {
    shard: usize,
    ingress_shed: Arc<AtomicU64>,
}

/// Ground-truth fabric counters (independent of the obs registry so
/// tests can cross-check the two).
#[derive(Default)]
struct GroundCounters {
    ingress_shed: AtomicU64,
    spills: AtomicU64,
    rejections: AtomicU64,
}

/// N engine shards on dedicated worker threads behind consistent-hash
/// session routing. See the crate docs.
pub struct ServeFabric {
    control: Mutex<ControlState>,
    senders: Vec<SyncSender<ShardCmd>>,
    outputs: Mutex<Receiver<Vec<FabricPrediction>>>,
    workers: Vec<JoinHandle<ShardStats>>,
    throttles: Vec<Arc<AtomicU8>>,
    throttle_acks: Vec<Arc<AtomicU8>>,
    closing: Arc<AtomicBool>,
    instruments: Vec<ShardInstruments>,
    glob: &'static FabricInstruments,
    ground: GroundCounters,
}

impl std::fmt::Debug for ServeFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFabric")
            .field("shards", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl ServeFabric {
    /// Spins up the fabric: builds the routing table, clones the model
    /// and frame builder into every shard, and starts one worker
    /// thread per shard.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards`, `cfg.vnodes` or `cfg.ingress_capacity`
    /// is zero (the engine's own config asserts cover `cfg.serve`), or
    /// if a worker thread cannot be spawned.
    pub fn new(model: SequenceClassifier, builder: FrameBuilder, cfg: FabricConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.vnodes > 0, "need at least one virtual node");
        assert!(cfg.ingress_capacity > 0, "ingress must hold an event");
        let table = RoutingTable::new(cfg.shards, cfg.vnodes, cfg.serve.max_sessions);
        let (out_tx, out_rx) = channel();
        let closing = Arc::new(AtomicBool::new(false));
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        let mut throttles = Vec::with_capacity(cfg.shards);
        let mut throttle_acks = Vec::with_capacity(cfg.shards);
        let mut instruments = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = sync_channel(cfg.ingress_capacity);
            let throttle = Arc::new(AtomicU8::new(ShardThrottle::Run as u8));
            let ack = Arc::new(AtomicU8::new(ShardThrottle::Run as u8));
            let ins = shard_instruments(shard);
            let worker = Worker {
                shard,
                engine: ServeEngine::new(model.clone(), builder.clone(), cfg.serve.clone()),
                rx,
                out: out_tx.clone(),
                throttle: Arc::clone(&throttle),
                ack: Arc::clone(&ack),
                closing: Arc::clone(&closing),
                ins: ins.clone(),
                ids: HashMap::new(),
                keys: HashMap::new(),
                stats: ShardStats {
                    shard,
                    ..ShardStats::default()
                },
            };
            let handle = std::thread::Builder::new()
                .name(format!("m2ai-shard-{shard}"))
                .spawn(move || worker.run())
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
            throttles.push(throttle);
            throttle_acks.push(ack);
            instruments.push(ins);
        }
        ServeFabric {
            control: Mutex::new(ControlState {
                table,
                entries: HashMap::new(),
                next_key: 0,
            }),
            senders,
            outputs: Mutex::new(out_rx),
            workers,
            throttles,
            throttle_acks,
            closing,
            instruments,
            glob: fabric_instruments(),
            ground: GroundCounters::default(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Open sessions across the whole fabric.
    pub fn sessions(&self) -> usize {
        self.lock_control().entries.len()
    }

    /// The shard hosting `key`.
    pub fn shard_of(&self, key: SessionKey) -> Result<usize, FabricError> {
        self.lock_control()
            .entries
            .get(&key.0)
            .map(|e| e.shard)
            .ok_or(FabricError::UnknownSession)
    }

    /// Data events shed at the fabric edge for one session (ingress
    /// backpressure; engine-side sheds are reported per shard in
    /// [`ShardStats`]).
    pub fn session_shed(&self, key: SessionKey) -> Result<u64, FabricError> {
        self.lock_control()
            .entries
            .get(&key.0)
            .map(|e| e.ingress_shed.load(Ordering::Relaxed))
            .ok_or(FabricError::UnknownSession)
    }

    /// Total ingress-shed events across the fabric (ground truth,
    /// mirrored by the `m2ai_fabric_ingress_shed_total` family).
    pub fn ingress_shed(&self) -> u64 {
        self.ground.ingress_shed.load(Ordering::Relaxed)
    }

    /// Sessions spilled past their preferred shard so far.
    pub fn spills(&self) -> u64 {
        self.ground.spills.load(Ordering::Relaxed)
    }

    /// Admissions refused with every shard full so far.
    pub fn rejections(&self) -> u64 {
        self.ground.rejections.load(Ordering::Relaxed)
    }

    fn lock_control(&self) -> std::sync::MutexGuard<'_, ControlState> {
        // Control mutations are small and never panic mid-update;
        // tolerate poison so one failed caller can't wedge the fabric.
        self.control.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a session: consistent-hash placement with capacity
    /// spill, then a synchronous slot open on the owning shard (so a
    /// returned key is immediately pushable and admission can never
    /// race ahead of the engine's slot table).
    pub fn open_session(&self) -> Result<SessionKey, FabricError> {
        let (key, shard, spilled) = {
            let mut c = self.lock_control();
            let key = c.next_key;
            let placement = match c.table.assign(key) {
                Ok(p) => p,
                Err(RouteError::Full) | Err(RouteError::NoAliveShard) => {
                    self.ground.rejections.fetch_add(1, Ordering::Relaxed);
                    self.glob.rejections.inc();
                    return Err(FabricError::FabricFull);
                }
                Err(RouteError::DuplicateKey) => unreachable!("next_key is never reused"),
            };
            c.next_key += 1;
            c.entries.insert(
                key,
                SessionEntry {
                    shard: placement.shard,
                    ingress_shed: Arc::new(AtomicU64::new(0)),
                },
            );
            (key, placement.shard, placement.spilled)
        };
        if spilled {
            self.ground.spills.fetch_add(1, Ordering::Relaxed);
            self.glob.spills.inc();
        }
        self.instruments[shard].sessions.add(1);
        let (ack_tx, ack_rx) = sync_channel(1);
        let sent = self.senders[shard]
            .send(ShardCmd::Open { key, reply: ack_tx })
            .is_ok();
        if !sent || ack_rx.recv().is_err() {
            let mut c = self.lock_control();
            c.table.release(key);
            c.entries.remove(&key);
            drop(c);
            self.instruments[shard].sessions.add(-1);
            return Err(FabricError::ShardDown);
        }
        Ok(SessionKey(key))
    }

    /// Closes a session. The close is queued in session order on its
    /// shard; the routing-table slot frees immediately, so a
    /// subsequent open can reuse the capacity (the shard's FIFO
    /// ingress guarantees the engine processes the close first).
    pub fn close_session(&self, key: SessionKey) -> Result<(), FabricError> {
        let shard = {
            let mut c = self.lock_control();
            let entry = c
                .entries
                .remove(&key.0)
                .ok_or(FabricError::UnknownSession)?;
            c.table.release(key.0);
            entry.shard
        };
        self.instruments[shard].sessions.add(-1);
        self.senders[shard]
            .send(ShardCmd::Close { key: key.0 })
            .map_err(|_| FabricError::ShardDown)
    }

    /// Feeds one pre-extracted frame to a session. Returns
    /// [`PushOutcome::Shed`] (never blocks) when the shard's ingress
    /// is full.
    pub fn push_frame(
        &self,
        key: SessionKey,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
    ) -> Result<PushOutcome, FabricError> {
        self.push_data(key, |key| ShardCmd::Frame {
            key,
            time_s,
            frame,
            health,
        })
    }

    /// Feeds raw tag readings to a session (the shard runs frame
    /// extraction inside its worker). The whole batch is one ingress
    /// event: it is enqueued or shed atomically.
    pub fn push(
        &self,
        key: SessionKey,
        readings: Vec<TagReading>,
    ) -> Result<PushOutcome, FabricError> {
        self.push_data(key, |key| ShardCmd::Readings { key, readings })
    }

    fn push_data(
        &self,
        key: SessionKey,
        make: impl FnOnce(u64) -> ShardCmd,
    ) -> Result<PushOutcome, FabricError> {
        let (shard, shed) = {
            let c = self.lock_control();
            let entry = c.entries.get(&key.0).ok_or(FabricError::UnknownSession)?;
            (entry.shard, Arc::clone(&entry.ingress_shed))
        };
        match self.senders[shard].try_send(make(key.0)) {
            Ok(()) => {
                self.instruments[shard].ingress_depth.add(1);
                Ok(PushOutcome::Enqueued)
            }
            Err(TrySendError::Full(_)) => {
                shed.fetch_add(1, Ordering::Relaxed);
                self.ground.ingress_shed.fetch_add(1, Ordering::Relaxed);
                self.instruments[shard].ingress_shed.inc();
                Ok(PushOutcome::Shed)
            }
            Err(TrySendError::Disconnected(_)) => Err(FabricError::ShardDown),
        }
    }

    /// Drains every prediction the shards have emitted so far, in
    /// arrival order at the collector. Per-session order is the
    /// session's push order; cross-session (and cross-shard) order is
    /// unspecified — see the crate docs' determinism boundary.
    pub fn poll(&self) -> Vec<FabricPrediction> {
        let rx = self.outputs.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        while let Ok(batch) = rx.try_recv() {
            out.extend(batch);
        }
        out
    }

    /// Barrier: waits until every shard has drained its ingress queue
    /// *and* every engine's pending queues are empty, then returns all
    /// predictions emitted up to that point. Overrides
    /// [`ShardThrottle::HoldTicks`]; do not call while a shard is
    /// [`ShardThrottle::Freeze`]-d (the barrier would wait forever for
    /// a worker that is not consuming).
    pub fn flush(&self) -> Vec<FabricPrediction> {
        let replies: Vec<Receiver<()>> = self
            .senders
            .iter()
            .filter_map(|s| {
                let (tx, rx) = sync_channel(1);
                s.send(ShardCmd::Flush { reply: tx }).ok().map(|()| rx)
            })
            .collect();
        for r in replies {
            let _ = r.recv();
        }
        self.poll()
    }

    /// Sets a shard's throttle and waits until its worker acknowledges
    /// the new state (so e.g. after `Freeze` returns, the worker is
    /// guaranteed not to consume another ingress event until resumed).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn set_throttle(&self, shard: usize, throttle: ShardThrottle) {
        self.throttles[shard].store(throttle as u8, Ordering::SeqCst);
        // The worker re-reads the flag at the top of every loop
        // iteration (at most one 1 ms idle wait away); spin gently.
        while ShardThrottle::from_u8(self.throttle_acks[shard].load(Ordering::SeqCst)) != throttle {
            if self.closing.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Stops every worker and collects final statistics. Pending
    /// ingress events and per-session queues are discarded; call
    /// [`ServeFabric::flush`] first for a graceful drain.
    pub fn shutdown(mut self) -> FabricStats {
        self.closing.store(true, Ordering::SeqCst);
        for s in self.senders.drain(..) {
            let _ = s.send(ShardCmd::Shutdown);
        }
        let mut shards: Vec<ShardStats> = self
            .workers
            .drain(..)
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        shards.sort_by_key(|s| s.shard);
        FabricStats {
            shards,
            ingress_shed: self.ground.ingress_shed.load(Ordering::Relaxed),
            spills: self.ground.spills.load(Ordering::Relaxed),
            rejections: self.ground.rejections.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ServeFabric {
    fn drop(&mut self) {
        // Without an explicit shutdown the senders disconnect as the
        // fabric drops; `closing` releases any frozen worker so every
        // thread observes the disconnect and exits.
        self.closing.store(true, Ordering::SeqCst);
    }
}

/// Commands drained per worker loop iteration before a tick gets a
/// chance to run — bounds ingress-vs-tick starvation both ways.
const CMD_BUDGET: usize = 64;

/// One shard's worker: owns the engine, its ingress receiver and the
/// key↔slot maps.
struct Worker {
    shard: usize,
    engine: ServeEngine,
    rx: Receiver<ShardCmd>,
    out: Sender<Vec<FabricPrediction>>,
    throttle: Arc<AtomicU8>,
    ack: Arc<AtomicU8>,
    closing: Arc<AtomicBool>,
    ins: ShardInstruments,
    ids: HashMap<u64, SessionId>,
    keys: HashMap<SessionId, u64>,
    stats: ShardStats,
}

impl Worker {
    fn effective_throttle(&self) -> ShardThrottle {
        if self.closing.load(Ordering::SeqCst) {
            // Shutdown overrides any throttle so frozen shards can
            // still observe their Shutdown command / disconnect.
            return ShardThrottle::Run;
        }
        ShardThrottle::from_u8(self.throttle.load(Ordering::SeqCst))
    }

    fn run(mut self) -> ShardStats {
        loop {
            let throttle = self.effective_throttle();
            self.ack.store(throttle as u8, Ordering::SeqCst);
            if throttle == ShardThrottle::Freeze {
                std::thread::sleep(Duration::from_micros(100));
                continue;
            }
            let mut worked = false;
            for _ in 0..CMD_BUDGET {
                match self.rx.try_recv() {
                    Ok(cmd) => {
                        worked = true;
                        if self.apply(cmd) {
                            return self.finish();
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return self.finish(),
                }
            }
            if throttle != ShardThrottle::HoldTicks && self.engine.pending() > 0 {
                self.tick_once();
                worked = true;
            }
            if !worked {
                // Idle: block briefly so an idle shard costs ~nothing
                // but still re-reads its throttle regularly.
                match self.rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(cmd) => {
                        if self.apply(cmd) {
                            return self.finish();
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return self.finish(),
                }
            }
        }
    }

    /// Applies one command; returns `true` on shutdown.
    fn apply(&mut self, cmd: ShardCmd) -> bool {
        match cmd {
            ShardCmd::Open { key, reply } => {
                let id = self
                    .engine
                    .open_session()
                    .expect("fabric admission reserves engine capacity");
                self.ids.insert(key, id);
                self.keys.insert(id, key);
                self.stats.opened += 1;
                let _ = reply.send(());
            }
            ShardCmd::Close { key } => {
                if let Some(id) = self.ids.remove(&key) {
                    self.harvest_engine_shed(key, id);
                    self.keys.remove(&id);
                    let _ = self.engine.close_session(id);
                    self.stats.closed += 1;
                }
            }
            ShardCmd::Frame {
                key,
                time_s,
                frame,
                health,
            } => {
                self.ins.ingress_depth.add(-1);
                self.stats.ingress_drained += 1;
                if let Some(&id) = self.ids.get(&key) {
                    if let Ok(report) = self.engine.push_frame(id, time_s, frame, health) {
                        self.stats.engine_shed += report.shed as u64;
                    }
                }
            }
            ShardCmd::Readings { key, readings } => {
                self.ins.ingress_depth.add(-1);
                self.stats.ingress_drained += 1;
                if let Some(&id) = self.ids.get(&key) {
                    if let Ok(report) = self.engine.push(id, &readings) {
                        self.stats.engine_shed += report.shed as u64;
                    }
                }
            }
            ShardCmd::Flush { reply } => {
                while self.engine.pending() > 0 {
                    self.tick_once();
                }
                let _ = reply.send(());
            }
            ShardCmd::Shutdown => return true,
        }
        false
    }

    fn tick_once(&mut self) {
        let span = self.ins.tick_seconds.time();
        let preds = self.engine.tick();
        span.end();
        if preds.is_empty() {
            return;
        }
        self.stats.predictions += preds.len() as u64;
        self.ins.predictions.add(preds.len() as u64);
        let batch: Vec<FabricPrediction> = preds
            .into_iter()
            .map(|p| FabricPrediction {
                session: SessionKey(self.keys[&p.session]),
                shard: self.shard,
                prediction: p,
            })
            .collect();
        // The collector may already be gone during teardown; the
        // predictions are simply dropped then.
        let _ = self.out.send(batch);
    }

    /// Records a closing session's engine-side shed count into the
    /// shard stats (the engine forgets the count when the slot frees).
    fn harvest_engine_shed(&mut self, key: u64, id: SessionId) {
        if let Ok(shed) = self.engine.session_shed(id) {
            if shed > 0 {
                self.stats.session_engine_shed.push((key, shed as u64));
            }
        }
    }

    fn finish(mut self) -> ShardStats {
        let open: Vec<(u64, SessionId)> = self.ids.drain().collect();
        for (key, id) in open {
            self.harvest_engine_shed(key, id);
        }
        self.stats.suppressed = self.engine.suppressed() as u64;
        self.stats.engine_shed = self.engine.shed() as u64;
        self.stats
    }
}
