//! The sharded serve fabric: N [`ServeEngine`] shards on dedicated
//! worker threads behind consistent-hash routing, supervised for
//! self-healing (see [`crate::supervisor`]).
//!
//! See the crate docs for the architecture and the determinism
//! contract; this module holds the shared state and the public
//! [`ServeFabric`] facade.

use crate::metrics::{fabric_instruments, shard_instruments, FabricInstruments, ShardInstruments};
use crate::router::{RouteError, RoutingTable};
use crate::supervisor::{ShardEvent, SupervisionConfig, Supervisor};
use crate::worker::{spawn_worker, WorkerSpawn};
use m2ai_core::frames::FrameBuilder;
use m2ai_core::online::HealthState;
use m2ai_core::serve::{ServeConfig, ServeEngine, ServePrediction, SessionCheckpoint};
use m2ai_nn::model::SequenceClassifier;
use m2ai_obs::trace::{self, SpanStatus, TraceContext};
use m2ai_rfsim::reading::TagReading;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Commands a shard worker drains from its bounded ingress queue.
pub(crate) enum ShardCmd {
    /// Open an engine session for `key`; ack when the slot exists
    /// (`true`) or could not be created (`false`).
    Open { key: u64, reply: SyncSender<bool> },
    /// Close `key`'s engine session (pending events are discarded).
    Close { key: u64 },
    /// One pre-extracted frame for `key`. `ctx` is the trace context
    /// minted at the fabric edge ([`TraceContext::NONE`] when sampling
    /// is off) and `enqueued_us` the enqueue timestamp (0 when
    /// unsampled) so the worker can close the ingress-wait span.
    Frame {
        key: u64,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
        ctx: TraceContext,
        enqueued_us: u64,
    },
    /// A batch of raw tag readings for `key`; trace fields as on
    /// [`ShardCmd::Frame`].
    Readings {
        key: u64,
        readings: Vec<TagReading>,
        ctx: TraceContext,
        enqueued_us: u64,
    },
    /// Adopt a migrated session, resuming from `ckpt` when one exists
    /// (`None` restarts the session's stream context from scratch).
    Restore {
        key: u64,
        ckpt: Option<Box<SessionCheckpoint>>,
        reply: SyncSender<bool>,
    },
    /// Snapshot every resident session into checkpoints and reply with
    /// them (keyed by fabric session key).
    Checkpoint {
        reply: Sender<Vec<(u64, SessionCheckpoint)>>,
    },
    /// Tick until every pending queue is empty, then ack — the
    /// fabric-wide barrier underneath [`ServeFabric::flush`].
    Flush { reply: SyncSender<()> },
    /// Test hook: the worker exits as if it had crashed (the
    /// supervisor sees an abnormal exit and runs the restart path).
    Die,
}

/// Worker throttle states, used by tests and operational drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardThrottle {
    /// Normal operation: drain ingress, tick the engine.
    Run,
    /// Keep draining ingress into the engine, but do not tick — events
    /// pile up in the per-session queues (engine-side backpressure
    /// becomes deterministic).
    HoldTicks,
    /// Stop consuming the ingress entirely — the bounded queue fills
    /// and pushes shed at the fabric edge (ingress backpressure
    /// becomes deterministic). The worker keeps heartbeating, so the
    /// supervisor does not treat a frozen shard as stalled.
    Freeze,
    /// Test hook simulating a wedged worker: the worker acknowledges
    /// the throttle, then stops heartbeating and consuming entirely.
    /// The supervisor's missed-heartbeat deadline fires and replaces
    /// the worker (in-flight ingress events are counted as lost).
    Stall,
}

impl ShardThrottle {
    pub(crate) fn from_u8(v: u8) -> ShardThrottle {
        match v {
            1 => ShardThrottle::HoldTicks,
            2 => ShardThrottle::Freeze,
            3 => ShardThrottle::Stall,
            _ => ShardThrottle::Run,
        }
    }
}

/// Records an annotated "ingress" span termination (shed, shard-down,
/// quarantine refusal) on the caller's thread. A no-op when `ctx` is
/// unsampled, so the data plane stays bit-neutral with tracing off.
fn end_ingress_span(ctx: TraceContext, key: SessionKey, shard: Option<usize>, status: SpanStatus) {
    if !ctx.is_sampled() {
        return;
    }
    let mut sp = ctx.child("ingress");
    sp.set_session(key.0);
    if let Some(s) = shard {
        sp.set_shard(s);
    }
    sp.end_with(status);
}

/// Errors surfaced by the fabric's control and data planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// Admission refused: every alive shard is at session capacity.
    FabricFull,
    /// The key does not name an open fabric session.
    UnknownSession,
    /// The session's shard worker has terminated permanently.
    ShardDown,
    /// A deadline elapsed before the operation completed.
    Timeout,
    /// The session was quarantined after repeatedly panicking the
    /// engine; its key no longer accepts data.
    Quarantined,
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::FabricFull => write!(f, "admission refused: every shard is full"),
            FabricError::UnknownSession => write!(f, "no such fabric session"),
            FabricError::ShardDown => write!(f, "shard worker terminated"),
            FabricError::Timeout => write!(f, "fabric operation deadline elapsed"),
            FabricError::Quarantined => {
                write!(f, "session quarantined after repeated engine panics")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Outcome of a data-plane push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The event was queued on the session's shard.
    Enqueued,
    /// The shard's ingress queue was full; the event was dropped at
    /// the fabric edge and counted against the session.
    Shed,
}

/// Opaque fabric-wide session handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionKey(pub(crate) u64);

impl SessionKey {
    /// The raw routing key (stable for the session's lifetime).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A prediction emitted by some shard's engine, tagged with its fabric
/// session and shard.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricPrediction {
    /// Fabric-wide session handle the prediction belongs to.
    pub session: SessionKey,
    /// Shard index that served it.
    pub shard: usize,
    /// The engine's prediction (its `session` field is the *engine
    /// local* slot id, only unique within one shard).
    pub prediction: ServePrediction,
}

/// Fabric sizing knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Number of engine shards (worker threads).
    pub shards: usize,
    /// Consistent-hash ring points per shard.
    pub vnodes: usize,
    /// Bound on each shard's ingress command queue; data pushed at a
    /// full queue is shed at the fabric edge.
    pub ingress_capacity: usize,
    /// Per-shard engine configuration. `serve.max_sessions` doubles as
    /// the router's per-shard session capacity.
    pub serve: ServeConfig,
    /// Self-healing knobs: heartbeat deadlines, restart backoff,
    /// checkpoint cadence and the poison-frame quarantine threshold.
    pub supervision: SupervisionConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            shards: 4,
            vnodes: 64,
            ingress_capacity: 256,
            serve: ServeConfig::default(),
            supervision: SupervisionConfig::default(),
        }
    }
}

/// End-of-life statistics for one shard, returned by
/// [`ServeFabric::shutdown`]. With supervision enabled these aggregate
/// across every worker incarnation of the shard.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Sessions opened on this shard via the control plane.
    pub opened: u64,
    /// Sessions closed on this shard.
    pub closed: u64,
    /// Predictions its engine emitted.
    pub predictions: u64,
    /// Predictions its engine suppressed (stale / non-finite /
    /// low-confidence).
    pub suppressed: u64,
    /// Events shed from per-session engine queues (oldest-first
    /// backpressure inside the engine).
    pub engine_shed: u64,
    /// Data events the worker drained from its ingress queue.
    pub ingress_drained: u64,
    /// Sessions resumed from a checkpoint after a restart or
    /// migration onto this shard.
    pub restored: u64,
    /// Sessions this shard quarantined for repeated engine panics.
    pub quarantined: u64,
    /// Engine panics caught on this shard (attributed or not).
    pub poison_events: u64,
    /// Engine-side sheds per session key (non-zero entries only,
    /// harvested when sessions close and at shutdown).
    pub session_engine_shed: Vec<(u64, u64)>,
}

/// Whole-fabric statistics returned by [`ServeFabric::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Data events shed at shard ingresses (fabric edge).
    pub ingress_shed: u64,
    /// Sessions admitted by spilling past a full preferred shard.
    pub spills: u64,
    /// Admissions refused with every shard full.
    pub rejections: u64,
    /// Shard worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Stalled workers abandoned on a missed-heartbeat deadline.
    pub stalls: u64,
    /// Sessions quarantined after repeated engine panics.
    pub quarantined: u64,
    /// Sessions evicted because migration off a dead shard failed.
    pub evicted: u64,
    /// In-flight ingress events lost when a stalled worker's queue was
    /// abandoned or a shard died permanently.
    pub lost_inflight: u64,
}

/// Control-plane state guarded by one mutex: the routing table, the
/// per-session shed counters shared with the data plane, and the
/// poison-frame ledger.
pub(crate) struct ControlState {
    pub(crate) table: RoutingTable,
    pub(crate) entries: HashMap<u64, SessionEntry>,
    pub(crate) next_key: u64,
    /// Attributed engine panics per session key.
    pub(crate) poison_counts: HashMap<u64, u32>,
    /// Keys quarantined after reaching the poison threshold.
    pub(crate) quarantined: HashSet<u64>,
}

pub(crate) struct SessionEntry {
    pub(crate) shard: usize,
    pub(crate) ingress_shed: Arc<AtomicU64>,
}

/// Ground-truth fabric counters (independent of the obs registry so
/// tests can cross-check the two).
#[derive(Default)]
pub(crate) struct GroundCounters {
    pub(crate) ingress_shed: AtomicU64,
    pub(crate) spills: AtomicU64,
    pub(crate) rejections: AtomicU64,
    pub(crate) restarts: AtomicU64,
    pub(crate) stalls: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) evicted: AtomicU64,
    pub(crate) lost_inflight: AtomicU64,
}

/// Output batches are tagged with the emitting shard and its worker
/// epoch so [`ServeFabric::poll`] can drop late output from abandoned
/// (stalled) worker incarnations.
pub(crate) type OutBatch = (usize, u64, Vec<FabricPrediction>);

/// Per-shard shared state: the ingress sender (swappable when a
/// stalled worker's queue is abandoned), the worker-epoch fences, the
/// liveness flags and the heartbeat cell.
pub(crate) struct ShardSlot {
    sender: Mutex<SyncSender<ShardCmd>>,
    /// Incarnation counter; bumped on every worker (re)spawn.
    pub(crate) epoch: AtomicU64,
    /// Output batches from epochs below this are dropped at `poll` —
    /// bumped only when a stalled worker is abandoned, so a replaced
    /// worker's late emissions cannot interleave with its successor's.
    pub(crate) min_live_epoch: AtomicU64,
    /// No live worker right now (crashed / restarting).
    pub(crate) down: AtomicBool,
    /// Permanently failed: restart budget exhausted, sessions migrated.
    pub(crate) dead: AtomicBool,
    pub(crate) throttle: Arc<AtomicU8>,
    pub(crate) ack: Arc<AtomicU8>,
    /// Worker loop counter; a supervisor-observed flatline past the
    /// stall deadline marks the worker stalled.
    pub(crate) heartbeat: Arc<AtomicU64>,
    /// Data events currently in the ingress queue (ground truth behind
    /// the `m2ai_fabric_ingress_depth` gauge; read when abandoning a
    /// queue to count lost in-flight events).
    pub(crate) depth: AtomicI64,
    pub(crate) ins: ShardInstruments,
}

impl ShardSlot {
    /// Clones the current ingress sender (never holds the lock across
    /// a blocking send).
    pub(crate) fn sender(&self) -> SyncSender<ShardCmd> {
        self.sender
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn swap_sender(&self, tx: SyncSender<ShardCmd>) {
        *self.sender.lock().unwrap_or_else(|e| e.into_inner()) = tx;
    }
}

/// State shared between the facade, the shard workers and the
/// supervisor.
pub(crate) struct Inner {
    pub(crate) control: Mutex<ControlState>,
    pub(crate) shards: Vec<ShardSlot>,
    pub(crate) out_tx: Sender<OutBatch>,
    pub(crate) outputs: Mutex<Receiver<OutBatch>>,
    pub(crate) closing: AtomicBool,
    pub(crate) ground: GroundCounters,
    pub(crate) glob: &'static FabricInstruments,
    /// Last checkpoint per session key, fed by the supervisor's
    /// periodic sweep and [`ServeFabric::checkpoint_now`].
    pub(crate) checkpoints: Mutex<HashMap<u64, SessionCheckpoint>>,
    pub(crate) model: SequenceClassifier,
    pub(crate) builder: FrameBuilder,
    pub(crate) cfg: FabricConfig,
}

impl Inner {
    pub(crate) fn lock_control(&self) -> MutexGuard<'_, ControlState> {
        // Control mutations are small and never panic mid-update;
        // tolerate poison so one failed caller can't wedge the fabric.
        self.control.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn lock_checkpoints(&self) -> MutexGuard<'_, HashMap<u64, SessionCheckpoint>> {
        self.checkpoints.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Builds a fresh engine for a (re)spawned shard worker.
    pub(crate) fn new_engine(&self) -> ServeEngine {
        ServeEngine::new(
            self.model.clone(),
            self.builder.clone(),
            self.cfg.serve.clone(),
        )
    }

    /// Retries `try_send` against a shard's current ingress sender
    /// until it lands, the shard dies, or `deadline` elapses. The
    /// sender is re-read each attempt so a swap (stall abandonment)
    /// redirects the retry to the replacement queue.
    pub(crate) fn send_with_deadline(
        &self,
        shard: usize,
        mut cmd: ShardCmd,
        deadline: Duration,
    ) -> Result<(), FabricError> {
        let t0 = Instant::now();
        loop {
            if self.shards[shard].dead.load(Ordering::SeqCst) {
                return Err(FabricError::ShardDown);
            }
            match self.shards[shard].sender().try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(c)) => {
                    if t0.elapsed() >= deadline {
                        return Err(FabricError::Timeout);
                    }
                    cmd = c;
                }
                Err(TrySendError::Disconnected(c)) => {
                    // Transient during a sender swap; the dead flag
                    // above catches the permanent case.
                    if t0.elapsed() >= deadline {
                        return Err(FabricError::ShardDown);
                    }
                    cmd = c;
                }
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Sweeps every live shard for session checkpoints and merges them
    /// into the store. Returns the number of sessions snapshotted;
    /// `Err(Timeout)` if any live shard failed to reply in time (the
    /// snapshots that did arrive are still stored).
    pub(crate) fn checkpoint_all(&self, per_shard: Duration) -> Result<usize, FabricError> {
        let t0 = Instant::now();
        let mut total = 0usize;
        let mut timed_out = false;
        for (shard, slot) in self.shards.iter().enumerate() {
            if slot.dead.load(Ordering::SeqCst) || slot.down.load(Ordering::SeqCst) {
                continue;
            }
            let (tx, rx) = channel();
            if self
                .send_with_deadline(shard, ShardCmd::Checkpoint { reply: tx }, per_shard)
                .is_err()
            {
                timed_out = true;
                continue;
            }
            match rx.recv_timeout(per_shard) {
                Ok(snaps) => {
                    total += snaps.len();
                    let mut store = self.lock_checkpoints();
                    for (key, ck) in snaps {
                        store.insert(key, ck);
                    }
                }
                Err(_) => timed_out = true,
            }
        }
        self.glob.checkpoints.add(total as u64);
        self.glob
            .checkpoint_seconds
            .observe(t0.elapsed().as_secs_f64());
        if timed_out {
            Err(FabricError::Timeout)
        } else {
            Ok(total)
        }
    }
}

/// N engine shards on dedicated worker threads behind consistent-hash
/// session routing, watched by a supervisor thread that restarts
/// crashed or stalled workers from session checkpoints. See the crate
/// docs.
pub struct ServeFabric {
    inner: Arc<Inner>,
    supervisor: Option<JoinHandle<FabricStats>>,
    /// Reserves one worker slot per shard in the process-wide thread
    /// budget so tile-parallel GEMM inside shard workers does not
    /// oversubscribe the cores. Released on drop/shutdown.
    _reservation: m2ai_par::budget::WorkerReservation,
}

impl std::fmt::Debug for ServeFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFabric")
            .field("shards", &self.inner.shards.len())
            .finish_non_exhaustive()
    }
}

impl ServeFabric {
    /// Spins up the fabric: builds the routing table, clones the model
    /// and frame builder into every shard, starts one worker thread
    /// per shard and the supervisor thread that watches them.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards`, `cfg.vnodes` or `cfg.ingress_capacity`
    /// is zero (the engine's own config asserts cover `cfg.serve`), or
    /// if a thread cannot be spawned.
    pub fn new(model: SequenceClassifier, builder: FrameBuilder, cfg: FabricConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.vnodes > 0, "need at least one virtual node");
        assert!(cfg.ingress_capacity > 0, "ingress must hold an event");
        let table = RoutingTable::new(cfg.shards, cfg.vnodes, cfg.serve.max_sessions);
        let (out_tx, out_rx) = channel();
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut rxs = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = sync_channel(cfg.ingress_capacity);
            rxs.push(rx);
            shards.push(ShardSlot {
                sender: Mutex::new(tx),
                epoch: AtomicU64::new(0),
                min_live_epoch: AtomicU64::new(0),
                down: AtomicBool::new(true),
                dead: AtomicBool::new(false),
                throttle: Arc::new(AtomicU8::new(ShardThrottle::Run as u8)),
                ack: Arc::new(AtomicU8::new(ShardThrottle::Run as u8)),
                heartbeat: Arc::new(AtomicU64::new(0)),
                depth: AtomicI64::new(0),
                ins: shard_instruments(shard),
            });
        }
        let inner = Arc::new(Inner {
            control: Mutex::new(ControlState {
                table,
                entries: HashMap::new(),
                next_key: 0,
                poison_counts: HashMap::new(),
                quarantined: HashSet::new(),
            }),
            shards,
            out_tx,
            outputs: Mutex::new(out_rx),
            closing: AtomicBool::new(false),
            ground: GroundCounters::default(),
            glob: fabric_instruments(),
            checkpoints: Mutex::new(HashMap::new()),
            model,
            builder,
            cfg,
        });
        let (events_tx, events_rx) = channel::<ShardEvent>();
        let mut retired_flags = Vec::with_capacity(inner.cfg.shards);
        for (shard, rx) in rxs.into_iter().enumerate() {
            let retired = Arc::new(AtomicBool::new(false));
            retired_flags.push(Arc::clone(&retired));
            spawn_worker(
                Arc::clone(&inner),
                events_tx.clone(),
                WorkerSpawn {
                    shard,
                    epoch: 0,
                    rx,
                    restores: Vec::new(),
                    probation: false,
                    retired,
                    down_since: None,
                },
            );
        }
        let supervisor = Supervisor::new(Arc::clone(&inner), events_tx, events_rx, retired_flags);
        let handle = std::thread::Builder::new()
            .name("m2ai-fabric-supervisor".into())
            .spawn(move || supervisor.run())
            .expect("spawn fabric supervisor");
        ServeFabric {
            _reservation: m2ai_par::budget::reserve_workers(inner.cfg.shards),
            inner,
            supervisor: Some(handle),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Open sessions across the whole fabric.
    pub fn sessions(&self) -> usize {
        self.inner.lock_control().entries.len()
    }

    /// The shard hosting `key`.
    pub fn shard_of(&self, key: SessionKey) -> Result<usize, FabricError> {
        self.inner
            .lock_control()
            .entries
            .get(&key.0)
            .map(|e| e.shard)
            .ok_or(FabricError::UnknownSession)
    }

    /// Data events shed at the fabric edge for one session (ingress
    /// backpressure; engine-side sheds are reported per shard in
    /// [`ShardStats`]).
    pub fn session_shed(&self, key: SessionKey) -> Result<u64, FabricError> {
        self.inner
            .lock_control()
            .entries
            .get(&key.0)
            .map(|e| e.ingress_shed.load(Ordering::Relaxed))
            .ok_or(FabricError::UnknownSession)
    }

    /// Total ingress-shed events across the fabric (ground truth,
    /// mirrored by the `m2ai_fabric_ingress_shed_total` family).
    pub fn ingress_shed(&self) -> u64 {
        self.inner.ground.ingress_shed.load(Ordering::Relaxed)
    }

    /// Sessions spilled past their preferred shard so far.
    pub fn spills(&self) -> u64 {
        self.inner.ground.spills.load(Ordering::Relaxed)
    }

    /// Admissions refused with every shard full so far.
    pub fn rejections(&self) -> u64 {
        self.inner.ground.rejections.load(Ordering::Relaxed)
    }

    /// Shard worker restarts the supervisor has performed so far.
    pub fn restarts(&self) -> u64 {
        self.inner.ground.restarts.load(Ordering::Relaxed)
    }

    /// Sessions quarantined after repeated engine panics so far.
    pub fn quarantined(&self) -> u64 {
        self.inner.ground.quarantined.load(Ordering::Relaxed)
    }

    /// Whether `key` has been quarantined (its data is refused with
    /// [`FabricError::Quarantined`]).
    pub fn is_quarantined(&self, key: SessionKey) -> bool {
        self.inner.lock_control().quarantined.contains(&key.0)
    }

    /// Whether `shard` currently has a live, serving worker (false
    /// while crashed/restarting and permanently once dead).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_alive(&self, shard: usize) -> bool {
        let slot = &self.inner.shards[shard];
        !slot.down.load(Ordering::SeqCst) && !slot.dead.load(Ordering::SeqCst)
    }

    /// Sessions currently held in the checkpoint store.
    pub fn checkpointed_sessions(&self) -> usize {
        self.inner.lock_checkpoints().len()
    }

    /// Opens a session: consistent-hash placement with capacity
    /// spill, then a synchronous slot open on the owning shard (so a
    /// returned key is immediately pushable and admission can never
    /// race ahead of the engine's slot table).
    pub fn open_session(&self) -> Result<SessionKey, FabricError> {
        let (key, shard, spilled) = {
            let mut c = self.inner.lock_control();
            let key = c.next_key;
            let placement = match c.table.assign(key) {
                Ok(p) => p,
                Err(RouteError::Full) | Err(RouteError::NoAliveShard) => {
                    self.inner.ground.rejections.fetch_add(1, Ordering::Relaxed);
                    self.inner.glob.rejections.inc();
                    return Err(FabricError::FabricFull);
                }
                Err(RouteError::DuplicateKey) => unreachable!("next_key is never reused"),
            };
            c.next_key += 1;
            c.entries.insert(
                key,
                SessionEntry {
                    shard: placement.shard,
                    ingress_shed: Arc::new(AtomicU64::new(0)),
                },
            );
            (key, placement.shard, placement.spilled)
        };
        if spilled {
            self.inner.ground.spills.fetch_add(1, Ordering::Relaxed);
            self.inner.glob.spills.inc();
        }
        self.inner.shards[shard].ins.sessions.add(1);
        let (ack_tx, ack_rx) = sync_channel(1);
        let outcome = self
            .inner
            .send_with_deadline(shard, ShardCmd::Open { key, reply: ack_tx }, OPEN_DEADLINE)
            .and_then(|()| match ack_rx.recv_timeout(OPEN_DEADLINE) {
                Ok(true) => Ok(()),
                Ok(false) => Err(FabricError::ShardDown),
                Err(RecvTimeoutError::Timeout) => Err(FabricError::Timeout),
                Err(RecvTimeoutError::Disconnected) => Err(FabricError::ShardDown),
            });
        if let Err(e) = outcome {
            let mut c = self.inner.lock_control();
            if c.entries.remove(&key).is_some() {
                c.table.release(key);
                drop(c);
                self.inner.shards[shard].ins.sessions.add(-1);
            }
            return Err(e);
        }
        Ok(SessionKey(key))
    }

    /// Closes a session. The close is queued in session order on its
    /// shard; the routing-table slot frees immediately, so a
    /// subsequent open can reuse the capacity (the shard's FIFO
    /// ingress guarantees the engine processes the close first).
    ///
    /// Closing a session on a dead or restarting shard succeeds: the
    /// control entry is gone, so the session is simply not resurrected
    /// at the next restart. Closing a quarantined key also succeeds.
    pub fn close_session(&self, key: SessionKey) -> Result<(), FabricError> {
        let shard = {
            let mut c = self.inner.lock_control();
            match c.entries.remove(&key.0) {
                Some(entry) => {
                    c.table.release(key.0);
                    entry.shard
                }
                None if c.quarantined.contains(&key.0) => return Ok(()),
                None => return Err(FabricError::UnknownSession),
            }
        };
        self.inner.shards[shard].ins.sessions.add(-1);
        self.inner.lock_checkpoints().remove(&key.0);
        // Best-effort: a dead shard's engine (and its session) is
        // already gone, and a restarting shard won't resurrect the
        // session because the control entry was removed above.
        let _ =
            self.inner
                .send_with_deadline(shard, ShardCmd::Close { key: key.0 }, CLOSE_DEADLINE);
        Ok(())
    }

    /// Feeds one pre-extracted frame to a session. Returns
    /// [`PushOutcome::Shed`] (never blocks) when the shard's ingress
    /// is full.
    pub fn push_frame(
        &self,
        key: SessionKey,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
    ) -> Result<PushOutcome, FabricError> {
        self.push_frame_traced(key, time_s, frame, health, trace::begin_trace())
    }

    /// [`ServeFabric::push_frame`] under a caller-provided trace
    /// context (e.g. one minted at the reader, so the trace covers
    /// ingest → ingress → infer → emit). Purely observational: the
    /// routing/shed behaviour is identical to `push_frame`.
    pub fn push_frame_traced(
        &self,
        key: SessionKey,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
        ctx: TraceContext,
    ) -> Result<PushOutcome, FabricError> {
        self.push_data(key, ctx, |key, enqueued_us| ShardCmd::Frame {
            key,
            time_s,
            frame,
            health,
            ctx,
            enqueued_us,
        })
    }

    /// Feeds raw tag readings to a session (the shard runs frame
    /// extraction inside its worker). The whole batch is one ingress
    /// event: it is enqueued or shed atomically.
    pub fn push(
        &self,
        key: SessionKey,
        readings: Vec<TagReading>,
    ) -> Result<PushOutcome, FabricError> {
        self.push_traced(key, readings, trace::begin_trace())
    }

    /// [`ServeFabric::push`] under a caller-provided trace context;
    /// see [`ServeFabric::push_frame_traced`].
    pub fn push_traced(
        &self,
        key: SessionKey,
        readings: Vec<TagReading>,
        ctx: TraceContext,
    ) -> Result<PushOutcome, FabricError> {
        self.push_data(key, ctx, |key, enqueued_us| ShardCmd::Readings {
            key,
            readings,
            ctx,
            enqueued_us,
        })
    }

    /// [`ServeFabric::push_frame`] with bounded retry: re-attempts a
    /// shed push every 100 µs until it enqueues or `deadline` elapses
    /// (then [`FabricError::Timeout`]). Each failed attempt still
    /// counts as a shed at the fabric edge.
    pub fn push_frame_with_deadline(
        &self,
        key: SessionKey,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
        deadline: Duration,
    ) -> Result<PushOutcome, FabricError> {
        let t0 = Instant::now();
        loop {
            match self.push_frame(key, time_s, frame.clone(), health)? {
                PushOutcome::Enqueued => return Ok(PushOutcome::Enqueued),
                PushOutcome::Shed => {
                    if t0.elapsed() >= deadline {
                        return Err(FabricError::Timeout);
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    /// [`ServeFabric::push`] with bounded retry; see
    /// [`ServeFabric::push_frame_with_deadline`].
    pub fn push_with_deadline(
        &self,
        key: SessionKey,
        readings: Vec<TagReading>,
        deadline: Duration,
    ) -> Result<PushOutcome, FabricError> {
        let t0 = Instant::now();
        loop {
            match self.push(key, readings.clone())? {
                PushOutcome::Enqueued => return Ok(PushOutcome::Enqueued),
                PushOutcome::Shed => {
                    if t0.elapsed() >= deadline {
                        return Err(FabricError::Timeout);
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    fn push_data(
        &self,
        key: SessionKey,
        ctx: TraceContext,
        make: impl FnOnce(u64, u64) -> ShardCmd,
    ) -> Result<PushOutcome, FabricError> {
        let (shard, shed) = {
            let c = self.inner.lock_control();
            match c.entries.get(&key.0) {
                Some(entry) => (entry.shard, Arc::clone(&entry.ingress_shed)),
                None if c.quarantined.contains(&key.0) => {
                    end_ingress_span(ctx, key, None, SpanStatus::Quarantined);
                    return Err(FabricError::Quarantined);
                }
                None => return Err(FabricError::UnknownSession),
            }
        };
        let slot = &self.inner.shards[shard];
        let enqueued_us = if ctx.is_sampled() {
            trace::clock_us()
        } else {
            0
        };
        match slot.sender().try_send(make(key.0, enqueued_us)) {
            Ok(()) => {
                slot.ins.ingress_depth.add(1);
                slot.depth.fetch_add(1, Ordering::Relaxed);
                Ok(PushOutcome::Enqueued)
            }
            Err(TrySendError::Full(_)) => {
                shed.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .ground
                    .ingress_shed
                    .fetch_add(1, Ordering::Relaxed);
                slot.ins.ingress_shed.inc();
                end_ingress_span(ctx, key, Some(shard), SpanStatus::Shed);
                Ok(PushOutcome::Shed)
            }
            Err(TrySendError::Disconnected(_)) => {
                if slot.dead.load(Ordering::SeqCst) {
                    end_ingress_span(ctx, key, Some(shard), SpanStatus::ShardDown);
                    Err(FabricError::ShardDown)
                } else {
                    // Sender-swap race while a stalled worker is being
                    // replaced: the event is lost at the edge; account
                    // for it as a shed rather than surfacing an error.
                    shed.fetch_add(1, Ordering::Relaxed);
                    self.inner
                        .ground
                        .ingress_shed
                        .fetch_add(1, Ordering::Relaxed);
                    slot.ins.ingress_shed.inc();
                    end_ingress_span(ctx, key, Some(shard), SpanStatus::Shed);
                    Ok(PushOutcome::Shed)
                }
            }
        }
    }

    /// Drains every prediction the shards have emitted so far, in
    /// arrival order at the collector. Per-session order is the
    /// session's push order; cross-session (and cross-shard) order is
    /// unspecified — see the crate docs' determinism boundary. Output
    /// from abandoned (stalled) worker incarnations is dropped here.
    pub fn poll(&self) -> Vec<FabricPrediction> {
        let rx = self.inner.outputs.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        while let Ok((shard, epoch, batch)) = rx.try_recv() {
            if epoch
                >= self.inner.shards[shard]
                    .min_live_epoch
                    .load(Ordering::SeqCst)
            {
                out.extend(batch);
            }
        }
        out
    }

    /// Barrier with a deadline: waits until every live shard has
    /// drained its ingress queue *and* every engine's pending queues
    /// are empty, then returns all predictions emitted up to that
    /// point. Overrides [`ShardThrottle::HoldTicks`]. Dead shards are
    /// skipped; a shard that restarts mid-barrier is re-flushed.
    /// Returns [`FabricError::Timeout`] if the barrier does not
    /// complete in time (e.g. a frozen or stalled shard) — nothing is
    /// drained then, so a later `poll`/`flush` still sees the output.
    pub fn try_flush(&self, deadline: Duration) -> Result<Vec<FabricPrediction>, FabricError> {
        let t0 = Instant::now();
        let n = self.inner.shards.len();
        let mut pending: Vec<Option<Receiver<()>>> = (0..n).map(|_| None).collect();
        let mut done = vec![false; n];
        loop {
            let mut all = true;
            for shard in 0..n {
                if done[shard] {
                    continue;
                }
                let slot = &self.inner.shards[shard];
                if slot.dead.load(Ordering::SeqCst) {
                    done[shard] = true;
                    continue;
                }
                if pending[shard].is_none() {
                    let (tx, rx) = sync_channel(1);
                    match self.inner.send_with_deadline(
                        shard,
                        ShardCmd::Flush { reply: tx },
                        FLUSH_SLICE,
                    ) {
                        Ok(()) => pending[shard] = Some(rx),
                        Err(FabricError::ShardDown) => {
                            done[shard] = true;
                            continue;
                        }
                        Err(_) => {}
                    }
                }
                if let Some(rx) = &pending[shard] {
                    match rx.recv_timeout(FLUSH_SLICE) {
                        Ok(()) => {
                            done[shard] = true;
                            continue;
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        // The barrier command was lost with a replaced
                        // worker's queue; re-issue against the new one.
                        Err(RecvTimeoutError::Disconnected) => pending[shard] = None,
                    }
                }
                all = false;
            }
            if all {
                return Ok(self.poll());
            }
            if t0.elapsed() >= deadline {
                return Err(FabricError::Timeout);
            }
        }
    }

    /// [`ServeFabric::try_flush`] with a generous deadline; on timeout
    /// (e.g. a shard left in [`ShardThrottle::Freeze`]) it degrades to
    /// a plain [`ServeFabric::poll`] instead of blocking forever.
    pub fn flush(&self) -> Vec<FabricPrediction> {
        match self.try_flush(FLUSH_DEADLINE) {
            Ok(preds) => preds,
            Err(_) => self.poll(),
        }
    }

    /// Sets a shard's throttle and waits until its worker acknowledges
    /// the new state (so e.g. after `Freeze` returns, the worker is
    /// guaranteed not to consume another ingress event until resumed).
    /// Waits up to 30 s (covers a restart in progress); use
    /// [`ServeFabric::try_set_throttle`] for a typed deadline.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn set_throttle(&self, shard: usize, throttle: ShardThrottle) {
        let _ = self.try_set_throttle(shard, throttle, Duration::from_secs(30));
    }

    /// [`ServeFabric::set_throttle`] with a deadline: returns
    /// [`FabricError::Timeout`] if the worker does not acknowledge in
    /// time and [`FabricError::ShardDown`] against a dead shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn try_set_throttle(
        &self,
        shard: usize,
        throttle: ShardThrottle,
        deadline: Duration,
    ) -> Result<(), FabricError> {
        let slot = &self.inner.shards[shard];
        if slot.dead.load(Ordering::SeqCst) {
            return Err(FabricError::ShardDown);
        }
        slot.throttle.store(throttle as u8, Ordering::SeqCst);
        let t0 = Instant::now();
        // The worker re-reads the flag at the top of every loop
        // iteration (at most one 1 ms idle wait away); spin gently.
        while ShardThrottle::from_u8(slot.ack.load(Ordering::SeqCst)) != throttle {
            if self.inner.closing.load(Ordering::SeqCst) {
                return Ok(());
            }
            if slot.dead.load(Ordering::SeqCst) {
                return Err(FabricError::ShardDown);
            }
            if t0.elapsed() >= deadline {
                return Err(FabricError::Timeout);
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        Ok(())
    }

    /// Test hook: makes a shard's worker exit as if it had crashed.
    /// The supervisor observes the abnormal exit and runs the restart
    /// path (backoff, checkpoint restore, budget accounting). Queued
    /// ingress events survive — the replacement worker inherits the
    /// queue.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn kill_shard(&self, shard: usize) -> Result<(), FabricError> {
        assert!(shard < self.inner.shards.len(), "shard out of range");
        self.inner
            .send_with_deadline(shard, ShardCmd::Die, Duration::from_secs(1))
    }

    /// Synchronously checkpoints every session on every live shard
    /// into the fabric's checkpoint store (the supervisor also does
    /// this periodically). Returns the number of sessions snapshotted.
    pub fn checkpoint_now(&self) -> Result<usize, FabricError> {
        self.inner.checkpoint_all(Duration::from_secs(10))
    }

    /// Stops every worker and the supervisor, and collects final
    /// statistics. Pending ingress events and per-session queues are
    /// discarded; call [`ServeFabric::flush`] first for a graceful
    /// drain.
    pub fn shutdown(mut self) -> FabricStats {
        self.inner.closing.store(true, Ordering::SeqCst);
        match self.supervisor.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => FabricStats::default(),
        }
    }
}

impl Drop for ServeFabric {
    fn drop(&mut self) {
        // Without an explicit shutdown, `closing` releases every
        // worker (they re-check it at least once per millisecond) and
        // the supervisor drains their exits and returns.
        self.inner.closing.store(true, Ordering::SeqCst);
    }
}

/// How long `open_session` waits for the owning shard to ack the slot
/// (covers a restart backoff in progress).
const OPEN_DEADLINE: Duration = Duration::from_secs(10);

/// Best-effort delivery window for queued session closes.
const CLOSE_DEADLINE: Duration = Duration::from_secs(5);

/// Per-round wait inside `try_flush` before re-checking deadlines.
const FLUSH_SLICE: Duration = Duration::from_millis(10);

/// Overall barrier deadline behind the legacy `flush()` facade.
const FLUSH_DEADLINE: Duration = Duration::from_secs(300);
