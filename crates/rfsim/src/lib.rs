//! # m2ai-rfsim — physics-based UHF RFID simulator
//!
//! The M2AI paper (ICDCS 2018) was evaluated on an Impinj Speedway R420
//! reader with passive UHF tags in two real rooms. This crate is the
//! substitute substrate: it simulates, mechanism by mechanism, everything
//! that shapes the phase/RSSI streams such a deployment reports:
//!
//! * 2-D [`geometry`] and indoor [`room`]s (walls with reflection loss,
//!   furniture scatterers) with presets matching the paper's *laboratory*
//!   (high multipath) and *hall* (low multipath);
//! * image-method multipath [`paths`] enumeration with body occlusion;
//! * a frequency-hopping [`channel`] plan (FCC 902–928 MHz band, 50
//!   channels, 400 ms dwell) with per-channel phase offsets that follow
//!   the linear phase-vs-frequency law the paper measures (Fig. 3);
//! * backscatter round-trip [`response`] synthesis: the coherent double
//!   sum over (downlink, uplink) path pairs at each array element;
//! * an Impinj-style [`reader`] with 25 ms time-division antenna
//!   multiplexing, π phase-reporting ambiguity, RSSI quantisation,
//!   thermal noise and range-dependent read loss;
//! * LLRP-style [`reading::TagReading`] reports;
//! * a deterministic, composable [`fault::FaultPlan`] injecting antenna
//!   dropouts, tag occlusion bursts, Gen2 slot starvation, phase
//!   glitches and RSSI brownouts into the reading stream.
//!
//! The simulator is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use m2ai_rfsim::{reader::{Reader, ReaderConfig}, room::Room, scene::SceneSnapshot};
//! use m2ai_rfsim::geometry::Point2;
//!
//! let room = Room::laboratory();
//! let config = ReaderConfig::default();
//! let mut reader = Reader::new(room, config, 1);
//! let scene = SceneSnapshot::with_tags(vec![Point2::new(5.0, 4.0)]);
//! let readings = reader.run(|_t| scene.clone(), 0.5);
//! assert!(!readings.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod fault;
pub mod geometry;
pub mod paths;
pub mod reader;
pub mod reading;
pub mod response;
pub mod room;
pub mod scene;

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// The common reference frequency of the paper, 910.25 MHz.
pub const COMMON_FREQUENCY_HZ: f64 = 910.25e6;

/// Wavelength (m) at a given carrier frequency (Hz).
///
/// ```
/// use m2ai_rfsim::wavelength;
/// let lambda = wavelength(910.25e6);
/// assert!((lambda - 0.329).abs() < 0.01); // the paper's ~0.32 m
/// ```
pub fn wavelength(frequency_hz: f64) -> f64 {
    SPEED_OF_LIGHT / frequency_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_wavelength_is_32cm() {
        assert!((wavelength(COMMON_FREQUENCY_HZ) - 0.32).abs() < 0.02);
    }
}
