//! FCC frequency hopping and per-channel phase offsets.
//!
//! FCC Part 15 requires UHF readers to hop among 50 centre frequencies
//! in the 902–928 MHz band. The Impinj R420 hops between 902.75 and
//! 927.25 MHz in 500 kHz steps, dwelling 400 ms per channel (paper,
//! Section V). Hopping injects a per-channel phase offset — from the
//! oscillator phase difference and the tag antenna's non-uniform
//! frequency response — that is *linear in frequency plus per-channel
//! jitter*, exactly the structure the paper measures in Fig. 3 and
//! removes with the Eq. (1) calibration.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Number of FCC hopping channels.
pub const N_CHANNELS: usize = 50;

/// Lowest channel centre frequency (Hz).
pub const FIRST_CHANNEL_HZ: f64 = 902.75e6;

/// Channel spacing (Hz).
pub const CHANNEL_STEP_HZ: f64 = 0.5e6;

/// Centre frequency of channel `index`.
///
/// # Panics
///
/// Panics if `index >= N_CHANNELS`.
pub fn channel_frequency_hz(index: usize) -> f64 {
    assert!(index < N_CHANNELS, "channel index out of range");
    FIRST_CHANNEL_HZ + index as f64 * CHANNEL_STEP_HZ
}

/// Index of the channel the paper uses as the common reference
/// (910.25 MHz).
pub fn common_channel_index() -> usize {
    ((crate::COMMON_FREQUENCY_HZ - FIRST_CHANNEL_HZ) / CHANNEL_STEP_HZ).round() as usize
}

/// A pseudo-random hop schedule over the 50 channels.
///
/// The schedule repeats a seeded permutation; each channel is visited
/// once per 20-second cycle (50 × 400 ms), as in the paper's setup.
#[derive(Debug, Clone)]
pub struct HopSchedule {
    order: Vec<usize>,
    /// Dwell time per channel in seconds (FCC: ≤ 400 ms).
    pub dwell_s: f64,
}

impl HopSchedule {
    /// Creates a schedule with the standard 400 ms dwell.
    pub fn new(seed: u64) -> Self {
        HopSchedule::with_dwell(seed, 0.4)
    }

    /// Creates a schedule with a custom dwell time.
    ///
    /// # Panics
    ///
    /// Panics if `dwell_s` is not strictly positive.
    pub fn with_dwell(seed: u64, dwell_s: f64) -> Self {
        assert!(dwell_s > 0.0, "dwell must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..N_CHANNELS).collect();
        order.shuffle(&mut rng);
        HopSchedule { order, dwell_s }
    }

    /// Channel index active at time `t` (seconds from start).
    pub fn channel_at(&self, t: f64) -> usize {
        let slot = (t / self.dwell_s).floor().max(0.0) as usize;
        self.order[slot % N_CHANNELS]
    }

    /// Centre frequency (Hz) active at time `t`.
    pub fn frequency_at(&self, t: f64) -> f64 {
        channel_frequency_hz(self.channel_at(t))
    }
}

/// Per-antenna-port, per-channel phase offsets of one deployment.
///
/// `offset(a, c) = 2π·f_c·τ_a + jitter_{a,c}` (mod 2π): a
/// linear-in-frequency term from the oscillator plus each port's cable
/// group delay `τ_a` (ports have different cable runs, so the delays
/// differ by a few nanoseconds), plus bounded per-channel jitter from
/// the RF chain and tag antenna response. This is the structure the
/// paper measures in Fig. 3 — and because the *differences between
/// ports* are channel-dependent, uncalibrated hopping scrambles
/// angle-of-arrival estimation, the effect behind Fig. 10.
#[derive(Debug, Clone)]
pub struct PhaseOffsets {
    /// `offsets[antenna][channel]`.
    offsets: Vec<Vec<f64>>,
    /// Per-port group delays, in seconds.
    pub group_delays_s: Vec<f64>,
}

impl PhaseOffsets {
    /// Samples a deployment's offsets for `n_antennas` ports.
    ///
    /// `jitter_std` is the standard deviation (radians) of the
    /// per-channel deviation from the linear law; the paper's Fig. 3
    /// scatter suggests a fraction of a radian.
    pub fn sample(seed: u64, jitter_std: f64, n_antennas: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        // Shared oscillator delay: tens of nanoseconds.
        let base_delay_s = rng.gen_range(10e-9..60e-9);
        let mut offsets = Vec::with_capacity(n_antennas);
        let mut group_delays_s = Vec::with_capacity(n_antennas);
        for _a in 0..n_antennas {
            // Per-port cable run adds a few nanoseconds.
            let tau = base_delay_s + rng.gen_range(0.0..8e-9);
            group_delays_s.push(tau);
            let port: Vec<f64> = (0..N_CHANNELS)
                .map(|c| {
                    let f = channel_frequency_hz(c);
                    let linear = 2.0 * std::f64::consts::PI * f * tau;
                    let jitter: f64 = if jitter_std > 0.0 {
                        // Box-Muller normal sample.
                        let u1: f64 = rng.gen_range(1e-12..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        jitter_std
                            * (-2.0 * u1.ln()).sqrt()
                            * (2.0 * std::f64::consts::PI * u2).cos()
                    } else {
                        0.0
                    };
                    (linear + jitter).rem_euclid(2.0 * std::f64::consts::PI)
                })
                .collect();
            offsets.push(port);
        }
        PhaseOffsets {
            offsets,
            group_delays_s,
        }
    }

    /// Zero offsets (an ideal reader with no hopping artefacts).
    pub fn ideal(n_antennas: usize) -> Self {
        PhaseOffsets {
            offsets: vec![vec![0.0; N_CHANNELS]; n_antennas],
            group_delays_s: vec![0.0; n_antennas],
        }
    }

    /// The offset (radians, `[0, 2π)`) of port `antenna` on channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `antenna` or `c` is out of range.
    pub fn offset(&self, antenna: usize, c: usize) -> f64 {
        self.offsets[antenna][c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_plan_matches_paper() {
        assert!((channel_frequency_hz(0) - 902.75e6).abs() < 1.0);
        assert!((channel_frequency_hz(N_CHANNELS - 1) - 927.25e6).abs() < 1.0);
        let common = common_channel_index();
        assert!((channel_frequency_hz(common) - 910.25e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "channel index")]
    fn out_of_range_channel_panics() {
        channel_frequency_hz(N_CHANNELS);
    }

    #[test]
    fn schedule_visits_all_channels_per_cycle() {
        let s = HopSchedule::new(42);
        let mut seen = [false; N_CHANNELS];
        for slot in 0..N_CHANNELS {
            seen[s.channel_at(slot as f64 * s.dwell_s + 0.01)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Cycle length is 20 s with the standard dwell.
        assert!((s.dwell_s * N_CHANNELS as f64 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = HopSchedule::new(7);
        let b = HopSchedule::new(7);
        let c = HopSchedule::new(8);
        for t in [0.0, 0.5, 3.3, 19.9] {
            assert_eq!(a.channel_at(t), b.channel_at(t));
        }
        assert!((0..50).any(|i| a.channel_at(i as f64 * 0.4) != c.channel_at(i as f64 * 0.4)));
    }

    #[test]
    fn channel_stable_within_dwell() {
        let s = HopSchedule::new(1);
        assert_eq!(s.channel_at(0.0), s.channel_at(0.39));
    }

    #[test]
    fn offsets_follow_linear_law() {
        // Regress offset (unwrapped) against frequency: the fit residual
        // must be small relative to the slope term — Fig. 3's law.
        let po = PhaseOffsets::sample(3, 0.05, 4);
        let freqs: Vec<f64> = (0..N_CHANNELS).map(channel_frequency_hz).collect();
        let raw: Vec<f64> = (0..N_CHANNELS).map(|c| po.offset(0, c)).collect();
        // Unwrap across channels (offsets are mod 2π).
        let unwrapped = {
            let mut out = vec![raw[0]];
            for c in 1..N_CHANNELS {
                let mut v = raw[c];
                let prev = out[c - 1];
                while v - prev > std::f64::consts::PI {
                    v -= 2.0 * std::f64::consts::PI;
                }
                while v - prev < -std::f64::consts::PI {
                    v += 2.0 * std::f64::consts::PI;
                }
                out.push(v);
            }
            out
        };
        // Least-squares slope must match 2π·τ.
        let n = N_CHANNELS as f64;
        let mx = freqs.iter().sum::<f64>() / n;
        let my = unwrapped.iter().sum::<f64>() / n;
        let sxy: f64 = freqs
            .iter()
            .zip(&unwrapped)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum();
        let sxx: f64 = freqs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let slope = sxy / sxx;
        let expected = 2.0 * std::f64::consts::PI * po.group_delays_s[0];
        assert!(
            (slope - expected).abs() < 0.1 * expected,
            "slope {slope}, expected {expected}"
        );
    }

    #[test]
    fn ideal_offsets_are_zero() {
        let po = PhaseOffsets::ideal(4);
        for a in 0..4 {
            assert!((0..N_CHANNELS).all(|c| po.offset(a, c) == 0.0));
        }
    }

    #[test]
    fn offsets_deterministic_per_seed() {
        let a = PhaseOffsets::sample(5, 0.1, 4);
        let b = PhaseOffsets::sample(5, 0.1, 4);
        for ant in 0..4 {
            for c in 0..N_CHANNELS {
                assert_eq!(a.offset(ant, c), b.offset(ant, c));
            }
        }
    }

    #[test]
    fn ports_differ_per_channel() {
        // The inter-port offset difference must vary with channel —
        // this is what breaks uncalibrated AoA (Fig. 10).
        // Any one pair can land on nearly-equal cable delays, so check
        // the most-separated pair: at least one pair's offset difference
        // must sweep visibly across the band.
        let po = PhaseOffsets::sample(9, 0.05, 4);
        let mut max_spread = f64::MIN;
        for a in 0..4 {
            for b in (a + 1)..4 {
                let diffs: Vec<f64> = (0..N_CHANNELS)
                    .map(|c| {
                        let d = po.offset(b, c) - po.offset(a, c);
                        d.rem_euclid(2.0 * std::f64::consts::PI)
                    })
                    .collect();
                let spread = diffs.iter().cloned().fold(f64::MIN, f64::max)
                    - diffs.iter().cloned().fold(f64::MAX, f64::min);
                max_spread = max_spread.max(spread);
            }
        }
        assert!(
            max_spread > 0.3,
            "inter-port offsets too uniform: {max_spread}"
        );
    }
}
