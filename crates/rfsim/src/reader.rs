//! The Impinj-style frequency-hopping, antenna-multiplexing reader.
//!
//! Timing model (paper, Section V): each of the 4 antenna ports
//! inventories for 25 ms, so one full round over the array takes 100 ms —
//! well inside the 400 ms channel dwell, which is what makes the
//! pseudospectrum/periodogram estimation sound on this hardware.
//!
//! Impairments modelled: per-channel hopping phase offsets (Fig. 3),
//! the π phase-reporting ambiguity of the R420 receive chain, Gaussian
//! phase noise, RSSI noise + 0.5 dB quantisation, and range-dependent
//! read loss (passive tags stop harvesting beyond ~6 m).

use crate::channel::{HopSchedule, PhaseOffsets};
use crate::fault::FaultPlan;
use crate::geometry::{Point2, Vec2};
use crate::paths::{enumerate_paths, enumerate_paths_second_order};
use crate::reading::{TagId, TagReading};
use crate::response::backscatter_response;
use crate::room::Room;
use crate::scene::SceneSnapshot;
use crate::SPEED_OF_LIGHT;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reads-emitted counter (post-fault), resolved once per process.
fn reads_emitted() -> &'static m2ai_obs::Counter {
    static C: std::sync::OnceLock<m2ai_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        m2ai_obs::counter(
            "m2ai_reader_reads_total",
            "tag read reports emitted by the reader after fault injection",
            &[],
        )
    })
}

/// Reader configuration.
///
/// Defaults reproduce the paper's prototype: 4 antennas spaced 0.04 m
/// (λ/8), 25 ms per port, 400 ms dwell, π ambiguity on.
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Number of antenna ports (the R420 has at most 4).
    pub n_antennas: usize,
    /// Element spacing in metres (paper: λ/8 = 0.04 m).
    pub antenna_spacing_m: f64,
    /// Inventory duration per antenna port, seconds (paper: 25 ms).
    pub inventory_slot_s: f64,
    /// Channel dwell time, seconds (paper: 400 ms).
    pub dwell_s: f64,
    /// Array centre position in the room.
    pub array_center: Point2,
    /// Array axis (unit vector); AoA is measured from this axis.
    pub array_axis: Vec2,
    /// Std-dev of per-channel offset jitter around the linear law (rad).
    pub offset_jitter_std: f64,
    /// If `false`, hopping phase offsets are zeroed (ideal oscillator) —
    /// used by the Fig. 10 ablation's "no offsets to calibrate" control.
    pub hopping_offsets: bool,
    /// Gaussian phase noise std-dev per read (rad).
    pub phase_noise_std: f64,
    /// Gaussian RSSI noise std-dev (dB).
    pub rssi_noise_db: f64,
    /// RSSI quantisation step (dB); the R420 reports in 0.5 dB steps.
    pub rssi_quantum_db: f64,
    /// Model the π phase-reporting ambiguity.
    pub pi_ambiguity: bool,
    /// Range (m) at which read probability has fallen to 50 %.
    pub half_read_range_m: f64,
    /// Prune multipath components weaker than this linear amplitude.
    pub min_path_amplitude: f64,
    /// Trace second-order (double-bounce) wall reflections — richer
    /// multipath at ~2× path-enumeration cost (Section VII extension).
    pub second_order_reflections: bool,
    /// EPC Gen2 inventory capacity per 25 ms slot: reads are shared
    /// among responding tags, so per-tag read rate drops as tag count
    /// grows (`None` = unlimited, the default; the paper's population
    /// of ≤ 9 tags rarely saturates a slot).
    pub slot_capacity: Option<usize>,
    /// RNG seed (drives offsets, tag phases, noise, hop plan).
    pub seed: u64,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            n_antennas: 4,
            antenna_spacing_m: 0.04,
            inventory_slot_s: 0.025,
            dwell_s: 0.4,
            array_center: Point2::new(5.0, 0.3),
            array_axis: Vec2::new(1.0, 0.0),
            offset_jitter_std: 0.08,
            hopping_offsets: true,
            phase_noise_std: 0.06,
            rssi_noise_db: 0.7,
            rssi_quantum_db: 0.5,
            pi_ambiguity: true,
            half_read_range_m: 6.0,
            min_path_amplitude: 1e-4,
            second_order_reflections: false,
            slot_capacity: None,
            seed: 0xD0_0D,
        }
    }
}

impl ReaderConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain values (the R420 cannot have 0 or more
    /// than 4 ports; timings must be positive).
    pub fn assert_valid(&self) {
        assert!(
            (1..=4).contains(&self.n_antennas),
            "n_antennas must be 1..=4 (R420 port count)"
        );
        assert!(self.antenna_spacing_m > 0.0, "spacing must be positive");
        assert!(self.inventory_slot_s > 0.0, "slot must be positive");
        assert!(self.dwell_s > 0.0, "dwell must be positive");
    }

    /// Duration of one full round over all antenna ports.
    pub fn round_duration_s(&self) -> f64 {
        self.inventory_slot_s * self.n_antennas as f64
    }
}

/// A simulated frequency-hopping RFID reader bound to a room.
#[derive(Debug)]
pub struct Reader {
    room: Room,
    config: ReaderConfig,
    schedule: HopSchedule,
    offsets: PhaseOffsets,
    /// Per-tag modulation phase offset (radians).
    tag_phases: Vec<f64>,
    rng: StdRng,
    /// Fault-injection plan applied to every emitted reading.
    faults: FaultPlan,
}

impl Reader {
    /// Creates a reader for `n_tags` tags in `room`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ReaderConfig::assert_valid`]).
    pub fn new(room: Room, config: ReaderConfig, n_tags: usize) -> Self {
        config.assert_valid();
        let schedule = HopSchedule::with_dwell(config.seed, config.dwell_s);
        let offsets = if config.hopping_offsets {
            PhaseOffsets::sample(config.seed, config.offset_jitter_std, config.n_antennas)
        } else {
            PhaseOffsets::ideal(config.n_antennas)
        };
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xABCD_EF01);
        let tag_phases = (0..n_tags)
            .map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI))
            .collect();
        Reader {
            room,
            config,
            schedule,
            offsets,
            tag_phases,
            rng,
            faults: FaultPlan::none(),
        }
    }

    /// Installs a fault-injection plan (see [`FaultPlan`]). The plan is
    /// a pure post-transform on the emitted readings: with
    /// [`FaultPlan::none`] the stream is bit-identical to a reader with
    /// no plan, and the plan never consumes the reader's RNG.
    ///
    /// # Panics
    ///
    /// Panics if the plan's knobs are out of domain (see
    /// [`FaultPlan::assert_valid`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        plan.assert_valid();
        self.faults = plan;
    }

    /// Builder-style variant of [`Reader::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// The fault plan currently in effect.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The reader's configuration.
    pub fn config(&self) -> &ReaderConfig {
        &self.config
    }

    /// The room this reader operates in.
    pub fn room(&self) -> &Room {
        &self.room
    }

    /// The hopping phase offsets in effect (for tests/calibration
    /// ground truth).
    pub fn phase_offsets(&self) -> &PhaseOffsets {
        &self.offsets
    }

    /// Deterministic π-ambiguity flip for a (tag, antenna, channel)
    /// link: stable within a deployment but unknown to the application,
    /// like the real R420 behaviour.
    fn pi_flip(&self, tag: usize, antenna: usize, channel: usize) -> bool {
        if !self.config.pi_ambiguity {
            return false;
        }
        let mut h = self.config.seed ^ 0x9E37_79B9;
        for v in [tag as u64, antenna as u64, channel as u64] {
            h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 31;
        }
        h & 1 == 1
    }

    /// Probability that a tag at distance `d` responds in one slot.
    fn read_probability(&self, d: f64) -> f64 {
        // Logistic fall-off around the harvesting limit; near-certain
        // reads at close range, none far beyond the limit.
        let x = (self.config.half_read_range_m - d) / 0.7;
        0.98 / (1.0 + (-x).exp())
    }

    /// Gaussian sample via Box–Muller.
    fn gauss(&mut self, std: f64) -> f64 {
        if std <= 0.0 {
            return 0.0;
        }
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Runs one inventory round (each antenna port once) starting at
    /// time `t`, against the given scene.
    pub fn inventory_round(&mut self, scene: &SceneSnapshot, t: f64) -> Vec<TagReading> {
        let mut out = Vec::new();
        for a in 0..self.config.n_antennas {
            let t_a = t + a as f64 * self.config.inventory_slot_s;
            let channel = self.schedule.channel_at(t_a);
            let freq = self.schedule.frequency_at(t_a);
            let mut reads_this_slot = 0usize;
            for (tag_idx, &pos) in scene.tag_positions.iter().enumerate() {
                if let Some(cap) = self.config.slot_capacity {
                    if reads_this_slot >= cap {
                        break; // Gen2 slot exhausted: remaining tags miss out
                    }
                }
                let d = pos.distance(self.config.array_center);
                let p_read = self.read_probability(d);
                if self.rng.gen_range(0.0..1.0) > p_read {
                    continue;
                }
                let paths = if self.config.second_order_reflections {
                    enumerate_paths_second_order(
                        &self.room,
                        pos,
                        self.config.array_center,
                        self.config.array_axis,
                        &scene.blockers,
                        self.config.min_path_amplitude,
                    )
                } else {
                    enumerate_paths(
                        &self.room,
                        pos,
                        self.config.array_center,
                        self.config.array_axis,
                        &scene.blockers,
                        self.config.min_path_amplitude,
                    )
                };
                let h = backscatter_response(&paths, a, self.config.antenna_spacing_m, freq);
                if h.norm() < 1e-12 {
                    continue; // deep fade: no decodable response
                }
                let tag_phase = self.tag_phases[tag_idx];
                let mut phase = h.arg()
                    + tag_phase
                    + self.offsets.offset(a, channel)
                    + self.gauss(self.config.phase_noise_std);
                if self.pi_flip(tag_idx, a, channel) {
                    phase += std::f64::consts::PI;
                }
                let phase = phase.rem_euclid(2.0 * std::f64::consts::PI);

                let rssi_raw =
                    20.0 * h.norm().log10() - 10.0 + self.gauss(self.config.rssi_noise_db);
                let q = self.config.rssi_quantum_db;
                let rssi = if q > 0.0 {
                    (rssi_raw / q).round() * q
                } else {
                    rssi_raw
                };

                let v = scene.velocity(tag_idx);
                let radial = v.dot((self.config.array_center - pos).normalized());
                let doppler = 2.0 * radial * freq / SPEED_OF_LIGHT + self.gauss(0.3);

                // The clean read happened (it consumed RNG and a Gen2
                // slot) even if the fault layer then loses the report.
                reads_this_slot += 1;
                let reading = TagReading {
                    time_s: t_a,
                    tag: TagId(tag_idx),
                    antenna: a,
                    channel,
                    frequency_hz: freq,
                    phase_rad: phase,
                    rssi_dbm: rssi,
                    doppler_hz: doppler,
                };
                if let Some(reading) = self.faults.transform(reading) {
                    out.push(reading);
                }
            }
        }
        reads_emitted().add(out.len() as u64);
        out
    }

    /// [`Reader::inventory_round`] tagged for tracing: head-samples a
    /// fresh trace for the round ([`m2ai_obs::trace::begin_trace`] —
    /// [`m2ai_obs::trace::TraceContext::NONE`] whenever sampling is
    /// off, so the readings themselves are bit-identical either way),
    /// records the round as an `ingest` span, and returns the context
    /// so callers can carry it through extraction and serving.
    pub fn inventory_round_traced(
        &mut self,
        scene: &SceneSnapshot,
        t: f64,
    ) -> (Vec<TagReading>, m2ai_obs::trace::TraceContext) {
        let root = m2ai_obs::trace::begin_trace();
        let mut span = root.child("ingest");
        span.set_time_s(t);
        let out = self.inventory_round(scene, t);
        let ctx = span.ctx();
        span.end();
        // Downstream spans parent to the ingest span, not the bare
        // root, so the round's full tree hangs together.
        (out, if ctx.is_sampled() { ctx } else { root })
    }

    /// Runs the reader for `duration_s`, querying `scene_at` for the
    /// world state at the start of each inventory round.
    ///
    /// Returns all read reports in time order.
    pub fn run<F>(&mut self, mut scene_at: F, duration_s: f64) -> Vec<TagReading>
    where
        F: FnMut(f64) -> SceneSnapshot,
    {
        let round = self.config.round_duration_s();
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < duration_s {
            let scene = scene_at(t);
            out.extend(self.inventory_round(&scene, t));
            t += round;
        }
        out
    }

    /// [`Reader::run`] with per-round trace tagging: yields one
    /// `(round_start, readings, context)` triple per inventory round
    /// via [`Reader::inventory_round_traced`]. The readings across all
    /// rounds are bit-identical to [`Reader::run`]'s.
    pub fn run_traced<F>(
        &mut self,
        mut scene_at: F,
        duration_s: f64,
    ) -> Vec<(f64, Vec<TagReading>, m2ai_obs::trace::TraceContext)>
    where
        F: FnMut(f64) -> SceneSnapshot,
    {
        let round = self.config.round_duration_s();
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < duration_s {
            let scene = scene_at(t);
            let (readings, ctx) = self.inventory_round_traced(&scene, t);
            out.push((t, readings, ctx));
            t += round;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_scene(d: f64) -> SceneSnapshot {
        // Tag straight ahead of the default array centre (5.0, 0.3).
        SceneSnapshot::with_tags(vec![Point2::new(5.0, 0.3 + d)])
    }

    #[test]
    fn produces_readings_for_nearby_tag() {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        let readings = reader.run(|_| static_scene(3.0), 2.0);
        // 20 rounds × 4 antennas ≈ 80 slots, high read probability.
        assert!(readings.len() > 80 / 2, "got {}", readings.len());
        for r in &readings {
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&r.phase_rad));
            assert!(r.rssi_dbm < 0.0);
            assert!(r.channel < crate::channel::N_CHANNELS);
        }
    }

    #[test]
    fn read_rate_decays_with_distance() {
        let cfg = ReaderConfig::default();
        let mut near = Reader::new(Room::hall(), cfg.clone(), 1);
        let n_near = near.run(|_| static_scene(2.0), 4.0).len();
        let mut far = Reader::new(Room::hall(), cfg.clone(), 1);
        let n_far = far.run(|_| static_scene(6.5), 4.0).len();
        let mut gone = Reader::new(Room::hall(), cfg, 1);
        let n_gone = gone.run(|_| static_scene(15.0), 4.0).len();
        assert!(n_near > n_far, "near {n_near} vs far {n_far}");
        assert_eq!(n_gone, 0, "beyond range must not read");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ReaderConfig::default();
        let run1 = Reader::new(Room::hall(), cfg.clone(), 1).run(|_| static_scene(3.0), 1.0);
        let run2 = Reader::new(Room::hall(), cfg, 1).run(|_| static_scene(3.0), 1.0);
        assert_eq!(run1, run2);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg2 = ReaderConfig {
            seed: 99,
            ..ReaderConfig::default()
        };
        let run1 =
            Reader::new(Room::hall(), ReaderConfig::default(), 1).run(|_| static_scene(3.0), 1.0);
        let run2 = Reader::new(Room::hall(), cfg2, 1).run(|_| static_scene(3.0), 1.0);
        assert_ne!(run1, run2);
    }

    #[test]
    fn antennas_round_robin_within_round() {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        let scene = static_scene(2.0);
        let readings = reader.inventory_round(&scene, 0.0);
        let antennas: Vec<usize> = readings.iter().map(|r| r.antenna).collect();
        // With a 2 m tag nearly every slot reads; antennas appear in order.
        assert!(antennas.len() >= 3);
        for w in antennas.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn channel_constant_within_round() {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 2);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(4.0, 3.0), Point2::new(6.0, 3.0)]);
        let readings = reader.inventory_round(&scene, 0.0);
        // Round duration 100 ms < dwell 400 ms ⇒ single channel.
        let channels: std::collections::HashSet<usize> =
            readings.iter().map(|r| r.channel).collect();
        assert_eq!(channels.len(), 1);
    }

    #[test]
    fn hopping_changes_channel_across_dwells() {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        let readings = reader.run(|_| static_scene(3.0), 3.0);
        let channels: std::collections::HashSet<usize> =
            readings.iter().map(|r| r.channel).collect();
        assert!(channels.len() >= 3, "expected several dwells in 3 s");
    }

    #[test]
    fn stationary_tag_phase_stable_within_channel() {
        // Same channel + stationary scene ⇒ phase varies only by noise.
        let cfg = ReaderConfig {
            phase_noise_std: 0.0,
            rssi_noise_db: 0.0,
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(Room::hall(), cfg, 1);
        let scene = static_scene(3.0);
        let r1 = reader.inventory_round(&scene, 0.0);
        let r2 = reader.inventory_round(&scene, 0.1); // same dwell
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.antenna, b.antenna);
            assert!((a.phase_rad - b.phase_rad).abs() < 1e-9);
        }
    }

    #[test]
    fn pi_ambiguity_flips_some_links() {
        let reader = Reader::new(Room::hall(), ReaderConfig::default(), 3);
        let mut flips = 0;
        let mut total = 0;
        for tag in 0..3 {
            for a in 0..4 {
                for c in 0..50 {
                    total += 1;
                    if reader.pi_flip(tag, a, c) {
                        flips += 1;
                    }
                }
            }
        }
        let frac = flips as f64 / total as f64;
        assert!((0.3..0.7).contains(&frac), "flip fraction {frac}");
    }

    #[test]
    fn rssi_is_quantised() {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        let readings = reader.run(|_| static_scene(3.0), 1.0);
        for r in readings {
            let steps = r.rssi_dbm / 0.5;
            assert!((steps - steps.round()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "n_antennas")]
    fn rejects_too_many_antennas() {
        let cfg = ReaderConfig {
            n_antennas: 5,
            ..ReaderConfig::default()
        };
        Reader::new(Room::hall(), cfg, 1);
    }

    #[test]
    fn slot_capacity_limits_reads_per_slot() {
        let scene = SceneSnapshot::with_tags(vec![
            Point2::new(4.0, 2.0),
            Point2::new(5.0, 2.0),
            Point2::new(6.0, 2.0),
        ]);
        let cfg = ReaderConfig {
            slot_capacity: Some(2),
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(Room::hall(), cfg, 3);
        let readings = reader.run(|_| scene.clone(), 2.0);
        // No (antenna, round) pair may exceed the capacity.
        use std::collections::HashMap;
        let mut per_slot: HashMap<(usize, i64), usize> = HashMap::new();
        for r in &readings {
            let round = (r.time_s / 0.025).round() as i64;
            *per_slot.entry((r.antenna, round)).or_default() += 1;
        }
        assert!(per_slot.values().all(|&c| c <= 2));
        // Tag 2 (enumerated last) is starved relative to tag 0.
        let count = |tag: usize| readings.iter().filter(|r| r.tag == TagId(tag)).count();
        assert!(count(0) >= count(2));
    }

    #[test]
    fn second_order_changes_the_channel() {
        let cfg2 = ReaderConfig {
            second_order_reflections: true,
            ..ReaderConfig::default()
        };
        let base = Reader::new(Room::laboratory(), ReaderConfig::default(), 1)
            .run(|_| static_scene(3.0), 0.5);
        let rich = Reader::new(Room::laboratory(), cfg2, 1).run(|_| static_scene(3.0), 0.5);
        assert_eq!(base.len(), rich.len());
        assert!(
            base.iter()
                .zip(&rich)
                .any(|(a, b)| (a.phase_rad - b.phase_rad).abs() > 1e-6),
            "double bounces must perturb phases"
        );
    }

    #[test]
    fn none_fault_plan_is_bit_identical() {
        let cfg = ReaderConfig::default();
        let clean = Reader::new(Room::hall(), cfg.clone(), 1).run(|_| static_scene(3.0), 2.0);
        let planned = Reader::new(Room::hall(), cfg, 1)
            .with_fault_plan(FaultPlan::none())
            .run(|_| static_scene(3.0), 2.0);
        assert_eq!(clean, planned);
    }

    #[test]
    fn faults_reduce_reads_without_perturbing_survivors_downstream() {
        // The fault layer must not consume reader RNG: surviving reads
        // are bit-identical to their clean counterparts.
        let cfg = ReaderConfig::default();
        let clean = Reader::new(Room::hall(), cfg.clone(), 1).run(|_| static_scene(3.0), 2.0);
        let plan = FaultPlan {
            seed: 77,
            miss_rate: 0.4,
            ..FaultPlan::none()
        };
        let faulted = Reader::new(Room::hall(), cfg, 1)
            .with_fault_plan(plan)
            .run(|_| static_scene(3.0), 2.0);
        assert!(faulted.len() < clean.len());
        // Every faulted reading appears verbatim in the clean stream.
        for r in &faulted {
            assert!(clean.contains(r));
        }
    }

    #[test]
    fn doppler_sign_tracks_motion() {
        let cfg = ReaderConfig {
            seed: 5,
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(Room::hall(), cfg, 1);
        // Tag moving toward the array at 1 m/s.
        let mut scene = static_scene(4.0);
        scene.tag_velocities = vec![Vec2::new(0.0, -1.0)];
        let readings = reader.run(|_| scene.clone(), 4.0);
        let mean_doppler: f64 =
            readings.iter().map(|r| r.doppler_hz).sum::<f64>() / readings.len() as f64;
        // 2·v·f/c ≈ 6 Hz at 910 MHz.
        assert!(mean_doppler > 3.0, "mean doppler {mean_doppler}");
    }
}
