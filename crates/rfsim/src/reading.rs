//! LLRP-style tag read reports.

/// Identifier of a simulated tag (index into the scene's tag list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub usize);

impl std::fmt::Display for TagId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // EPC-looking rendering for logs.
        write!(f, "E280-1160-6000-{:04}", self.0)
    }
}

/// One low-level read report, mirroring the fields the Impinj LLRP
/// `RFPhaseAngle`/`PeakRSSI`/`RFDopplerFrequency` extensions expose.
#[derive(Debug, Clone, PartialEq)]
pub struct TagReading {
    /// Read timestamp in seconds from the start of the run.
    pub time_s: f64,
    /// Which tag was read.
    pub tag: TagId,
    /// Antenna port (0-based) that performed the read.
    pub antenna: usize,
    /// Hopping channel index at read time.
    pub channel: usize,
    /// Channel centre frequency in Hz.
    pub frequency_hz: f64,
    /// Reported phase in radians, `[0, 2π)` — includes multipath,
    /// hopping offset and the π reporting ambiguity.
    pub phase_rad: f64,
    /// Received signal strength in dBm (quantised like the R420).
    pub rssi_dbm: f64,
    /// Reported Doppler shift in Hz.
    pub doppler_hz: f64,
}

impl TagReading {
    /// Linear-amplitude complex baseband sample reconstructed from the
    /// report: `10^(rssi/20 scale)·e^{i·phase}` — what the preprocessing
    /// stage feeds to the spectral estimators.
    pub fn baseband(&self) -> (f64, f64) {
        let amp = 10f64.powf(self.rssi_dbm / 20.0);
        (amp * self.phase_rad.cos(), amp * self.phase_rad.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_id_displays_like_epc() {
        assert_eq!(TagId(7).to_string(), "E280-1160-6000-0007");
    }

    #[test]
    fn baseband_reconstruction() {
        let r = TagReading {
            time_s: 0.0,
            tag: TagId(0),
            antenna: 0,
            channel: 0,
            frequency_hz: 902.75e6,
            phase_rad: std::f64::consts::FRAC_PI_2,
            rssi_dbm: -20.0,
            doppler_hz: 0.0,
        };
        let (re, im) = r.baseband();
        assert!(re.abs() < 1e-12);
        assert!((im - 0.1).abs() < 1e-9);
    }
}
