//! Instantaneous world state fed to the reader at each inventory slot.

use crate::geometry::{Point2, Vec2};

/// A moving body that attenuates paths passing through it.
///
/// Persons are modelled as vertical cylinders; a propagation path whose
/// plan-view segment passes within `radius` of `center` suffers
/// `attenuation_db` of extra loss (the human body attenuates UHF by
/// 10–20 dB). This is the mechanism behind Fig. 2(b): a mover blocking
/// the 40° path kills that pseudospectrum peak and shifts the others.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blocker {
    /// Cylinder centre in the room plane.
    pub center: Point2,
    /// Cylinder radius in metres (~0.25 m for a person).
    pub radius: f64,
    /// Extra path loss when blocked, in dB.
    pub attenuation_db: f64,
}

impl Blocker {
    /// A default adult-person blocker at the given position.
    pub fn person(center: Point2) -> Self {
        Blocker {
            center,
            radius: 0.25,
            attenuation_db: 15.0,
        }
    }
}

/// The state of every simulated object at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SceneSnapshot {
    /// Position of each tag, indexed by tag id.
    pub tag_positions: Vec<Point2>,
    /// Velocity of each tag (m/s), used for Doppler reports. Must be
    /// empty or the same length as `tag_positions`.
    pub tag_velocities: Vec<Vec2>,
    /// Bodies that can occlude propagation paths.
    pub blockers: Vec<Blocker>,
}

impl SceneSnapshot {
    /// A static scene containing only tags (no movers, zero velocity).
    pub fn with_tags(tag_positions: Vec<Point2>) -> Self {
        SceneSnapshot {
            tag_positions,
            tag_velocities: Vec::new(),
            blockers: Vec::new(),
        }
    }

    /// Velocity of tag `i`, defaulting to zero when not provided.
    pub fn velocity(&self, i: usize) -> Vec2 {
        self.tag_velocities.get(i).copied().unwrap_or_default()
    }

    /// Number of tags in the scene.
    pub fn n_tags(&self) -> usize {
        self.tag_positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_person_blocker() {
        let b = Blocker::person(Point2::new(1.0, 2.0));
        assert_eq!(b.radius, 0.25);
        assert!(b.attenuation_db > 0.0);
    }

    #[test]
    fn velocities_default_to_zero() {
        let s = SceneSnapshot::with_tags(vec![Point2::new(0.0, 0.0); 3]);
        assert_eq!(s.n_tags(), 3);
        assert_eq!(s.velocity(2), Vec2::default());
        assert_eq!(s.velocity(99), Vec2::default());
    }
}
