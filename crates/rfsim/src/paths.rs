//! Image-method multipath enumeration with body occlusion.
//!
//! For a tag at `src` and the antenna array centred at `dst` this module
//! enumerates the propagation paths the paper's Fig. 2 talks about:
//!
//! * the **direct** line-of-sight path;
//! * one **first-order reflection** per wall (via the image method);
//! * one **scatter** path per furniture scatterer.
//!
//! Each path carries its total length, its angle of arrival at the
//! array, and a linear amplitude combining free-space spreading,
//! reflection/scatter loss, and occlusion loss from any [`Blocker`]
//! intersecting a leg of the path.

use crate::geometry::{mirror_point, Point2, Segment, Vec2};
use crate::room::Room;
use crate::scene::Blocker;

/// What kind of propagation mechanism produced a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Direct line of sight.
    Direct,
    /// Single reflection off wall `i`.
    WallReflection(usize),
    /// Re-radiation from furniture scatterer `i`.
    Scatter(usize),
    /// Double bounce off wall `i` then wall `j`.
    DoubleReflection(usize, usize),
}

/// One propagation path from a tag to the antenna array.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationPath {
    /// Total one-way geometric length in metres.
    pub length: f64,
    /// Angle of arrival at the array in degrees `[0, 180]`, measured
    /// from the array axis as in Fig. 4(c).
    pub aoa_deg: f64,
    /// Linear amplitude (free space × reflection × occlusion).
    pub amplitude: f64,
    /// Mechanism that produced this path.
    pub kind: PathKind,
    /// `true` if at least one blocker occludes a leg of the path.
    pub blocked: bool,
}

/// Converts a dB loss into a linear amplitude factor.
pub fn db_loss_to_amplitude(loss_db: f64) -> f64 {
    10f64.powf(-loss_db / 20.0)
}

/// Free-space amplitude after travelling `d` metres (normalised to 1 at
/// 1 m; clamped below 0.1 m to avoid the near-field singularity).
pub fn free_space_amplitude(d: f64) -> f64 {
    1.0 / d.max(0.1)
}

/// Total occlusion loss (dB) a straight leg suffers from the blockers.
///
/// The endpoints themselves are exempted within a small radius so a tag
/// worn *on* a person is not considered blocked by that person's own
/// body cylinder.
pub fn occlusion_loss_db(leg: &Segment, blockers: &[Blocker]) -> f64 {
    let mut loss = 0.0;
    for b in blockers {
        // Skip blockers essentially sitting on an endpoint (own body).
        if b.center.distance(leg.a) <= b.radius + 0.05
            || b.center.distance(leg.b) <= b.radius + 0.05
        {
            continue;
        }
        if leg.distance_to_point(b.center) < b.radius {
            loss += b.attenuation_db;
        }
    }
    loss
}

/// Angle of arrival (degrees in `[0, 180]`) of a ray arriving at the
/// array centre from `from`, for an array whose axis points along
/// `axis`.
pub fn arrival_angle_deg(array_center: Point2, axis: Vec2, from: Point2) -> f64 {
    let incoming = array_center.to(from); // direction the energy comes FROM
    let cos_theta = incoming.normalized().dot(axis.normalized());
    cos_theta.clamp(-1.0, 1.0).acos().to_degrees()
}

/// Enumerates every propagation path from `tag` to the array centre.
///
/// `array_axis` orients the ULA (the AoA reference); `blockers` add
/// occlusion loss per leg. Paths whose amplitude falls below
/// `min_amplitude` are discarded (they contribute nothing but noise
/// floor). First-order reflections and scatterers only; see
/// [`enumerate_paths_second_order`] for the double-bounce extension.
pub fn enumerate_paths(
    room: &Room,
    tag: Point2,
    array_center: Point2,
    array_axis: Vec2,
    blockers: &[Blocker],
    min_amplitude: f64,
) -> Vec<PropagationPath> {
    let mut paths = Vec::new();

    // Direct path.
    {
        let leg = Segment::new(tag, array_center);
        let occ = occlusion_loss_db(&leg, blockers);
        let length = leg.length();
        let amplitude = free_space_amplitude(length) * db_loss_to_amplitude(occ);
        paths.push(PropagationPath {
            length,
            aoa_deg: arrival_angle_deg(array_center, array_axis, tag),
            amplitude,
            kind: PathKind::Direct,
            blocked: occ > 0.0,
        });
    }

    // First-order wall reflections via the image method.
    for (i, wall) in room.walls.iter().enumerate() {
        let image = mirror_point(tag, &wall.segment);
        let virtual_leg = Segment::new(image, array_center);
        let Some(hit) = virtual_leg.intersection(&wall.segment) else {
            continue; // reflection point falls outside the wall extent
        };
        let leg1 = Segment::new(tag, hit);
        let leg2 = Segment::new(hit, array_center);
        let occ = occlusion_loss_db(&leg1, blockers) + occlusion_loss_db(&leg2, blockers);
        let length = leg1.length() + leg2.length();
        let amplitude =
            free_space_amplitude(length) * db_loss_to_amplitude(wall.reflection_loss_db + occ);
        if amplitude < min_amplitude {
            continue;
        }
        paths.push(PropagationPath {
            length,
            aoa_deg: arrival_angle_deg(array_center, array_axis, hit),
            amplitude,
            kind: PathKind::WallReflection(i),
            blocked: occ > 0.0,
        });
    }

    // Furniture scatter paths.
    for (i, sc) in room.scatterers.iter().enumerate() {
        let leg1 = Segment::new(tag, sc.position);
        let leg2 = Segment::new(sc.position, array_center);
        let occ = occlusion_loss_db(&leg1, blockers) + occlusion_loss_db(&leg2, blockers);
        let length = leg1.length() + leg2.length();
        let amplitude =
            free_space_amplitude(length) * db_loss_to_amplitude(sc.scatter_loss_db + occ);
        if amplitude < min_amplitude {
            continue;
        }
        paths.push(PropagationPath {
            length,
            aoa_deg: arrival_angle_deg(array_center, array_axis, sc.position),
            amplitude,
            kind: PathKind::Scatter(i),
            blocked: occ > 0.0,
        });
    }

    paths
}

/// Second-order (double-bounce) wall reflections, appended to the
/// first-order path set.
///
/// The image method composes: mirror the tag across wall `i`, mirror
/// the image across wall `j` (`j ≠ i`), and trace back through both
/// reflection points. Double bounces are 10–20 dB below first-order
/// paths in typical rooms but visibly enrich the angular spectrum in
/// highly reflective environments.
pub fn enumerate_paths_second_order(
    room: &Room,
    tag: Point2,
    array_center: Point2,
    array_axis: Vec2,
    blockers: &[Blocker],
    min_amplitude: f64,
) -> Vec<PropagationPath> {
    let mut paths = enumerate_paths(room, tag, array_center, array_axis, blockers, min_amplitude);
    for (i, wall_i) in room.walls.iter().enumerate() {
        let image1 = mirror_point(tag, &wall_i.segment);
        for (j, wall_j) in room.walls.iter().enumerate() {
            if i == j {
                continue;
            }
            let image2 = mirror_point(image1, &wall_j.segment);
            // Trace back: array ← hit_j ← hit_i ← tag.
            let Some(hit_j) = Segment::new(image2, array_center).intersection(&wall_j.segment)
            else {
                continue;
            };
            let Some(hit_i) = Segment::new(image1, hit_j).intersection(&wall_i.segment) else {
                continue;
            };
            let leg1 = Segment::new(tag, hit_i);
            let leg2 = Segment::new(hit_i, hit_j);
            let leg3 = Segment::new(hit_j, array_center);
            let occ = occlusion_loss_db(&leg1, blockers)
                + occlusion_loss_db(&leg2, blockers)
                + occlusion_loss_db(&leg3, blockers);
            let length = leg1.length() + leg2.length() + leg3.length();
            let amplitude = free_space_amplitude(length)
                * db_loss_to_amplitude(wall_i.reflection_loss_db + wall_j.reflection_loss_db + occ);
            if amplitude < min_amplitude {
                continue;
            }
            paths.push(PropagationPath {
                length,
                aoa_deg: arrival_angle_deg(array_center, array_axis, hit_j),
                amplitude,
                kind: PathKind::DoubleReflection(i, j),
                blocked: occ > 0.0,
            });
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_room() -> Room {
        Room::rectangular("t", 10.0, 8.0, 6.0)
    }

    #[test]
    fn direct_path_always_present() {
        let room = simple_room();
        let paths = enumerate_paths(
            &room,
            Point2::new(5.0, 5.0),
            Point2::new(5.0, 1.0),
            Vec2::new(1.0, 0.0),
            &[],
            0.0,
        );
        assert!(paths.iter().any(|p| p.kind == PathKind::Direct));
        let direct = paths.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        assert!((direct.length - 4.0).abs() < 1e-9);
        // Tag straight "up" from array centre: 90° from an x-axis array.
        assert!((direct.aoa_deg - 90.0).abs() < 1e-9);
    }

    #[test]
    fn four_wall_reflections_in_open_room() {
        let room = simple_room();
        let paths = enumerate_paths(
            &room,
            Point2::new(4.0, 5.0),
            Point2::new(6.0, 2.0),
            Vec2::new(1.0, 0.0),
            &[],
            0.0,
        );
        let reflections = paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::WallReflection(_)))
            .count();
        assert_eq!(reflections, 4);
    }

    #[test]
    fn reflection_longer_and_weaker_than_direct() {
        let room = simple_room();
        let paths = enumerate_paths(
            &room,
            Point2::new(3.0, 6.0),
            Point2::new(7.0, 2.0),
            Vec2::new(1.0, 0.0),
            &[],
            0.0,
        );
        let direct = paths.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        for p in paths.iter().filter(|p| p.kind != PathKind::Direct) {
            assert!(p.length > direct.length, "{:?}", p.kind);
            assert!(p.amplitude < direct.amplitude, "{:?}", p.kind);
        }
    }

    #[test]
    fn blocker_attenuates_direct_path() {
        let room = simple_room();
        let tag = Point2::new(5.0, 6.0);
        let array = Point2::new(5.0, 1.0);
        let axis = Vec2::new(1.0, 0.0);
        let clear = enumerate_paths(&room, tag, array, axis, &[], 0.0);
        let blocker = Blocker::person(Point2::new(5.0, 3.5));
        let blocked = enumerate_paths(&room, tag, array, axis, &[blocker], 0.0);
        let d_clear = clear.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        let d_blocked = blocked.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        assert!(d_blocked.blocked);
        assert!(d_blocked.amplitude < d_clear.amplitude * 0.5);
    }

    #[test]
    fn own_body_does_not_block() {
        let room = simple_room();
        let tag = Point2::new(5.0, 6.0);
        // Blocker centred exactly at the tag (a person wearing it).
        let own = Blocker::person(tag);
        let paths = enumerate_paths(
            &room,
            tag,
            Point2::new(5.0, 1.0),
            Vec2::new(1.0, 0.0),
            &[own],
            0.0,
        );
        let direct = paths.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        assert!(!direct.blocked);
    }

    #[test]
    fn scatterers_add_paths() {
        let room = simple_room().with_scatterer(Point2::new(8.0, 7.0), 8.0);
        let paths = enumerate_paths(
            &room,
            Point2::new(4.0, 5.0),
            Point2::new(5.0, 1.0),
            Vec2::new(1.0, 0.0),
            &[],
            0.0,
        );
        assert!(paths.iter().any(|p| p.kind == PathKind::Scatter(0)));
    }

    #[test]
    fn min_amplitude_prunes() {
        let room = simple_room();
        let all = enumerate_paths(
            &room,
            Point2::new(4.0, 5.0),
            Point2::new(6.0, 2.0),
            Vec2::new(1.0, 0.0),
            &[],
            0.0,
        );
        let pruned = enumerate_paths(
            &room,
            Point2::new(4.0, 5.0),
            Point2::new(6.0, 2.0),
            Vec2::new(1.0, 0.0),
            &[],
            1.0, // higher than any reflection amplitude
        );
        assert!(pruned.len() < all.len());
        assert!(pruned.iter().any(|p| p.kind == PathKind::Direct));
    }

    #[test]
    fn aoa_endfire_and_broadside() {
        let center = Point2::new(0.0, 0.0);
        let axis = Vec2::new(1.0, 0.0);
        assert!((arrival_angle_deg(center, axis, Point2::new(3.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((arrival_angle_deg(center, axis, Point2::new(0.0, 5.0)) - 90.0).abs() < 1e-9);
        assert!((arrival_angle_deg(center, axis, Point2::new(-2.0, 0.0)) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn second_order_paths_exist_and_are_longer() {
        let room = simple_room();
        let tag = Point2::new(3.0, 5.0);
        let array = Point2::new(7.0, 2.0);
        let axis = Vec2::new(1.0, 0.0);
        let first = enumerate_paths(&room, tag, array, axis, &[], 0.0);
        let all = enumerate_paths_second_order(&room, tag, array, axis, &[], 0.0);
        assert!(all.len() > first.len(), "no double bounces found");
        let direct_len = first
            .iter()
            .find(|p| p.kind == PathKind::Direct)
            .unwrap()
            .length;
        for p in &all {
            if let PathKind::DoubleReflection(i, j) = p.kind {
                assert_ne!(i, j);
                assert!(p.length > direct_len);
                // Double bounces are weaker than the direct path.
                assert!(p.amplitude < first[0].amplitude);
            }
        }
    }

    #[test]
    fn second_order_length_matches_double_image() {
        // Path length must equal |mirror(mirror(tag)) - array|.
        let room = simple_room();
        let tag = Point2::new(4.0, 5.0);
        let array = Point2::new(6.0, 3.0);
        let axis = Vec2::new(1.0, 0.0);
        let all = enumerate_paths_second_order(&room, tag, array, axis, &[], 0.0);
        for p in &all {
            if let PathKind::DoubleReflection(i, j) = p.kind {
                let img1 = crate::geometry::mirror_point(tag, &room.walls[i].segment);
                let img2 = crate::geometry::mirror_point(img1, &room.walls[j].segment);
                assert!(
                    (p.length - img2.distance(array)).abs() < 1e-9,
                    "image-method length mismatch for ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn db_conversion() {
        assert!((db_loss_to_amplitude(0.0) - 1.0).abs() < 1e-12);
        assert!((db_loss_to_amplitude(20.0) - 0.1).abs() < 1e-12);
        assert!((db_loss_to_amplitude(6.0) - 0.501).abs() < 0.01);
    }
}
