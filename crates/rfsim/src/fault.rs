//! Deterministic fault injection for the reading stream.
//!
//! Real UHF-RFID deployments lose and corrupt reads constantly: Gen2
//! slot collisions starve tags, bodies occlude antennas, cables and
//! multiplexers brown out, and the receive chain occasionally reports
//! garbage phase. A [`FaultPlan`] reproduces those impairments as a
//! *pure post-transform* on [`TagReading`]s, so that
//!
//! * the clean pipeline is untouched — [`FaultPlan::none`] passes every
//!   reading through bit-identically and consumes no randomness;
//! * every fault decision is a deterministic hash of the plan seed and
//!   the reading's coordinates (tag, antenna, channel, time), never of
//!   execution order — the same plan applied to the same stream yields
//!   the same faults on any thread count;
//! * faults compose: each impairment has its own rate knob and they
//!   apply independently, in a fixed order (drops first, then signal
//!   corruption).
//!
//! The modelled faults and their physical analogues:
//!
//! | knob | physical fault |
//! |---|---|
//! | `antenna_dropout_rate` | a port goes dark for whole intervals (cable/mux fault) |
//! | `tag_occlusion_rate` | a tag is shadowed for a burst (body blocks the link) |
//! | `miss_rate` | elevated per-read miss (Gen2 slot collisions under load) |
//! | `phase_glitch_rate` | discontinuous phase jumps (PLL re-lock glitches) |
//! | `brownout_rate` | interval-wide RSSI sag (supply/LNA brownout) |
//! | `corrupt_rate` | non-finite phase/RSSI fields (malformed LLRP reports) |

use crate::reading::TagReading;

/// Fault-fired counters, one label child per impairment kind. Handles
/// resolve once per process; recording a fault is one relaxed atomic
/// add, and the bit-exact [`FaultPlan::none`] fast path never touches
/// them.
mod obs_metrics {
    use std::sync::OnceLock;

    pub(super) struct FaultCounters {
        pub antenna_dropout: m2ai_obs::Counter,
        pub tag_occlusion: m2ai_obs::Counter,
        pub miss: m2ai_obs::Counter,
        pub brownout: m2ai_obs::Counter,
        pub phase_glitch: m2ai_obs::Counter,
        pub corrupt: m2ai_obs::Counter,
    }

    pub(super) fn faults() -> &'static FaultCounters {
        static C: OnceLock<FaultCounters> = OnceLock::new();
        C.get_or_init(|| {
            let help = "faults fired by the FaultPlan post-transform, by impairment kind";
            let c = |labels| m2ai_obs::counter("m2ai_reader_faults_total", help, labels);
            FaultCounters {
                antenna_dropout: c(&[("kind", "antenna_dropout")]),
                tag_occlusion: c(&[("kind", "tag_occlusion")]),
                miss: c(&[("kind", "miss")]),
                brownout: c(&[("kind", "brownout")]),
                phase_glitch: c(&[("kind", "phase_glitch")]),
                corrupt: c(&[("kind", "corrupt")]),
            }
        })
    }
}

/// SplitMix64 finalizer — the same mixing used for the reader's
/// deterministic π-ambiguity flips.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes `(seed, salt, vals…)` into a u64, order-sensitively.
fn hash(seed: u64, salt: u64, vals: &[u64]) -> u64 {
    let mut h = mix(seed ^ salt);
    for &v in vals {
        h = mix(h ^ v);
    }
    h
}

/// Maps a hash to a uniform sample in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Interval index of time `t` under interval length `len` (0 when the
/// length is degenerate, so rate-0 plans never divide by zero).
fn interval_index(t: f64, len: f64) -> u64 {
    if len > 0.0 && t.is_finite() {
        (t / len).floor().max(0.0) as u64
    } else {
        0
    }
}

const SALT_ANTENNA: u64 = 0xA17E_17A0;
const SALT_OCCLUDE: u64 = 0x0CC1_0DE5;
const SALT_MISS: u64 = 0x5107_3717;
const SALT_GLITCH: u64 = 0x611C_7C4E;
const SALT_GLITCH_MAG: u64 = 0x611C_7C4F;
const SALT_BROWNOUT: u64 = 0xB0B0_0D07;
const SALT_CORRUPT: u64 = 0xC0FF_EE00;
const SALT_CORRUPT_FIELD: u64 = 0xC0FF_EE01;

/// A composable, seed-driven fault-injection plan.
///
/// All `*_rate` knobs are probabilities in `[0, 1]`; a plan with every
/// rate at zero (see [`FaultPlan::none`]) is the identity transform.
/// Interval-style faults (antenna dropout, tag occlusion, brownout)
/// partition time into fixed-length scheduling intervals and decide
/// per interval; per-read faults (miss, glitch, corruption) decide per
/// reading.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed driving every fault decision (independent of the reader's).
    pub seed: u64,
    /// Probability an antenna port is dark during a given interval.
    pub antenna_dropout_rate: f64,
    /// Antenna-dropout scheduling interval, seconds.
    pub antenna_dropout_interval_s: f64,
    /// Probability a tag is occluded during a given burst interval.
    pub tag_occlusion_rate: f64,
    /// Tag-occlusion burst interval, seconds.
    pub tag_occlusion_interval_s: f64,
    /// Extra per-read miss probability (Gen2 slot starvation).
    pub miss_rate: f64,
    /// Per-read probability of a discontinuous phase jump.
    pub phase_glitch_rate: f64,
    /// Magnitude ceiling of an injected phase jump, radians.
    pub phase_glitch_max_rad: f64,
    /// Probability the whole array browns out during an interval.
    pub brownout_rate: f64,
    /// Brownout scheduling interval, seconds.
    pub brownout_interval_s: f64,
    /// RSSI attenuation while browned out, dB.
    pub brownout_depth_db: f64,
    /// Per-read probability a report field is corrupted to NaN.
    pub corrupt_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The identity plan: nothing is dropped or altered. Applying it is
    /// bit-identical to not applying a plan at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            antenna_dropout_rate: 0.0,
            antenna_dropout_interval_s: 1.0,
            tag_occlusion_rate: 0.0,
            tag_occlusion_interval_s: 0.5,
            miss_rate: 0.0,
            phase_glitch_rate: 0.0,
            phase_glitch_max_rad: std::f64::consts::PI,
            brownout_rate: 0.0,
            brownout_interval_s: 1.0,
            brownout_depth_db: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// `true` if no fault can ever fire (every rate is zero).
    pub fn is_none(&self) -> bool {
        self.antenna_dropout_rate <= 0.0
            && self.tag_occlusion_rate <= 0.0
            && self.miss_rate <= 0.0
            && self.phase_glitch_rate <= 0.0
            && self.brownout_rate <= 0.0
            && self.corrupt_rate <= 0.0
    }

    /// A plan with every impairment scaled by a single `intensity` in
    /// `[0, 1]` — the knob the robustness sweep drives. Intensity 0 is
    /// [`FaultPlan::none`]; intensity 1 loses roughly three quarters of
    /// all reads and corrupts a further few percent.
    pub fn with_intensity(intensity: f64, seed: u64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            antenna_dropout_rate: 0.35 * i,
            tag_occlusion_rate: 0.35 * i,
            miss_rate: 0.45 * i,
            phase_glitch_rate: 0.25 * i,
            brownout_rate: 0.40 * i,
            brownout_depth_db: 18.0 * i,
            corrupt_rate: 0.06 * i,
            ..FaultPlan::none()
        }
    }

    /// Validates the plan's knobs.
    ///
    /// # Panics
    ///
    /// Panics if a rate lies outside `[0, 1]` or an interval is
    /// non-positive (configuration errors, as distinct from the
    /// data-dependent failures the plan itself models).
    pub fn assert_valid(&self) {
        for (name, r) in [
            ("antenna_dropout_rate", self.antenna_dropout_rate),
            ("tag_occlusion_rate", self.tag_occlusion_rate),
            ("miss_rate", self.miss_rate),
            ("phase_glitch_rate", self.phase_glitch_rate),
            ("brownout_rate", self.brownout_rate),
            ("corrupt_rate", self.corrupt_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} must be in [0, 1]");
        }
        assert!(
            self.antenna_dropout_interval_s > 0.0
                && self.tag_occlusion_interval_s > 0.0
                && self.brownout_interval_s > 0.0,
            "fault intervals must be positive"
        );
    }

    /// Applies the plan to one reading: `None` if the read is lost,
    /// otherwise the (possibly corrupted) reading.
    ///
    /// Pure: the result depends only on the plan and the reading, so
    /// applying a plan is deterministic and thread-count invariant.
    pub fn transform(&self, mut r: TagReading) -> Option<TagReading> {
        if self.is_none() {
            return Some(r);
        }
        let fired = obs_metrics::faults();
        let tag = r.tag.0 as u64;
        let ant = r.antenna as u64;
        let t_bits = r.time_s.to_bits();

        // Drops first: a lost read cannot also be corrupted.
        if self.antenna_dropout_rate > 0.0 {
            let k = interval_index(r.time_s, self.antenna_dropout_interval_s);
            if unit(hash(self.seed, SALT_ANTENNA, &[ant, k])) < self.antenna_dropout_rate {
                fired.antenna_dropout.inc();
                return None;
            }
        }
        if self.tag_occlusion_rate > 0.0 {
            let k = interval_index(r.time_s, self.tag_occlusion_interval_s);
            if unit(hash(self.seed, SALT_OCCLUDE, &[tag, k])) < self.tag_occlusion_rate {
                fired.tag_occlusion.inc();
                return None;
            }
        }
        if self.miss_rate > 0.0
            && unit(hash(self.seed, SALT_MISS, &[tag, ant, t_bits])) < self.miss_rate
        {
            fired.miss.inc();
            return None;
        }

        // Signal corruption on the surviving reads.
        if self.brownout_rate > 0.0 {
            let k = interval_index(r.time_s, self.brownout_interval_s);
            if unit(hash(self.seed, SALT_BROWNOUT, &[k])) < self.brownout_rate {
                fired.brownout.inc();
                r.rssi_dbm -= self.brownout_depth_db;
                // Below the receive sensitivity the read is not
                // decodable at all.
                if r.rssi_dbm < -90.0 {
                    return None;
                }
            }
        }
        if self.phase_glitch_rate > 0.0
            && unit(hash(self.seed, SALT_GLITCH, &[tag, ant, t_bits])) < self.phase_glitch_rate
        {
            fired.phase_glitch.inc();
            let u = unit(hash(self.seed, SALT_GLITCH_MAG, &[tag, ant, t_bits]));
            let jump = (2.0 * u - 1.0) * self.phase_glitch_max_rad;
            r.phase_rad = (r.phase_rad + jump).rem_euclid(2.0 * std::f64::consts::PI);
        }
        if self.corrupt_rate > 0.0
            && unit(hash(self.seed, SALT_CORRUPT, &[tag, ant, t_bits])) < self.corrupt_rate
        {
            fired.corrupt.inc();
            // Corrupt either the phase or the RSSI field, like a
            // malformed LLRP report would.
            if hash(self.seed, SALT_CORRUPT_FIELD, &[tag, ant, t_bits]) & 1 == 0 {
                r.phase_rad = f64::NAN;
            } else {
                r.rssi_dbm = f64::NAN;
            }
        }
        Some(r)
    }

    /// Applies the plan to a whole stream, preserving order.
    pub fn apply(&self, readings: Vec<TagReading>) -> Vec<TagReading> {
        if self.is_none() {
            return readings;
        }
        readings
            .into_iter()
            .filter_map(|r| self.transform(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::TagId;

    fn reading(tag: usize, antenna: usize, t: f64) -> TagReading {
        TagReading {
            time_s: t,
            tag: TagId(tag),
            antenna,
            channel: 3,
            frequency_hz: 903e6,
            phase_rad: 1.0,
            rssi_dbm: -40.0,
            doppler_hz: 0.0,
        }
    }

    fn stream(n: usize) -> Vec<TagReading> {
        (0..n)
            .map(|i| reading(i % 3, i % 4, i as f64 * 0.025))
            .collect()
    }

    #[test]
    fn none_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let s = stream(50);
        assert_eq!(plan.apply(s.clone()), s);
    }

    #[test]
    fn intensity_zero_is_none() {
        assert!(FaultPlan::with_intensity(0.0, 9).is_none());
        assert!(!FaultPlan::with_intensity(0.5, 9).is_none());
    }

    /// Bit-exact comparison key (NaN-corrupted fields make the derived
    /// `PartialEq` useless for identity checks: NaN ≠ NaN).
    fn bits(r: &TagReading) -> (u64, usize, usize, u64, u64) {
        (
            r.time_s.to_bits(),
            r.tag.0,
            r.antenna,
            r.phase_rad.to_bits(),
            r.rssi_dbm.to_bits(),
        )
    }

    #[test]
    fn transform_is_pure_and_deterministic() {
        let plan = FaultPlan::with_intensity(0.6, 1234);
        let s = stream(200);
        let a: Vec<_> = plan.apply(s.clone()).iter().map(bits).collect();
        let b: Vec<_> = plan.apply(s).iter().map(bits).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_fault_differently() {
        let s = stream(400);
        let a = FaultPlan::with_intensity(0.5, 1).apply(s.clone());
        let b = FaultPlan::with_intensity(0.5, 2).apply(s);
        assert_ne!(a, b);
    }

    #[test]
    fn read_loss_grows_with_intensity() {
        let s = stream(600);
        let mut prev = s.len();
        for i in [0.2, 0.5, 0.9] {
            let n = FaultPlan::with_intensity(i, 7).apply(s.clone()).len();
            assert!(n <= prev, "intensity {i}: {n} > {prev}");
            prev = n;
        }
        assert!(prev < s.len() / 2, "heavy faults must lose many reads");
    }

    #[test]
    fn miss_rate_one_drops_everything() {
        let plan = FaultPlan {
            miss_rate: 1.0,
            ..FaultPlan::none()
        };
        assert!(plan.apply(stream(40)).is_empty());
    }

    #[test]
    fn antenna_dropout_kills_whole_intervals() {
        let plan = FaultPlan {
            seed: 3,
            antenna_dropout_rate: 0.5,
            antenna_dropout_interval_s: 1.0,
            ..FaultPlan::none()
        };
        // 4 antennas × 8 intervals; a dark (antenna, interval) pair must
        // drop *all* of its reads, a lit one must keep all.
        for a in 0..4usize {
            for k in 0..8u64 {
                let reads: Vec<TagReading> = (0..10)
                    .map(|j| reading(0, a, k as f64 + j as f64 * 0.09))
                    .collect();
                let kept = plan.apply(reads).len();
                assert!(kept == 0 || kept == 10, "antenna {a} interval {k}: {kept}");
            }
        }
    }

    #[test]
    fn corruption_injects_non_finite_fields() {
        let plan = FaultPlan {
            seed: 11,
            corrupt_rate: 0.5,
            ..FaultPlan::none()
        };
        let out = plan.apply(stream(400));
        assert_eq!(out.len(), 400, "corruption must not drop reads");
        let bad = out
            .iter()
            .filter(|r| !r.phase_rad.is_finite() || !r.rssi_dbm.is_finite())
            .count();
        assert!(
            (100..300).contains(&bad),
            "≈50% of reads should be corrupted, got {bad}/400"
        );
    }

    #[test]
    fn brownout_attenuates_rssi() {
        let plan = FaultPlan {
            seed: 5,
            brownout_rate: 1.0,
            brownout_depth_db: 12.0,
            ..FaultPlan::none()
        };
        let out = plan.apply(vec![reading(0, 0, 0.5)]);
        assert_eq!(out.len(), 1);
        assert!((out[0].rssi_dbm - (-52.0)).abs() < 1e-9);
    }

    #[test]
    fn deep_brownout_drops_reads_below_sensitivity() {
        let plan = FaultPlan {
            seed: 5,
            brownout_rate: 1.0,
            brownout_depth_db: 60.0,
            ..FaultPlan::none()
        };
        assert!(plan.apply(vec![reading(0, 0, 0.5)]).is_empty());
    }

    #[test]
    fn phase_glitch_moves_phase_but_keeps_range() {
        let plan = FaultPlan {
            seed: 21,
            phase_glitch_rate: 1.0,
            phase_glitch_max_rad: std::f64::consts::PI,
            ..FaultPlan::none()
        };
        let out = plan.apply(stream(100));
        assert_eq!(out.len(), 100);
        let moved = out
            .iter()
            .filter(|r| (r.phase_rad - 1.0).abs() > 1e-6)
            .count();
        assert!(moved > 90, "glitch rate 1.0 must perturb phases: {moved}");
        for r in &out {
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&r.phase_rad));
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_rate() {
        FaultPlan {
            miss_rate: 1.5,
            ..FaultPlan::none()
        }
        .assert_valid();
    }
}
