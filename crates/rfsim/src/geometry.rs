//! Planar geometry primitives: points, vectors, segments, reflections.
//!
//! The simulator works in 2-D (the plan view of a room); antenna and tag
//! heights are close enough in the paper's setup (antennas at 1.25 m,
//! tags at 1–1.5 m) that the planar approximation preserves path-length
//! differences to well under a wavelength per metre of travel.

/// A point in the room plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

/// A displacement in the room plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// x component (m).
    pub x: f64,
    /// y component (m).
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).length()
    }

    /// Displacement vector from `self` to `other`.
    pub fn to(self, other: Point2) -> Vec2 {
        other - self
    }
}

impl Vec2 {
    /// Creates a vector.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction; zero vector stays zero.
    pub fn normalized(self) -> Vec2 {
        let l = self.length();
        if l > 0.0 {
            Vec2::new(self.x / l, self.y / l)
        } else {
            self
        }
    }

    /// Rotates by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Angle of this vector from the +x axis, in radians `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl std::ops::Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl std::ops::Sub for Point2 {
    type Output = Vec2;
    fn sub(self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl std::ops::Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl std::ops::Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(a: Point2, b: Point2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Minimum distance from a point to this segment.
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        let ab = self.b - self.a;
        let ap = p - self.a;
        let len2 = ab.dot(ab);
        if len2 <= 0.0 {
            return self.a.distance(p);
        }
        let t = (ap.dot(ab) / len2).clamp(0.0, 1.0);
        (self.a + ab * t).distance(p)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    pub fn point_at(&self, t: f64) -> Point2 {
        self.a + (self.b - self.a) * t
    }

    /// Returns the intersection parameter of `self` with an infinite
    /// line through `c`–`d`, if the segments properly intersect.
    pub fn intersection(&self, other: &Segment) -> Option<Point2> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() < 1e-12 {
            return None; // parallel
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.point_at(t))
        } else {
            None
        }
    }
}

/// Reflects a point across the infinite line supporting `mirror`.
///
/// This is the core of the image method: a first-order wall reflection
/// from `src` to `dst` has the same length as the straight line from the
/// mirrored `src` to `dst`.
pub fn mirror_point(p: Point2, mirror: &Segment) -> Point2 {
    let d = (mirror.b - mirror.a).normalized();
    let ap = p - mirror.a;
    let proj = d * ap.dot(d);
    let foot = mirror.a + proj;
    let offset = p - foot;
    foot + (-offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vec2::new(1.0, 0.0)), -4.0);
        let u = v.normalized();
        assert!((u.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(v.x.abs() < 1e-12 && (v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_arithmetic() {
        let p = Point2::new(1.0, 2.0);
        let q = p + Vec2::new(2.0, -1.0);
        assert_eq!(q, Point2::new(3.0, 1.0));
        assert_eq!(q - p, Vec2::new(2.0, -1.0));
        assert!((p.distance(q) - (5.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn segment_point_distance() {
        let s = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        assert_eq!(s.distance_to_point(Point2::new(5.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(Point2::new(-4.0, 3.0)), 5.0);
        assert_eq!(s.distance_to_point(Point2::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = Segment::new(Point2::new(1.0, 1.0), Point2::new(1.0, 1.0));
        assert!((s.distance_to_point(Point2::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segments_intersect() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(4.0, 4.0));
        let s2 = Segment::new(Point2::new(0.0, 4.0), Point2::new(4.0, 0.0));
        let p = s1.intersection(&s2).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12 && (p.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn segments_parallel_no_intersection() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(4.0, 0.0));
        let s2 = Segment::new(Point2::new(0.0, 1.0), Point2::new(4.0, 1.0));
        assert!(s1.intersection(&s2).is_none());
    }

    #[test]
    fn segments_disjoint_no_intersection() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let s2 = Segment::new(Point2::new(3.0, 0.0), Point2::new(4.0, 1.0));
        assert!(s1.intersection(&s2).is_none());
    }

    #[test]
    fn mirror_across_horizontal_wall() {
        let wall = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        let p = Point2::new(3.0, 2.0);
        let m = mirror_point(p, &wall);
        assert!((m.x - 3.0).abs() < 1e-12 && (m.y + 2.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_twice_is_identity() {
        let wall = Segment::new(Point2::new(1.0, -1.0), Point2::new(4.0, 7.0));
        let p = Point2::new(3.0, 2.0);
        let mm = mirror_point(mirror_point(p, &wall), &wall);
        assert!(mm.distance(p) < 1e-12);
    }

    #[test]
    fn image_method_preserves_path_length() {
        // Reflection path src→wall→dst equals |mirror(src) → dst|.
        let wall = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        let src = Point2::new(2.0, 3.0);
        let dst = Point2::new(8.0, 1.0);
        let img = mirror_point(src, &wall);
        // Reflection point: intersection of img→dst with the wall.
        let hit = Segment::new(img, dst).intersection(&wall).unwrap();
        let bounced = src.distance(hit) + hit.distance(dst);
        assert!((bounced - img.distance(dst)).abs() < 1e-9);
    }
}
