//! Coherent backscatter channel response synthesis.
//!
//! A passive tag reflects the reader's own carrier, so the signal
//! observed at an antenna is a coherent **double sum over path pairs**:
//! energy travels reader→tag along path `p` and tag→reader along path
//! `q`, for every combination `(p, q)` (Section III-B, Eq. 5–6 of the
//! paper generalised beyond two paths). The `p = q` terms dominate and
//! carry round-trip phase `4πd/λ`; the cross terms are what make
//! multi-tag scenes "twist" (Fig. 2(c)).
//!
//! Array elements sit at `center − k·spacing·axis` (k = 0 is the
//! reference), so under the far-field approximation a path arriving at
//! angle θ reaches element `k` after an extra `k·spacing·cosθ` metres —
//! matching the `m2ai-dsp` steering-vector convention with
//! `round_trip = true`.

use crate::paths::PropagationPath;
use crate::SPEED_OF_LIGHT;
use m2ai_dsp::Complex;

/// One-way length of `path` as seen by array element `k` (far field).
pub fn element_path_length(path: &PropagationPath, k: usize, spacing_m: f64) -> f64 {
    path.length + k as f64 * spacing_m * path.aoa_deg.to_radians().cos()
}

/// Complex backscatter response at element `k` and frequency
/// `frequency_hz`, summed over all (downlink, uplink) path pairs.
///
/// The result has arbitrary absolute scale (amplitudes are normalised
/// to 1 m free space); phase is what matters downstream.
pub fn backscatter_response(
    paths: &[PropagationPath],
    k: usize,
    spacing_m: f64,
    frequency_hz: f64,
) -> Complex {
    let two_pi_over_lambda = 2.0 * std::f64::consts::PI * frequency_hz / SPEED_OF_LIGHT;
    // Precompute per-path one-way phasors at this element.
    let phasors: Vec<Complex> = paths
        .iter()
        .map(|p| {
            let len = element_path_length(p, k, spacing_m);
            Complex::from_polar(p.amplitude, -two_pi_over_lambda * len)
        })
        .collect();
    // Double sum factorises: (Σ_p a_p e^{-jβL_p})².
    let one_way: Complex = phasors.iter().copied().sum();
    one_way * one_way
}

/// Response across a whole `n`-element array (element 0 first).
pub fn array_response(
    paths: &[PropagationPath],
    n_elements: usize,
    spacing_m: f64,
    frequency_hz: f64,
) -> Vec<Complex> {
    (0..n_elements)
        .map(|k| backscatter_response(paths, k, spacing_m, frequency_hz))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::PathKind;

    fn path(length: f64, aoa_deg: f64, amplitude: f64) -> PropagationPath {
        PropagationPath {
            length,
            aoa_deg,
            amplitude,
            kind: PathKind::Direct,
            blocked: false,
        }
    }

    const F: f64 = 910.25e6;

    #[test]
    fn single_path_round_trip_phase() {
        let d = 3.0;
        let p = path(d, 90.0, 1.0);
        let h = backscatter_response(&[p], 0, 0.04, F);
        let lambda = SPEED_OF_LIGHT / F;
        let expected = -4.0 * std::f64::consts::PI * d / lambda;
        let diff = (h.arg() - expected).rem_euclid(2.0 * std::f64::consts::PI);
        assert!(!(1e-6..=2.0 * std::f64::consts::PI - 1e-6).contains(&diff));
    }

    #[test]
    fn broadside_path_same_phase_at_all_elements() {
        // cos(90°) = 0: no inter-element phase shift.
        let p = path(4.0, 90.0, 1.0);
        let hs = array_response(&[p], 4, 0.04, F);
        for k in 1..4 {
            assert!((hs[k] - hs[0]).norm() < 1e-9);
        }
    }

    #[test]
    fn endfire_path_phase_advances_per_element() {
        let p = path(4.0, 0.0, 1.0);
        let spacing = 0.04;
        let hs = array_response(&[p], 4, spacing, F);
        let lambda = SPEED_OF_LIGHT / F;
        let expected_step = -4.0 * std::f64::consts::PI * spacing / lambda;
        for k in 1..4 {
            let step = (hs[k] / hs[k - 1]).arg();
            let err = (step - expected_step).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(!(1e-6..=2.0 * std::f64::consts::PI - 1e-6).contains(&err));
        }
    }

    #[test]
    fn matches_dsp_steering_vector_convention() {
        // The per-element progression for a path at θ must equal the
        // round-trip steering vector of m2ai-dsp.
        use m2ai_dsp::music::{steering_vector, MusicConfig};
        let theta = 35.0;
        let spacing = 0.04;
        let lambda = SPEED_OF_LIGHT / F;
        let p = path(5.0, theta, 1.0);
        let hs = array_response(&[p], 4, spacing, F);
        let cfg = MusicConfig {
            n_antennas: 4,
            spacing_wavelengths: spacing / lambda,
            round_trip: true,
            ..MusicConfig::paper_default()
        };
        let sv = steering_vector(&cfg, theta);
        for k in 0..4 {
            let want = (sv[k] / sv[0]).arg();
            let got = (hs[k] / hs[0]).arg();
            let err = (want - got).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(
                !(1e-6..=2.0 * std::f64::consts::PI - 1e-6).contains(&err),
                "element {k}: want {want}, got {got}"
            );
        }
    }

    #[test]
    fn two_paths_include_cross_terms() {
        // |h| for two equal paths can reach 4× a single path's |h|
        // (amplitude (a+a)² = 4a²) — evidence the double sum is coherent.
        let p1 = path(3.0, 90.0, 1.0);
        let lambda = SPEED_OF_LIGHT / F;
        let p2 = path(3.0 + lambda, 90.0, 1.0); // in phase (integer λ)
        let h2 = backscatter_response(&[p1.clone(), p2], 0, 0.04, F);
        let h1 = backscatter_response(&[p1], 0, 0.04, F);
        assert!((h2.norm() / h1.norm() - 4.0).abs() < 0.01);
    }

    #[test]
    fn destructive_interference() {
        let p1 = path(3.0, 90.0, 1.0);
        let lambda = SPEED_OF_LIGHT / F;
        let p2 = path(3.0 + lambda / 2.0, 90.0, 1.0); // anti-phase one way
        let h = backscatter_response(&[p1, p2], 0, 0.04, F);
        // One-way sum cancels, so the squared response nearly vanishes.
        assert!(h.norm() < 1e-6);
    }

    #[test]
    fn amplitude_scales_quadratically() {
        let p = path(2.0, 60.0, 0.5);
        let h = backscatter_response(std::slice::from_ref(&p), 0, 0.04, F);
        assert!((h.norm() - 0.25).abs() < 1e-9);
    }
}
