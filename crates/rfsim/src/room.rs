//! Indoor environments: walls, furniture scatterers, presets.
//!
//! The paper evaluates in two rooms (Fig. 7): a 13.75 m × 10.50 m
//! laboratory crowded with file cabinets and desks (high multipath) and
//! an empty 8.75 m × 7.50 m hall (low multipath). [`Room::laboratory`]
//! and [`Room::hall`] reproduce those two regimes.

use crate::geometry::{Point2, Segment};

/// A reflecting wall with its reflection loss.
#[derive(Debug, Clone, PartialEq)]
pub struct Wall {
    /// Wall geometry.
    pub segment: Segment,
    /// Loss applied to a signal reflecting off this wall, in dB
    /// (positive; typical interior walls reflect at 3–10 dB loss).
    pub reflection_loss_db: f64,
}

/// A piece of furniture modelled as a point scatterer.
///
/// A metal cabinet re-radiates impinging energy; the path
/// tag → scatterer → antenna adds a multipath component whose loss is
/// `scatter_loss_db` on top of free-space spreading.
#[derive(Debug, Clone, PartialEq)]
pub struct Scatterer {
    /// Scatterer location.
    pub position: Point2,
    /// Re-radiation loss in dB.
    pub scatter_loss_db: f64,
}

/// An indoor environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Room {
    /// Human-readable name ("laboratory", "hall", …).
    pub name: String,
    /// Room width (x extent) in metres.
    pub width: f64,
    /// Room depth (y extent) in metres.
    pub depth: f64,
    /// Reflecting walls (usually the four sides).
    pub walls: Vec<Wall>,
    /// Furniture scatterers.
    pub scatterers: Vec<Scatterer>,
}

impl Room {
    /// Creates an empty rectangular room `[0, width] × [0, depth]` with
    /// four walls of the given reflection loss.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is not strictly positive.
    pub fn rectangular(name: &str, width: f64, depth: f64, wall_loss_db: f64) -> Self {
        assert!(
            width > 0.0 && depth > 0.0,
            "room dimensions must be positive"
        );
        let corners = [
            Point2::new(0.0, 0.0),
            Point2::new(width, 0.0),
            Point2::new(width, depth),
            Point2::new(0.0, depth),
        ];
        let walls = (0..4)
            .map(|i| Wall {
                segment: Segment::new(corners[i], corners[(i + 1) % 4]),
                reflection_loss_db: wall_loss_db,
            })
            .collect();
        Room {
            name: name.to_owned(),
            width,
            depth,
            walls,
            scatterers: Vec::new(),
        }
    }

    /// Adds a furniture scatterer; returns `self` for chaining.
    pub fn with_scatterer(mut self, position: Point2, scatter_loss_db: f64) -> Self {
        self.scatterers.push(Scatterer {
            position,
            scatter_loss_db,
        });
        self
    }

    /// The paper's laboratory: 13.75 m × 10.50 m, reflective walls and
    /// several metal cabinets/desks — a high-multipath environment.
    pub fn laboratory() -> Self {
        Room::rectangular("laboratory", 13.75, 10.50, 4.0)
            .with_scatterer(Point2::new(2.0, 8.5), 8.0)
            .with_scatterer(Point2::new(11.5, 8.0), 8.0)
            .with_scatterer(Point2::new(12.0, 2.5), 10.0)
            .with_scatterer(Point2::new(3.0, 2.0), 10.0)
            .with_scatterer(Point2::new(7.0, 9.5), 9.0)
    }

    /// The paper's empty hall: 8.75 m × 7.50 m, weaker reflections and
    /// no furniture — a low-multipath environment.
    pub fn hall() -> Self {
        Room::rectangular("hall", 8.75, 7.50, 9.0)
    }

    /// `true` if the point lies inside the room bounds.
    pub fn contains(&self, p: Point2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.depth).contains(&p.y)
    }

    /// Clamps a point into the room bounds with a small margin.
    pub fn clamp_inside(&self, p: Point2, margin: f64) -> Point2 {
        Point2::new(
            p.x.clamp(margin, self.width - margin),
            p.y.clamp(margin, self.depth - margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_room_has_four_walls() {
        let room = Room::rectangular("test", 5.0, 4.0, 6.0);
        assert_eq!(room.walls.len(), 4);
        let perimeter: f64 = room.walls.iter().map(|w| w.segment.length()).sum();
        assert!((perimeter - 18.0).abs() < 1e-12);
    }

    #[test]
    fn presets_match_paper_dimensions() {
        let lab = Room::laboratory();
        assert_eq!((lab.width, lab.depth), (13.75, 10.50));
        assert!(lab.scatterers.len() >= 3, "lab must be multipath-rich");
        let hall = Room::hall();
        assert_eq!((hall.width, hall.depth), (8.75, 7.50));
        assert!(hall.scatterers.is_empty(), "hall is empty");
    }

    #[test]
    fn lab_reflects_more_than_hall() {
        let lab = Room::laboratory();
        let hall = Room::hall();
        let lab_loss: f64 = lab.walls.iter().map(|w| w.reflection_loss_db).sum();
        let hall_loss: f64 = hall.walls.iter().map(|w| w.reflection_loss_db).sum();
        assert!(lab_loss < hall_loss, "lab walls reflect more strongly");
    }

    #[test]
    fn containment_and_clamping() {
        let room = Room::rectangular("t", 10.0, 8.0, 5.0);
        assert!(room.contains(Point2::new(5.0, 4.0)));
        assert!(!room.contains(Point2::new(-1.0, 4.0)));
        assert!(!room.contains(Point2::new(5.0, 9.0)));
        let clamped = room.clamp_inside(Point2::new(20.0, -3.0), 0.5);
        assert_eq!(clamped, Point2::new(9.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_room_panics() {
        Room::rectangular("bad", 0.0, 4.0, 5.0);
    }

    #[test]
    fn with_scatterer_chains() {
        let room = Room::rectangular("t", 4.0, 4.0, 5.0)
            .with_scatterer(Point2::new(1.0, 1.0), 8.0)
            .with_scatterer(Point2::new(3.0, 3.0), 9.0);
        assert_eq!(room.scatterers.len(), 2);
    }
}
